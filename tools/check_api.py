#!/usr/bin/env python3
"""Public-API gate for CI (the ``docs`` job).

Renders the surface of :mod:`repro.api` — every ``__all__`` member with
its signature (functions) or field list (dataclasses) — and diffs it
against the checked-in snapshot ``tools/api_surface.txt``.  Any drift
fails the build: adding, removing, or re-typing a public name requires
regenerating the snapshot (``python tools/check_api.py --update``) in
the same change, which makes API evolution reviewable instead of
accidental.

The rendering is deliberately stable across supported Pythons
(3.9-3.11): annotations are taken as *strings* (PEP 563 — ``repro.api``
uses ``from __future__ import annotations``) and dataclass fields are
rendered from the raw class annotations, so the snapshot does not
depend on how a given interpreter version stringifies typing objects.

Exit status: 0 on a clean match, 1 on drift (unified diff on stderr).
"""

from __future__ import annotations

import difflib
import inspect
import sys
from dataclasses import MISSING, fields, is_dataclass
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO / "tools" / "api_surface.txt"


def _field_default(field) -> str:
    if field.default is not MISSING:
        return f" = {field.default!r}"
    if field.default_factory is not MISSING:  # type: ignore[misc]
        return f" = {field.default_factory.__name__}()"
    return ""


def _render_dataclass(name: str, cls) -> list[str]:
    lines = [f"class {name}:"]
    raw = {}
    for klass in reversed(cls.__mro__):
        raw.update(getattr(klass, "__annotations__", {}))
    for field in fields(cls):
        annotation = raw.get(field.name, "?")
        if not isinstance(annotation, str):
            annotation = getattr(annotation, "__name__", repr(annotation))
        lines.append(f"    {field.name}: {annotation}{_field_default(field)}")
    return lines


def _render_function(name: str, obj) -> list[str]:
    signature = inspect.signature(obj)
    return [f"def {name}{signature}"]


def _render_class(name: str, cls) -> list[str]:
    """Non-dataclass classes: public methods with signatures."""
    lines = [f"class {name}:"]
    for attr in sorted(vars(cls)):
        if attr.startswith("_") and attr != "__init__":
            continue
        member = inspect.getattr_static(cls, attr)
        if isinstance(member, property):
            lines.append(f"    property {attr}")
        elif isinstance(member, staticmethod):
            signature = inspect.signature(member.__func__)
            lines.append(f"    static {attr}{signature}")
        elif callable(member):
            try:
                signature = inspect.signature(member)
            except (TypeError, ValueError):
                continue
            lines.append(f"    def {attr}{signature}")
    return lines


def render_surface() -> str:
    sys.path.insert(0, str(REPO / "src"))
    import repro.api as api

    blocks: list[list[str]] = []
    for name in sorted(api.__all__):
        obj = getattr(api, name)
        if isinstance(obj, tuple):
            blocks.append([f"const {name} = {obj!r}"])
        elif is_dataclass(obj) and isinstance(obj, type):
            blocks.append(_render_dataclass(name, obj))
        elif inspect.isclass(obj):
            blocks.append(_render_class(name, obj))
        elif callable(obj):
            blocks.append(_render_function(name, obj))
        else:
            blocks.append([f"value {name}: {type(obj).__name__}"])
    body = "\n\n".join("\n".join(block) for block in blocks)
    return (
        "# Snapshot of the repro.api public surface.\n"
        "# Regenerate with: python tools/check_api.py --update\n\n"
        + body
        + "\n"
    )


def main(argv: list[str]) -> int:
    rendered = render_surface()
    if "--update" in argv:
        SNAPSHOT.write_text(rendered, encoding="utf-8")
        print(f"check_api: wrote {SNAPSHOT.relative_to(REPO)}")
        return 0
    if not SNAPSHOT.exists():
        print(
            f"check_api: {SNAPSHOT.relative_to(REPO)} is missing; "
            "run: python tools/check_api.py --update",
            file=sys.stderr,
        )
        return 1
    expected = SNAPSHOT.read_text(encoding="utf-8")
    if rendered == expected:
        count = rendered.count("\ndef ") + rendered.count("\nclass ") + rendered.count("\nconst ")
        print(f"check_api: surface matches snapshot ({count} entries)")
        return 0
    diff = difflib.unified_diff(
        expected.splitlines(keepends=True),
        rendered.splitlines(keepends=True),
        fromfile="tools/api_surface.txt (checked in)",
        tofile="repro.api (current)",
    )
    sys.stderr.writelines(diff)
    print(
        "check_api: public surface drifted from tools/api_surface.txt; "
        "if intentional, run: python tools/check_api.py --update",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
