#!/usr/bin/env python3
"""Documentation gate for CI (the ``docs`` job).

Two checks, both against the working tree, no third-party deps:

1. **Intra-repo Markdown links.**  Every relative link target in the
   curated documentation set must exist on disk.  External URLs and
   pure-anchor links are skipped; ``#fragment`` suffixes are stripped
   before the existence check.

2. **Telemetry catalogue coverage.**  Every literal span/metric name
   used in ``src/repro`` — a string passed to ``trace.span("...")``,
   ``metrics.counter("...")``, ``metrics.gauge("...")`` or
   ``metrics.histogram("...")`` — must appear (backticked) in
   ``docs/OBSERVABILITY.md``.  This is why instrumented code must pass
   names as literals: a name routed through a variable is invisible
   here and would silently escape the contract.

3. **Lint rule catalogue coverage.**  Every ``rule_id = "..."``
   declared under ``src/repro/lint`` (plus the ``SUP001``
   suppression meta-rule) must appear (backticked) in
   ``docs/LINT.md`` — the registry is the source of truth and the
   catalogue cannot drift from it.

Exit status: 0 when both checks pass, 1 otherwise (one line per
problem on stderr).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Documentation files whose links we guarantee.  PAPER.md / PAPERS.md /
#: SNIPPETS.md / ISSUE.md are excluded on purpose: they carry imported
#: text and code fragments with markdown-shaped content we do not own.
DOC_FILES = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/BENCHMARKS.md",
    "docs/SIMULATOR.md",
    "docs/VERSIONING.md",
)

CATALOGUE = "docs/OBSERVABILITY.md"
LINT_CATALOGUE = "docs/LINT.md"

#: [text](target) — excluding images; target up to the first ')' that
#: is not preceded by an escape.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")

_SPAN_RE = re.compile(r"\bspan\(\s*\"([a-z0-9_.]+)\"")
_METRIC_RE = re.compile(r"\b(?:counter|gauge|histogram)\(\s*\"([a-z0-9_.]+)\"")
_RULE_ID_RE = re.compile(r"^\s*(?:rule_id|SUP_RULE_ID)\s*=\s*\"([A-Z0-9-]+)\"", re.M)


def doc_files() -> list[Path]:
    files = [REPO / name for name in DOC_FILES]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    seen: set[Path] = set()
    unique = []
    for f in files:
        if f.exists() and f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


def check_links() -> list[str]:
    problems = []
    for doc in doc_files():
        text = doc.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}"
                )
    return problems


def emitted_names() -> tuple[set[str], set[str]]:
    """(span names, metric names) used as literals under src/repro."""
    spans: set[str] = set()
    mets: set[str] = set()
    for source in sorted((REPO / "src" / "repro").rglob("*.py")):
        text = source.read_text(encoding="utf-8")
        spans.update(_SPAN_RE.findall(text))
        mets.update(_METRIC_RE.findall(text))
    return spans, mets


def check_catalogue() -> list[str]:
    catalogue_path = REPO / CATALOGUE
    if not catalogue_path.exists():
        return [f"{CATALOGUE} is missing"]
    catalogue = catalogue_path.read_text(encoding="utf-8")
    problems = []
    spans, mets = emitted_names()
    for name in sorted(spans):
        if f"`{name}`" not in catalogue:
            problems.append(
                f"span {name!r} is emitted in src/repro but not "
                f"catalogued in {CATALOGUE}"
            )
    for name in sorted(mets):
        if f"`{name}`" not in catalogue:
            problems.append(
                f"metric {name!r} is emitted in src/repro but not "
                f"catalogued in {CATALOGUE}"
            )
    return problems


def declared_rule_ids() -> set[str]:
    """``rule_id = "..."`` (and the SUP meta-rule) under src/repro/lint."""
    rules: set[str] = set()
    for source in sorted((REPO / "src" / "repro" / "lint").glob("*.py")):
        rules.update(_RULE_ID_RE.findall(source.read_text(encoding="utf-8")))
    return rules


def check_lint_catalogue() -> list[str]:
    catalogue_path = REPO / LINT_CATALOGUE
    if not catalogue_path.exists():
        return [f"{LINT_CATALOGUE} is missing"]
    catalogue = catalogue_path.read_text(encoding="utf-8")
    problems = []
    for rule_id in sorted(declared_rule_ids()):
        if f"`{rule_id}`" not in catalogue:
            problems.append(
                f"lint rule {rule_id!r} is declared in src/repro/lint but "
                f"not catalogued in {LINT_CATALOGUE}"
            )
    return problems


def main() -> int:
    problems = check_links() + check_catalogue() + check_lint_catalogue()
    for problem in problems:
        print(problem, file=sys.stderr)
    spans, mets = emitted_names()
    print(
        f"check_docs: {len(doc_files())} docs, {len(spans)} spans, "
        f"{len(mets)} metrics, {len(declared_rule_ids())} lint rules, "
        f"{len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
