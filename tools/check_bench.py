#!/usr/bin/env python3
"""Compare fresh ``BENCH_<area>.json`` reports against committed baselines.

Three classes of check, in decreasing severity:

* **digests / pinned metrics** — the workload answer digests and the
  pinned-equal metrics (constraint counts, simplex iterations) must
  match the baseline exactly.  They are pure functions of the answer,
  so a mismatch means the code changed behaviour, not speed: always a
  hard failure, on any machine.
* **speedup ratio** — each workload's fast/reference median speedup
  must not fall more than ``--tolerance`` (default 20%) below the
  baseline's.  Ratios divide out the machine, so this runs in CI.
  Only enforced where the baseline shows a real speedup
  (``>= SPEEDUP_CHECK_MIN``); near 1.0x the ratio is pure noise.
* **wall time** — each workload's fast-path median must not exceed the
  baseline's by more than ``--tolerance``.  Only meaningful on the
  machine that produced the baseline; ``--skip-wall`` disables it
  (CI does).

Usage::

    python tools/check_bench.py benchmarks/out [--baseline benchmarks/baselines]
        [--area ilp ...] [--tolerance 0.2] [--skip-wall]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

AREAS = (
    "compile",
    "ilp",
    "diff",
    "campaign",
    "dissemination",
    "versioning",
    "profiles",
)
SCHEMA = "repro-bench/1"

#: The speedup-ratio floor only applies to workloads the fast path
#: actually accelerates.  Near 1.0x the ratio is all measurement noise
#: (a 4 ms workload swings 2x on a loaded box) and a "regression" in it
#: carries no information — the wall-time check covers those.
SPEEDUP_CHECK_MIN = 1.5


def load_report(directory: Path, area: str) -> "dict | None":
    path = directory / f"BENCH_{area}.json"
    if not path.exists():
        return None
    report = json.loads(path.read_text())
    if report.get("schema") != SCHEMA:
        raise SystemExit(
            f"{path}: unsupported schema {report.get('schema')!r} "
            f"(expected {SCHEMA})"
        )
    return report


def compare_area(
    baseline: dict, current: dict, tolerance: float, skip_wall: bool
) -> "list[str]":
    """All regressions of one area, as human-readable failure lines."""
    failures: list[str] = []
    area = baseline["area"]
    base_rows = {row["name"]: row for row in baseline["workloads"]}
    cur_rows = {row["name"]: row for row in current["workloads"]}
    missing = sorted(set(base_rows) - set(cur_rows))
    if missing:
        failures.append(f"{area}: workloads missing from current run: {missing}")
    for name, base in sorted(base_rows.items()):
        cur = cur_rows.get(name)
        if cur is None:
            continue
        if cur["digest"] != base["digest"]:
            failures.append(
                f"{area}/{name}: DIGEST MISMATCH — answer changed "
                f"({base['digest'][:16]}… → {cur['digest'][:16]}…)"
            )
        for key, base_value in base.get("metrics", {}).items():
            cur_value = cur.get("metrics", {}).get(key)
            if cur_value != base_value:
                failures.append(
                    f"{area}/{name}: pinned metric {key} changed "
                    f"({base_value!r} → {cur_value!r})"
                )
        floor = base["speedup_median"] * (1.0 - tolerance)
        if base["speedup_median"] >= SPEEDUP_CHECK_MIN and cur["speedup_median"] < floor:
            failures.append(
                f"{area}/{name}: speedup regressed "
                f"{base['speedup_median']:.2f}x → {cur['speedup_median']:.2f}x "
                f"(floor {floor:.2f}x at tolerance {tolerance:.0%})"
            )
        if not skip_wall:
            ceiling = base["fast"]["median_ms"] * (1.0 + tolerance)
            if cur["fast"]["median_ms"] > ceiling:
                failures.append(
                    f"{area}/{name}: fast wall regressed "
                    f"{base['fast']['median_ms']:.1f}ms → "
                    f"{cur['fast']['median_ms']:.1f}ms "
                    f"(ceiling {ceiling:.1f}ms at tolerance {tolerance:.0%})"
                )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="directory with fresh BENCH_<area>.json")
    parser.add_argument(
        "--baseline",
        default="benchmarks/baselines",
        help="directory with committed baselines (default: %(default)s)",
    )
    parser.add_argument(
        "--area",
        action="append",
        choices=AREAS,
        default=None,
        help="check only these areas (repeatable; default: all with a baseline)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative regression (default: %(default)s)",
    )
    parser.add_argument(
        "--skip-wall",
        action="store_true",
        help="skip absolute wall-time checks (use on machines other "
             "than the baseline's)",
    )
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline)
    current_dir = Path(args.current)
    areas = tuple(args.area) if args.area else AREAS
    failures: list[str] = []
    checked = 0
    for area in areas:
        baseline = load_report(baseline_dir, area)
        if baseline is None:
            if args.area:
                failures.append(f"{area}: no baseline in {baseline_dir}")
            continue
        current = load_report(current_dir, area)
        if current is None:
            failures.append(f"{area}: no current report in {current_dir}")
            continue
        checked += 1
        area_failures = compare_area(baseline, current, args.tolerance, args.skip_wall)
        failures.extend(area_failures)
        status = "FAIL" if area_failures else "ok"
        print(
            f"check_bench {area}: {status} "
            f"(baseline median speedup {baseline['summary']['median_speedup']:.2f}x, "
            f"current {current['summary']['median_speedup']:.2f}x)"
        )
    if not checked and not failures:
        failures.append(f"no baselines found in {baseline_dir}")
    for line in failures:
        print(f"  {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
