"""Legacy setup shim.

``pip install -e .`` needs the ``wheel`` package (setuptools < 70 gets
``bdist_wheel`` from it), which offline environments may lack.  This
shim keeps ``python setup.py develop`` working there; see README
"Install" for the equivalent .pth fallback.
"""

from setuptools import setup

setup()
