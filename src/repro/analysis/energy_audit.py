"""Energy audit: recompute update costs from first principles.

The planner's strategy choices (greedy move insertion, ILP adoption,
placement auto-selection) all hinge on energy numbers.  This pass
recomputes them from the shipped artefacts and cross-checks the
producers' accounting:

* the serialised script length is what ``size_bytes`` claims (the
  radio pays for real bytes, not estimates),
* ``Diff_inst``/``diff_words`` match what the script actually carries,
* the dissemination energy derived bit-by-bit from the payload equals
  the model's ``E_trans`` accounting within tolerance, and
* eq. 18's total update energy recomputes from its parts when cycle
  measurements are present.

:func:`audit_ilp_solution` performs the solver-side counterpart: an
"optimal" ILP outcome must be feasible for its own model and its
reported objective must equal the model evaluated at the returned
assignment — a drifted objective would silently skew every adoption
decision built on it.
"""

from __future__ import annotations

from ..energy.model import WORD_BITS, EnergyModel
from .base import Finding

PASS_NAME = "energy"

#: Relative tolerance for floating-point energy comparisons.
TOLERANCE = 1e-6


def _close(a: float, b: float, tol: float = TOLERANCE) -> bool:
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def audit_update(result, energy: EnergyModel, cnt: float = 1000.0) -> list[Finding]:
    """Cross-check one :class:`~repro.core.update.UpdateResult`."""
    findings: list[Finding] = []

    def fail(message: str) -> None:
        findings.append(Finding(pass_name=PASS_NAME, message=message))

    script = result.diff.script
    wire_bytes = len(script.to_bytes())
    if wire_bytes != script.size_bytes:
        fail(
            f"script claims {script.size_bytes} bytes but serialises to "
            f"{wire_bytes}"
        )

    carried_inst = script.transmitted_instructions
    if carried_inst != result.diff.diff_inst:
        fail(
            f"Diff_inst is {result.diff.diff_inst} but the script carries "
            f"{carried_inst} instructions"
        )

    carried_words = script.payload_words
    if carried_words != result.diff.diff_words:
        fail(
            f"diff_words is {result.diff.diff_words} but the script carries "
            f"{carried_words} words"
        )

    data_bytes = result.data_script.size_bytes
    data_wire = len(result.data_script.to_bytes())
    if data_bytes != data_wire:
        fail(
            f"data script claims {data_bytes} bytes but serialises to "
            f"{data_wire}"
        )
    if result.script_bytes != script.size_bytes + data_bytes:
        fail(
            f"total script_bytes {result.script_bytes} != code "
            f"{script.size_bytes} + data {data_bytes}"
        )

    # Dissemination energy from first principles: every payload bit at
    # the radio's per-bit cost.
    first_principles = 8.0 * (wire_bytes + data_wire) * energy.e_trans_bit
    modelled = energy.e_trans_bytes(wire_bytes + data_wire)
    if not _close(first_principles, modelled):
        fail(
            f"dissemination energy {modelled} deviates from the "
            f"bit-level recomputation {first_principles}"
        )
    word_model = energy.e_trans_words(carried_words)
    word_first = float(carried_words) * WORD_BITS * energy.e_trans_bit
    if not _close(word_model, word_first):
        fail(
            f"E_trans per-word accounting {word_model} deviates from "
            f"{word_first}"
        )

    # Eq. 18 recomputes from its parts when cycles were measured.
    if result.old_cycles is not None and result.new_cycles is not None:
        recomputed = (
            energy.e_trans_words(result.diff_words)
            + energy.e_trans_bytes(data_bytes)
            + (result.new_cycles - result.old_cycles) * cnt
        )
        claimed = result.diff_energy(cnt, energy)
        if not _close(recomputed, claimed):
            fail(
                f"eq. 18 energy {claimed} deviates from the recomputation "
                f"{recomputed} at cnt={cnt}"
            )
    return findings


def audit_ilp_solution(model, result, tolerance: float = 1e-6) -> list[Finding]:
    """Cross-check one ILP solve against its own model.

    ``model`` is an :class:`~repro.ilp.model.Problem`; ``result`` an
    :class:`~repro.ilp.branch_bound.SolveResult`.
    """
    findings: list[Finding] = []
    if result.status != "optimal":
        return findings
    if not model.is_feasible(result.values, tol=tolerance):
        findings.append(
            Finding(
                pass_name=PASS_NAME,
                message="ILP solution violates its own constraints",
            )
        )
    evaluated = model.evaluate(result.values)
    if not _close(evaluated, result.objective, tolerance):
        findings.append(
            Finding(
                pass_name=PASS_NAME,
                message=(
                    f"ILP objective {result.objective} deviates from the "
                    f"model evaluated at the solution ({evaluated})"
                ),
            )
        )
    return findings
