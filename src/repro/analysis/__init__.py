"""Static verification layer for compilation and update products.

``repro.analysis`` proves, from the shipped artefacts alone, that an
update is safe before it is disseminated:

* :mod:`.dataflow` — reusable forward dataflow (reaching definitions,
  def-use chains, dominators) layered on the CFG/liveness machinery;
* :mod:`.alloc_verifier` — register assignments respect liveness,
  calling conventions, and UCC-RA's preferred-tag accounting;
* :mod:`.layout_verifier` — the data layout is overlap-free and every
  memory-addressing instruction agrees with it;
* :mod:`.patch_verifier` — the edit script rebuilds the new image
  word-for-word on an independent replay;
* :mod:`.energy_audit` — dissemination/execution costs recompute from
  first principles, and ILP objectives match their models.

:func:`verify_program` / :func:`verify_update` orchestrate the passes
and return a :class:`VerificationReport`; ``checked=True`` pipeline
mode turns a failed report into a :class:`VerificationError`.
"""

from .base import Finding, VerificationError, VerificationReport
from .dataflow import (
    ENTRY_DEF,
    Definition,
    DefUseChains,
    ReachingDefinitions,
    def_use_chains,
    dominators,
    immediate_dominators,
    reaching_definitions,
)
from .alloc_verifier import verify_allocation_record
from .driver import ALL_PASSES, verify_program, verify_update
from .energy_audit import audit_ilp_solution, audit_update
from .layout_verifier import (
    verify_addressing,
    verify_data_image,
    verify_data_layout,
)
from .patch_verifier import verify_patch_product

__all__ = [
    "ALL_PASSES",
    "ENTRY_DEF",
    "DefUseChains",
    "Definition",
    "Finding",
    "ReachingDefinitions",
    "VerificationError",
    "VerificationReport",
    "audit_ilp_solution",
    "audit_update",
    "def_use_chains",
    "dominators",
    "immediate_dominators",
    "reaching_definitions",
    "verify_addressing",
    "verify_allocation_record",
    "verify_data_image",
    "verify_data_layout",
    "verify_patch_product",
    "verify_program",
    "verify_update",
]
