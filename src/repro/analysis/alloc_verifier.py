"""Allocation verifier: independently re-check a register allocation.

Re-derives liveness from the IR and checks the persisted
:class:`~repro.regalloc.base.AllocationRecord` against it:

* no two simultaneously-live vregs share a physical register,
* no placement touches a reserved register; u16 values sit on legal
  even-aligned pairs,
* values live across a call occupy callee-saved registers,
* every (non-spilled) use and definition has a register at its IR
  index — no live-range piece gaps at real occurrences,
* spill bookkeeping is consistent (``spilled`` flag ⇔ ``spill_order``),
* a placement that changes base register while the value stays live is
  joined by exactly the inter-register move the allocator recorded, and
* when a :class:`~repro.regalloc.ucc_ra.UCCReport` is supplied, every
  inserted move restores a preferred-register tag — the only reason
  UCC-RA pays for one — and the report's move count matches the record.
"""

from __future__ import annotations

from ..ir.function import IRFunction
from ..ir.liveness import LivenessInfo, analyze
from ..isa import registers as regs
from ..regalloc.base import AllocationRecord, allocation_conflicts
from .base import Finding

PASS_NAME = "allocation"


def verify_allocation_record(
    fn: IRFunction,
    record: AllocationRecord,
    report=None,
    liveness: LivenessInfo | None = None,
) -> list[Finding]:
    """Run every allocation check; returns all findings (empty = clean).

    ``report`` optionally carries the UCC-RA diagnostics used for the
    preferred-tag accounting check.
    """
    findings: list[Finding] = []
    info = liveness or analyze(fn)

    findings.extend(_check_piece_shape(fn, record))
    findings.extend(_check_register_classes(fn, record, info))
    findings.extend(_check_conflicts(fn, record, info))
    findings.extend(_check_coverage(fn, record))
    findings.extend(_check_spill_bookkeeping(fn, record))
    findings.extend(_check_move_continuity(fn, record, info))
    if report is not None and record.algorithm == "ucc-ra":
        findings.extend(_check_tag_accounting(fn, record, report))
    return findings


def _finding(fn: IRFunction, message: str, location: int | None = None) -> Finding:
    return Finding(
        pass_name=PASS_NAME, message=message, function=fn.name, location=location
    )


def _check_piece_shape(fn: IRFunction, record: AllocationRecord) -> list[Finding]:
    """Pieces must be well-formed, sorted, and non-overlapping."""
    findings = []
    for name, placement in record.placements.items():
        if placement.spilled and placement.pieces:
            findings.append(
                _finding(fn, f"{name} is spilled but still has register pieces")
            )
        previous_end = None
        for piece in placement.pieces:
            if piece.start > piece.end:
                findings.append(
                    _finding(
                        fn,
                        f"{name} has an inverted piece [{piece.start}, {piece.end}]",
                        piece.start,
                    )
                )
            if previous_end is not None and piece.start <= previous_end:
                findings.append(
                    _finding(
                        fn,
                        f"{name} has overlapping/unsorted pieces at {piece.start}",
                        piece.start,
                    )
                )
            previous_end = piece.end
    return findings


def _check_register_classes(
    fn: IRFunction, record: AllocationRecord, info: LivenessInfo
) -> list[Finding]:
    """Reserved registers, pair alignment, callee-saved constraint."""
    findings = []
    for name, placement in record.placements.items():
        interval = info.intervals.get(name)
        for piece in placement.pieces:
            units = regs.registers_of(piece.base, placement.size)
            reserved = [u for u in units if u in regs.RESERVED]
            if reserved:
                findings.append(
                    _finding(
                        fn,
                        f"{name} occupies reserved register r{reserved[0]}",
                        piece.start,
                    )
                )
            if any(u not in range(regs.NUM_REGS) for u in units):
                findings.append(
                    _finding(fn, f"{name} occupies a register out of range", piece.start)
                )
            if placement.size == 2 and piece.base % 2 != 0:
                findings.append(
                    _finding(
                        fn,
                        f"u16 {name} is not even-aligned (base r{piece.base})",
                        piece.start,
                    )
                )
            if interval is not None and interval.crosses_call:
                clobbered = [u for u in units if u in regs.CALLER_SAVED]
                if clobbered:
                    findings.append(
                        _finding(
                            fn,
                            f"call-crossing {name} sits in caller-saved "
                            f"r{clobbered[0]}",
                            piece.start,
                        )
                    )
    return findings


def _check_conflicts(
    fn: IRFunction, record: AllocationRecord, info: LivenessInfo
) -> list[Finding]:
    """No two simultaneously-live vregs share a physical register."""
    findings = []
    seen: set[tuple] = set()
    for index, phys, a, b in allocation_conflicts(record, info):
        key = (phys, a, b)
        if key in seen:  # report each clobbered pair once
            continue
        seen.add(key)
        findings.append(
            _finding(fn, f"r{phys} holds both {a} and {b}", index)
        )
    return findings


def _check_coverage(fn: IRFunction, record: AllocationRecord) -> list[Finding]:
    """Every real occurrence of a non-spilled vreg has a register."""
    findings = []
    for index, ins in enumerate(fn.instrs):
        for reg in ins.vregs():
            placement = record.placements.get(reg.name)
            if placement is None:
                findings.append(
                    _finding(fn, f"no placement recorded for {reg.name}", index)
                )
                continue
            if placement.spilled:
                continue
            if placement.reg_at(index) is None:
                findings.append(
                    _finding(
                        fn,
                        f"{reg.name} has no register at its occurrence",
                        index,
                    )
                )
    return findings


def _check_spill_bookkeeping(fn: IRFunction, record: AllocationRecord) -> list[Finding]:
    findings = []
    spilled = {n for n, p in record.placements.items() if p.spilled}
    order = record.spill_order
    if len(order) != len(set(order)):
        findings.append(_finding(fn, "spill_order lists a vreg twice"))
    for name in spilled - set(order):
        findings.append(
            _finding(fn, f"spilled {name} is missing from spill_order")
        )
    for name in set(order) - spilled:
        findings.append(
            _finding(fn, f"spill_order lists non-spilled vreg {name}")
        )
    return findings


def _check_move_continuity(
    fn: IRFunction, record: AllocationRecord, info: LivenessInfo
) -> list[Finding]:
    """Base-register changes of a live value must be joined by moves.

    Two adjacent pieces with different bases are legal when the value
    is dead in between (a live-range hole); when it is live, the
    recorded :class:`~repro.regalloc.base.MoveInsertion` must copy the
    value from the old base to the new one at the second piece's start.
    Conversely every recorded move must join two real pieces.
    """
    findings = []
    moves_by_key = {(m.vreg, m.ir_index): m for m in record.moves}
    used_moves = set()

    for name, placement in record.placements.items():
        for first, second in zip(placement.pieces, placement.pieces[1:]):
            if first.base == second.base:
                continue
            # Live across the gap?  The value is carried over iff it is
            # live out of the last index of the first piece.
            if first.end < len(info.live_out) and name not in info.live_out[first.end]:
                continue
            move = moves_by_key.get((name, second.start))
            if move is None:
                findings.append(
                    _finding(
                        fn,
                        f"{name} switches r{first.base}->r{second.base} "
                        "without an inserted move",
                        second.start,
                    )
                )
                continue
            used_moves.add((name, second.start))
            if move.src != first.base or move.dst != second.base:
                findings.append(
                    _finding(
                        fn,
                        f"move for {name} copies r{move.src}->r{move.dst} but "
                        f"the pieces switch r{first.base}->r{second.base}",
                        second.start,
                    )
                )

    for move in record.moves:
        if (move.vreg, move.ir_index) in used_moves:
            continue
        placement = record.placements.get(move.vreg)
        if placement is None or placement.spilled:
            findings.append(
                _finding(
                    fn,
                    f"recorded move for {move.vreg} has no register placement",
                    move.ir_index,
                )
            )
            continue
        findings.append(
            _finding(
                fn,
                f"recorded move for {move.vreg} at IR {move.ir_index} does not "
                "join two placement pieces",
                move.ir_index,
            )
        )
    return findings


def _check_tag_accounting(
    fn: IRFunction, record: AllocationRecord, report
) -> list[Finding]:
    """Inserted moves must restore preferred-register tags.

    UCC-RA only pays for a move when it switches a value *back to* the
    register the old binary used (paper Figure 4(c)); a move to any
    other register is never energy-justified.  The report's count must
    also match the record, or the planner's accounting (and hence the
    energy comparison) is off.
    """
    findings = []
    prefs = getattr(report, "preferences", None)
    if prefs is not None:
        for move in record.moves:
            tags_after = {
                reg
                for (name, idx), reg in prefs.tags.items()
                if name == move.vreg and idx >= move.ir_index
            }
            if move.dst not in tags_after:
                findings.append(
                    _finding(
                        fn,
                        f"move for {move.vreg} targets r{move.dst}, which is "
                        "not a preferred tag at or after the move point",
                        move.ir_index,
                    )
                )
    moves_reported = getattr(report, "moves_inserted", None)
    if moves_reported is not None and moves_reported != len(record.moves):
        findings.append(
            _finding(
                fn,
                f"report charges {moves_reported} inserted move(s) but the "
                f"record carries {len(record.moves)}",
            )
        )
    return findings
