"""Verification-pass framework.

Every checker in :mod:`repro.analysis` is a *pass*: a function that
inspects one compilation product and returns a list of
:class:`Finding` objects (empty = clean).  The driver
(:mod:`repro.analysis.driver`) runs a pipeline of passes over a
compiled program or a planned update, collects the findings into a
:class:`VerificationReport`, and raises :class:`VerificationError`
when any pass failed.

The passes never trust the producer: each one recomputes the facts it
needs (liveness, addresses, patched words, energy) from the product
itself, so a bug in UCC-RA, UCC-DA, the differ, or the ILP backend is
caught before a corrupt image is disseminated at ~1000x the energy
cost per bit of local execution (paper §1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One verification failure.

    ``location`` is pass-specific: an IR index for allocation findings,
    a byte address for layout findings, a word address for patch
    findings.
    """

    pass_name: str
    message: str
    function: str | None = None
    location: int | None = None

    def render(self) -> str:
        where = f" [{self.function}]" if self.function else ""
        at = f" @ {self.location}" if self.location is not None else ""
        return f"{self.pass_name}{where}{at}: {self.message}"


@dataclass
class VerificationReport:
    """The outcome of one verification run."""

    findings: list[Finding] = field(default_factory=list)
    passes_run: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def failing_passes(self) -> list[str]:
        """Names of the passes that produced findings, in run order."""
        failed = {f.pass_name for f in self.findings}
        return [name for name in self.passes_run if name in failed]

    def extend(self, pass_name: str, findings: list[Finding]) -> None:
        if pass_name not in self.passes_run:
            self.passes_run.append(pass_name)
        self.findings.extend(findings)

    def by_pass(self, pass_name: str) -> list[Finding]:
        return [f for f in self.findings if f.pass_name == pass_name]

    def render(self) -> str:
        lines = []
        for name in self.passes_run:
            found = self.by_pass(name)
            status = "ok" if not found else f"{len(found)} finding(s)"
            lines.append(f"pass {name:<12}: {status}")
        for finding in self.findings:
            lines.append("  " + finding.render())
        return "\n".join(lines)

    def raise_if_failed(self) -> "VerificationReport":
        if not self.ok:
            raise VerificationError(self)
        return self


class VerificationError(Exception):
    """A compilation product failed independent verification.

    Carries the full :class:`VerificationReport`; the message names the
    failing pass(es) and the first finding so logs are actionable even
    without inspecting the report object.
    """

    def __init__(self, report: VerificationReport):
        self.report = report
        failed = ", ".join(report.failing_passes()) or "<unknown>"
        first = report.findings[0].render() if report.findings else ""
        super().__init__(
            f"verification failed in pass(es) {failed}: {first}"
            + (
                f" (+{len(report.findings) - 1} more)"
                if len(report.findings) > 1
                else ""
            )
        )

    @property
    def failing_passes(self) -> list[str]:
        return self.report.failing_passes()
