"""Patch verifier: the edit script rebuilds the new image exactly.

Independently replays the sensor-side patcher against the old image
and compares the result with the new image word-for-word, reporting
the first divergence with the primitive that produced it.  Also checks
that the script survives its own wire format (serialise → parse →
identical primitives) and that the data-segment script round-trips —
the sensor only ever sees bytes, so a script whose *serialisation*
is lossy would corrupt every node even if the in-memory object was
correct.
"""

from __future__ import annotations

from ..diff.data_diff import DataScript, apply_data
from ..diff.edit_script import EditScript
from ..diff.patcher import PatchError, apply_script_annotated
from ..isa.assembler import BinaryImage
from .base import Finding

PASS_NAME = "patch"


def verify_patch_product(
    old: BinaryImage,
    new: BinaryImage,
    script: EditScript,
    data_script: DataScript | None = None,
) -> list[Finding]:
    """Re-apply ``script`` (and optionally ``data_script``) and compare."""
    findings: list[Finding] = []

    def fail(message: str, location: int | None = None) -> None:
        findings.append(
            Finding(pass_name=PASS_NAME, message=message, location=location)
        )

    # 1. The script applies and reproduces the new code words.
    try:
        annotated = apply_script_annotated(old, script)
    except PatchError as exc:
        fail(f"script does not apply to the old image: {exc}")
        annotated = None
    if annotated is not None:
        rebuilt: list[int] = []
        provenance: list[int] = []
        for unit, prim_index in annotated:
            rebuilt.extend(unit)
            provenance.extend(prim_index for _ in unit)
        expected = new.words()
        if len(rebuilt) != len(expected):
            fail(
                f"patched image is {len(rebuilt)} words, expected "
                f"{len(expected)}",
                min(len(rebuilt), len(expected)),
            )
        for index, (got, want) in enumerate(zip(rebuilt, expected)):
            if got != want:
                prim_index = provenance[index]
                prim = script.primitives[prim_index]
                fail(
                    f"word {index}: patched {got:#06x} != expected "
                    f"{want:#06x} (primitive {prim_index}, "
                    f"{prim.op.name.lower()})",
                    index,
                )
                break  # first divergence is the actionable one

    # 2. The wire format round-trips.
    try:
        reparsed = EditScript.from_bytes(script.to_bytes())
    except (ValueError, IndexError) as exc:
        fail(f"script serialisation does not parse back: {exc}")
    else:
        if reparsed.primitives != script.primitives:
            fail("script serialisation round-trip altered the primitives")

    # 3. The data segment rebuilds exactly.
    if data_script is not None:
        patched = apply_data(old.data, data_script)
        if patched != new.data:
            location = next(
                (
                    offset
                    for offset, (got, want) in enumerate(zip(patched, new.data))
                    if got != want
                ),
                min(len(patched), len(new.data)),
            )
            fail(
                f"data segment diverges at byte {location} "
                f"(patched {len(patched)} bytes, expected {len(new.data)})",
                location,
            )
    return findings
