"""Layout verifier: data layout soundness + addressing consistency.

Two passes:

* ``layout`` — the :class:`~repro.datalayout.layout.DataLayout` itself
  is sound: every placed object has a descriptor, objects never
  overlap (two simultaneously-live slots sharing bytes would corrupt
  activation records at run time), everything sits inside the segment,
  recorded holes do not cover live objects, and the assembled data
  image has exactly the segment's length.

* ``addressing`` — every memory-addressing machine instruction is
  consistent with the layout map: an ``LDS``/``STS`` emitted for an IR
  instruction must target a byte inside one of the objects that IR
  instruction legitimately touches (its ``MemRef`` operands, the spill
  slots of its spilled vregs, the callee's parameter slots for a
  ``CALL``), and the ``LDI`` pair that forms the Z pointer for indexed
  accesses must encode the array's base address.  A stale address —
  the exact corruption a wrong UCC-DA reuse would produce — is caught
  here before the image ships.
"""

from __future__ import annotations

from ..datalayout.layout import DataLayout, spill_uid
from ..ir.instructions import IROp, MemRef
from ..isa import registers as regs
from .base import Finding

LAYOUT_PASS = "layout"
ADDRESSING_PASS = "addressing"


def verify_data_layout(layout: DataLayout) -> list[Finding]:
    """Check the layout's internal invariants."""
    findings: list[Finding] = []

    def fail(message: str, location: int | None = None) -> None:
        findings.append(
            Finding(pass_name=LAYOUT_PASS, message=message, location=location)
        )

    spans = []
    for uid, address in sorted(layout.addresses.items()):
        obj = layout.objects.get(uid)
        if obj is None:
            fail(f"placed object {uid} has no descriptor", address)
            continue
        if obj.size <= 0:
            fail(f"object {uid} has non-positive size {obj.size}", address)
            continue
        if address < layout.segment_base or address + obj.size > layout.segment_end:
            fail(
                f"object {uid} [{address}, {address + obj.size}) falls outside "
                f"the data segment [{layout.segment_base}, {layout.segment_end})",
                address,
            )
        spans.append((address, address + obj.size, uid))

    spans.sort()
    for (start_a, end_a, uid_a), (start_b, end_b, uid_b) in zip(spans, spans[1:]):
        if end_a > start_b:
            fail(
                f"overlapping slots: {uid_a} [{start_a}, {end_a}) and "
                f"{uid_b} [{start_b}, {end_b})",
                start_b,
            )

    for hole in layout.holes:
        hole_end = hole.address + hole.size
        if hole.address < layout.segment_base or hole_end > layout.segment_end:
            fail(
                f"hole [{hole.address}, {hole_end}) falls outside the segment",
                hole.address,
            )
        for start, end, uid in spans:
            if start < hole_end and hole.address < end:
                fail(
                    f"hole [{hole.address}, {hole_end}) overlaps live object {uid}",
                    hole.address,
                )
    return findings


def verify_data_image(layout: DataLayout, data: bytes) -> list[Finding]:
    """The assembled data segment must span exactly the layout."""
    expected = layout.segment_end - layout.segment_base
    if len(data) != expected:
        return [
            Finding(
                pass_name=LAYOUT_PASS,
                message=(
                    f"data image is {len(data)} bytes but the layout spans "
                    f"{expected}"
                ),
            )
        ]
    return []


def verify_addressing(program) -> list[Finding]:
    """Cross-check every address-bearing machine instruction.

    ``program`` is a :class:`~repro.core.compiler.CompiledProgram`
    (duck-typed: needs ``module``, ``records``, ``layout``,
    ``machine``).
    """
    findings: list[Finding] = []
    layout = program.layout
    module = program.module

    def fail(fn_name: str, message: str, location: int | None = None) -> None:
        findings.append(
            Finding(
                pass_name=ADDRESSING_PASS,
                message=message,
                function=fn_name,
                location=location,
            )
        )

    def safe_extent(uid: str) -> tuple[int, int] | None:
        if uid in layout.addresses and uid in layout.objects:
            return layout.extent(uid)
        return None

    def extents_for(fn_name: str, ir_index: int) -> list[tuple[int, int]] | None:
        """Byte ranges IR instruction ``ir_index`` of ``fn_name`` may
        address; None when the instruction cannot be resolved."""
        fn = module.functions.get(fn_name)
        if fn is None:
            return None
        record = program.records.get(fn_name)
        extents: list[tuple[int, int]] = []
        if ir_index < 0:
            # Prologue parameter loads read the function's own slots.
            for reg in fn.param_vregs:
                extent = safe_extent(reg.name)
                if extent:
                    extents.append(extent)
            return extents
        if ir_index >= len(fn.instrs):
            return None
        ins = fn.instrs[ir_index]
        for arg in ins.args:
            if isinstance(arg, MemRef):
                extent = safe_extent(arg.symbol)
                if extent:
                    extents.append(extent)
        if record is not None:
            for reg in ins.vregs():
                placement = record.placements.get(reg.name)
                if placement is not None and placement.spilled:
                    extent = safe_extent(spill_uid(fn_name, reg.name))
                    if extent:
                        extents.append(extent)
        if ins.op is IROp.CALL:
            callee = module.functions.get(ins.args[0])
            if callee is not None:
                for reg in callee.param_vregs:
                    extent = safe_extent(reg.name)
                    if extent:
                        extents.append(extent)
        return extents

    for instr in program.machine:
        if instr.is_label:
            continue
        fn_name = instr.comment or "<unattributed>"
        if instr.mnemonic in ("lds", "sts"):
            valid = extents_for(fn_name, instr.ir_index)
            if valid is None:
                fail(
                    fn_name,
                    f"{instr.mnemonic} at IR {instr.ir_index} cannot be "
                    "attributed to an IR instruction",
                    instr.addr,
                )
                continue
            if not any(start <= instr.addr < end for start, end in valid):
                fail(
                    fn_name,
                    f"{instr.mnemonic} targets address {instr.addr:#06x}, "
                    "which belongs to no object this IR instruction touches",
                    instr.addr,
                )
        elif instr.mnemonic == "ldi" and instr.rd in (regs.Z_LO, regs.Z_HI):
            # Z-pointer formation for a run-time indexed access: the
            # immediate must be the low/high byte of a referenced
            # array's base address.
            fn = module.functions.get(fn_name)
            if fn is None or not (0 <= instr.ir_index < len(fn.instrs)):
                continue
            bases = [
                layout.addresses[arg.symbol]
                for arg in fn.instrs[instr.ir_index].args
                if isinstance(arg, MemRef) and arg.symbol in layout.addresses
            ]
            if not bases:
                continue
            shift = 0 if instr.rd == regs.Z_LO else 8
            if not any((base >> shift) & 0xFF == instr.imm for base in bases):
                fail(
                    fn_name,
                    f"Z-pointer byte {instr.imm:#04x} matches no referenced "
                    "array base address",
                    instr.ir_index,
                )
    return findings
