"""A small reusable dataflow framework over the IR CFG.

Built on :mod:`repro.ir.cfg` and complementing the backward liveness
solver in :mod:`repro.ir.liveness` with the *forward* facts the
verifier passes need:

* :func:`reaching_definitions` — which definitions of each virtual
  register can reach each instruction,
* :func:`def_use_chains` — the def→use edges derived from them, and
* :func:`dominators` / :func:`immediate_dominators` — the classic
  block dominance relation.

Functions in this repo are small (tens of instructions), so the
solvers favour clarity over asymptotics: plain iterate-to-fixpoint
with per-instruction transfer functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.cfg import CFG, build_cfg
from ..ir.function import IRFunction

#: Pseudo definition index for function parameters (defined at entry).
ENTRY_DEF = -1


@dataclass(frozen=True)
class Definition:
    """One definition event: ``vreg`` is written at instruction
    ``index`` (``ENTRY_DEF`` for parameters, live from entry)."""

    vreg: str
    index: int


@dataclass
class ReachingDefinitions:
    """Forward dataflow facts: definitions reaching each instruction."""

    function: IRFunction
    cfg: CFG
    reach_in: list[set]
    reach_out: list[set]

    def defs_reaching(self, index: int, vreg: str) -> set:
        """Definitions of ``vreg`` that may reach instruction ``index``."""
        return {d for d in self.reach_in[index] if d.vreg == vreg}


def reaching_definitions(fn: IRFunction, cfg: CFG | None = None) -> ReachingDefinitions:
    """Solve reaching definitions for ``fn``."""
    cfg = cfg or build_cfg(fn)
    count = len(fn.instrs)
    gen: list[set] = []
    kill_names: list[set] = []
    for idx, ins in enumerate(fn.instrs):
        names = {r.name for r in ins.defs()}
        gen.append({Definition(name, idx) for name in names})
        kill_names.append(names)

    entry_defs = {Definition(reg.name, ENTRY_DEF) for reg in fn.param_vregs}
    reach_in = [set() for _ in range(count)]
    reach_out = [set() for _ in range(count)]

    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            for idx in range(block.start, block.end):
                if idx == block.start:
                    if block.index == 0:
                        incoming = set(entry_defs)
                    else:
                        incoming = set()
                    for pred in block.predecessors:
                        pred_block = cfg.blocks[pred]
                        if pred_block.start < pred_block.end:
                            incoming |= reach_out[pred_block.end - 1]
                else:
                    incoming = set(reach_out[idx - 1])
                outgoing = gen[idx] | {
                    d for d in incoming if d.vreg not in kill_names[idx]
                }
                if incoming != reach_in[idx] or outgoing != reach_out[idx]:
                    reach_in[idx] = incoming
                    reach_out[idx] = outgoing
                    changed = True

    return ReachingDefinitions(
        function=fn, cfg=cfg, reach_in=reach_in, reach_out=reach_out
    )


@dataclass
class DefUseChains:
    """Def→use edges of one function.

    ``uses_of`` maps a :class:`Definition` to the instruction indices
    that may read it; ``defs_of`` maps a (vreg, use index) pair to the
    definitions that may feed it.  A use with *no* reaching definition
    (an uninitialised read the front end let through) appears in
    ``undefined_uses``.
    """

    uses_of: dict = field(default_factory=dict)
    defs_of: dict = field(default_factory=dict)
    undefined_uses: list = field(default_factory=list)


def def_use_chains(
    fn: IRFunction, rd: ReachingDefinitions | None = None
) -> DefUseChains:
    """Derive def-use chains from reaching definitions."""
    rd = rd or reaching_definitions(fn)
    chains = DefUseChains()
    for idx, ins in enumerate(fn.instrs):
        for reg in ins.uses():
            feeding = rd.defs_reaching(idx, reg.name)
            chains.defs_of[(reg.name, idx)] = feeding
            if not feeding:
                chains.undefined_uses.append((reg.name, idx))
            for definition in feeding:
                chains.uses_of.setdefault(definition, set()).add(idx)
    return chains


def dominators(cfg: CFG) -> dict[int, set]:
    """Block index → set of dominating block indices (reflexive)."""
    if not cfg.blocks:
        return {}
    all_blocks = {b.index for b in cfg.blocks}
    dom: dict[int, set] = {b.index: set(all_blocks) for b in cfg.blocks}
    dom[0] = {0}
    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            if block.index == 0:
                continue
            preds = [p for p in block.predecessors]
            if preds:
                incoming = set.intersection(*(dom[p] for p in preds))
            else:  # unreachable block: only itself
                incoming = set()
            new = incoming | {block.index}
            if new != dom[block.index]:
                dom[block.index] = new
                changed = True
    return dom


def immediate_dominators(cfg: CFG) -> dict[int, int | None]:
    """Block index → immediate dominator (None for the entry and for
    unreachable blocks)."""
    dom = dominators(cfg)
    idom: dict[int, int | None] = {}
    for block in cfg.blocks:
        index = block.index
        strict = dom[index] - {index}
        if not strict:
            idom[index] = None
            continue
        # The immediate dominator is the strict dominator dominated by
        # every other strict dominator.
        idom[index] = max(strict, key=lambda d: len(dom[d]))
    return idom
