"""Verification driver: run every pass over a compilation product.

Two entry points mirror the two products the pipeline ships:

* :func:`verify_program` — one compiled binary: allocation, layout,
  and addressing passes;
* :func:`verify_update` — a planned update: the new program's checks
  plus the patch replay and the energy audit.

Both return a :class:`~repro.analysis.base.VerificationReport`;
callers that want hard failure use ``.raise_if_failed()`` (the
``checked=True`` pipeline mode does exactly that).
"""

from __future__ import annotations

from .alloc_verifier import PASS_NAME as ALLOCATION_PASS
from .alloc_verifier import verify_allocation_record
from .base import VerificationReport
from .energy_audit import PASS_NAME as ENERGY_PASS
from .energy_audit import audit_update
from .layout_verifier import (
    ADDRESSING_PASS,
    LAYOUT_PASS,
    verify_addressing,
    verify_data_image,
    verify_data_layout,
)
from .patch_verifier import PASS_NAME as PATCH_PASS
from .patch_verifier import verify_patch_product

ALL_PASSES = (
    ALLOCATION_PASS,
    LAYOUT_PASS,
    ADDRESSING_PASS,
    PATCH_PASS,
    ENERGY_PASS,
)


def verify_program(program, ra_reports=None) -> VerificationReport:
    """Verify one compiled program (a
    :class:`~repro.core.compiler.CompiledProgram`).

    ``ra_reports`` optionally maps function name →
    :class:`~repro.regalloc.ucc_ra.UCCReport` for the preferred-tag
    accounting checks.
    """
    ra_reports = ra_reports or {}
    report = VerificationReport()

    allocation_findings = []
    for name, fn in program.module.functions.items():
        record = program.records.get(name)
        if record is None:
            continue  # coverage findings would need a record to check
        allocation_findings.extend(
            verify_allocation_record(fn, record, report=ra_reports.get(name))
        )
    report.extend(ALLOCATION_PASS, allocation_findings)

    layout_findings = verify_data_layout(program.layout)
    layout_findings.extend(
        verify_data_image(program.layout, program.image.data)
    )
    report.extend(LAYOUT_PASS, layout_findings)

    report.extend(ADDRESSING_PASS, verify_addressing(program))
    return report


def verify_update(result, cnt: float = 1000.0) -> VerificationReport:
    """Verify one planned update (an
    :class:`~repro.core.update.UpdateResult`)."""
    report = verify_program(result.new, ra_reports=result.ra_reports)
    report.extend(
        PATCH_PASS,
        verify_patch_product(
            result.old.image,
            result.new.image,
            result.diff.script,
            data_script=result.data_script,
        ),
    )
    report.extend(
        ENERGY_PASS,
        audit_update(result, _energy_of(result), cnt=cnt),
    )
    return report


def _energy_of(result):
    """The energy model the update was planned under (default when the
    planner did not record one)."""
    from ..energy.model import DEFAULT_ENERGY_MODEL

    return getattr(result, "energy", None) or DEFAULT_ENERGY_MODEL
