"""The committed baseline: grandfathered findings with justifications.

A baseline entry matches a finding by *fingerprint* — a hash of the
rule id, the file's lint-root-relative path, the flagged source line's
text, and an occurrence index — so entries survive unrelated edits
(line-number drift) but die with the code they grandfather: fix or
delete the flagged line and the entry goes stale.  Stale entries are
reported so the baseline can only shrink, never silently rot.

Every entry **must** carry a non-empty justification; loading a
baseline with a silent entry is a usage error, not a lint finding —
the file is hand-maintained and reviewed, so an unjustified entry is a
broken contract, not a code smell.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple

from .base import Finding

BASELINE_VERSION = 1

#: Default committed baseline location, relative to the lint root.
DEFAULT_BASELINE = "tools/lint_baseline.json"


class BaselineError(ValueError):
    """The baseline file is malformed or violates the contract."""


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    justification: str


def fingerprint_findings(findings: List[Finding]) -> List[str]:
    """One fingerprint per finding, aligned with the input order.

    Identical flagged lines in one file are disambiguated by an
    occurrence counter in runner order (top of file downwards), which
    is stable as long as the duplicates themselves do not move past
    each other.
    """
    seen: Dict[Tuple[str, str, str], int] = {}
    out: List[str] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        payload = f"{finding.rule}:{finding.path}:{finding.snippet}:{occurrence}"
        out.append(hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16])
    return out


@dataclass
class Baseline:
    """The set of grandfathered findings, keyed by fingerprint."""

    entries: Dict[str, BaselineEntry]

    @staticmethod
    def empty() -> "Baseline":
        return Baseline(entries={})

    @staticmethod
    def load(path: Path) -> "Baseline":
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise BaselineError(f"{path}: not valid JSON: {error}") from error
        if document.get("version") != BASELINE_VERSION:
            raise BaselineError(
                f"{path}: unsupported baseline version "
                f"{document.get('version')!r} (expected {BASELINE_VERSION})"
            )
        entries: Dict[str, BaselineEntry] = {}
        for raw in document.get("entries", []):
            entry = BaselineEntry(
                fingerprint=str(raw.get("fingerprint", "")),
                rule=str(raw.get("rule", "")),
                path=str(raw.get("path", "")),
                justification=str(raw.get("justification", "")).strip(),
            )
            if not entry.fingerprint or not entry.rule:
                raise BaselineError(
                    f"{path}: entry missing fingerprint/rule: {raw!r}"
                )
            if not entry.justification:
                raise BaselineError(
                    f"{path}: entry {entry.fingerprint} ({entry.rule} in "
                    f"{entry.path}) has no justification — every "
                    f"grandfathered finding must explain why it is allowed"
                )
            if entry.fingerprint in entries:
                raise BaselineError(
                    f"{path}: duplicate fingerprint {entry.fingerprint}"
                )
            entries[entry.fingerprint] = entry
        return Baseline(entries=entries)

    def save(self, path: Path) -> None:
        document = {
            "version": BASELINE_VERSION,
            "entries": [
                {
                    "fingerprint": entry.fingerprint,
                    "rule": entry.rule,
                    "path": entry.path,
                    "justification": entry.justification,
                }
                for entry in sorted(
                    self.entries.values(),
                    key=lambda e: (e.path, e.rule, e.fingerprint),
                )
            ],
        }
        path.write_text(
            json.dumps(document, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    @staticmethod
    def from_findings(
        findings: List[Finding], justification: str
    ) -> "Baseline":
        """A fresh baseline grandfathering ``findings`` (used by
        ``repro lint --write-baseline``; the placeholder justification
        is meant to be hand-edited before committing)."""
        entries: Dict[str, BaselineEntry] = {}
        for finding, fingerprint in zip(
            findings, fingerprint_findings(findings)
        ):
            entries[fingerprint] = BaselineEntry(
                fingerprint=fingerprint,
                rule=finding.rule,
                path=finding.path,
                justification=justification,
            )
        return Baseline(entries=entries)

    def split(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], List[Tuple[Finding, BaselineEntry]], List[BaselineEntry]]:
        """Partition ``findings`` against the baseline.

        Returns ``(active, grandfathered, stale_entries)``: findings
        not covered by the baseline, findings matched to their entry,
        and entries that matched nothing (the code they covered is
        gone — delete them).
        """
        active: List[Finding] = []
        grandfathered: List[Tuple[Finding, BaselineEntry]] = []
        used: set = set()
        for finding, fingerprint in zip(
            findings, fingerprint_findings(findings)
        ):
            entry = self.entries.get(fingerprint)
            if entry is None:
                active.append(finding)
            else:
                grandfathered.append((finding, entry))
                used.add(fingerprint)
        stale = [
            entry
            for fingerprint, entry in sorted(self.entries.items())
            if fingerprint not in used
        ]
        return active, grandfathered, stale


__all__ = [
    "BASELINE_VERSION",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "DEFAULT_BASELINE",
    "fingerprint_findings",
]
