"""repro.lint — a determinism- and safety-certifying static analysis suite.

Every layer of this repo stakes correctness on byte-determinism:
content-addressed configs and caches, canonicalised ILP solve memos,
byte-deterministic ``CampaignReport`` digests, and replay-identity
fault oracles.  The fuzz sweeps catch violations *after* the fact;
this package proves the invariants *statically*, in the same spirit as
the paper's insight that the compiler — not runtime retransmission —
is the right place to prevent update cost.

The suite is an AST-based rule framework over the repo's own source:

* a rule registry with per-rule severity (:mod:`repro.lint.base`),
* inline ``# repro-lint: disable=RULE -- justification`` suppressions
  with *required* justification (:mod:`repro.lint.suppress`),
* a committed baseline file for grandfathered findings
  (:mod:`repro.lint.baseline`),
* human, JSON, and SARIF output (:mod:`repro.lint.output`),
* the headline **DIGEST-TAINT** pass — an interprocedural-lite
  dataflow analysis flagging nondeterministic sources (wall clock,
  unseeded RNG, ``id()``/``hash()``, unordered set/dict-view
  iteration, environment and filesystem-ordering reads) that flow
  into digest sinks (:mod:`repro.lint.digest_taint`),
* a rule pack encoding the repo's established discipline
  (:mod:`repro.lint.rules`): ERR001, RNG001, POOL001, OBS001,
  FROZEN001.

Run it as ``repro lint src tools`` (see ``docs/LINT.md`` for the rule
catalogue and the suppression/baseline policy).
"""

from .base import Finding, ModuleSource, Rule, all_rules, get_rule
from .baseline import Baseline, BaselineEntry
from .runner import LintResult, lint_paths

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintResult",
    "ModuleSource",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
]

# Importing the rule modules registers them with the registry.
from . import digest_taint as _digest_taint  # noqa: E402,F401
from . import rules as _rules  # noqa: E402,F401
