"""The lint runner: walk files, run rules, apply suppressions + baseline.

Paths in findings are always the *lint-root-relative posix path*, so
reports are identical no matter where the runner is invoked from and
baseline fingerprints are stable across machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from . import suppress
from .base import Finding, ModuleSource, all_rules
from .baseline import Baseline, BaselineEntry

#: Directory names never descended into.
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".venv",
    "node_modules",
    ".mypy_cache",
    ".ruff_cache",
    ".pytest_cache",
}


@dataclass
class LintResult:
    """Everything one run produced, pre-partitioned for reporting."""

    #: findings that count against the exit code
    active: List[Finding] = field(default_factory=list)
    #: findings matched to a baseline entry (reported, never fatal)
    grandfathered: List[Tuple[Finding, BaselineEntry]] = field(
        default_factory=list
    )
    #: baseline entries whose code is gone — the baseline should shrink
    stale_entries: List[BaselineEntry] = field(default_factory=list)
    #: findings silenced by a justified inline suppression
    suppressed: List[Finding] = field(default_factory=list)
    #: files that failed to parse, as (path, message)
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        fatal = [f for f in self.active if f.severity == "error"]
        if fatal or self.parse_errors:
            return 1
        return 0

    def all_raw_findings(self) -> List[Finding]:
        """Active + grandfathered, in report order (for --write-baseline)."""
        return self.active + [finding for finding, _ in self.grandfathered]


def discover(paths: Sequence[Path], root: Path) -> List[Tuple[Path, str]]:
    """Expand ``paths`` into ``(file, relpath)`` pairs, sorted by relpath."""
    seen = {}
    for path in paths:
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = path.rglob("*.py")
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for file in candidates:
            if any(part in _SKIP_DIRS for part in file.parts):
                continue
            relpath = _relativize(file, root)
            seen[relpath] = file
    return [(seen[relpath], relpath) for relpath in sorted(seen)]


def _relativize(file: Path, root: Path) -> str:
    try:
        return file.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return file.as_posix()


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    baseline: Optional[Baseline] = None,
    only_rules: Optional[Sequence[str]] = None,
) -> LintResult:
    """Run every registered rule over ``paths``.

    ``root`` anchors relative paths (defaults to the current directory);
    ``baseline`` partitions findings into active vs grandfathered;
    ``only_rules`` restricts the run to the named rule ids.
    """
    root = root or Path.cwd()
    baseline = baseline or Baseline.empty()
    rules = all_rules()
    if only_rules:
        wanted = set(only_rules)
        rules = [rule for rule in rules if rule.rule_id in wanted]
    result = LintResult()
    raw: List[Finding] = []
    for file, relpath in discover(paths, root):
        try:
            module = ModuleSource.load(file, relpath)
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            result.parse_errors.append((relpath, str(error)))
            continue
        # Reports and fingerprints use the root-relative path.
        module.path = relpath
        result.files_checked += 1
        raw.extend(_lint_module(module, rules, result))
    # Deterministic report order, independent of rule execution order.
    raw.sort(key=lambda f: (f.path, f.line, f.column, f.rule, f.message))
    active, grandfathered, stale = baseline.split(raw)
    result.active = active
    result.grandfathered = grandfathered
    result.stale_entries = stale
    return result


def _lint_module(
    module: ModuleSource, rules: Sequence, result: LintResult
) -> List[Finding]:
    suppressions, sup_findings = suppress.collect(module)
    silenced = suppress.suppressed_rules_by_line(suppressions)
    kept: List[Finding] = list(sup_findings)
    for rule in rules:
        for finding in rule.check(module):
            if finding.rule in silenced.get(finding.line, set()):
                result.suppressed.append(finding)
            else:
                kept.append(finding)
    return kept


__all__ = ["LintResult", "discover", "lint_paths"]
