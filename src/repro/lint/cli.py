"""Argparse front-end for ``repro lint``.

Kept separate from :mod:`repro.cli` so the lint suite stays importable
and testable without the rest of the CLI; ``repro.cli`` registers a
``lint`` subcommand that delegates to :func:`run`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .base import all_rules
from .baseline import DEFAULT_BASELINE, Baseline, BaselineError
from .output import render_human, render_json, render_sarif
from .runner import lint_paths


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tools"],
        help="files or directories to lint (default: src tools)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="lint root; finding paths and the baseline are relative "
        "to it (default: current directory)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} under the "
        "root, when it exists)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding as active",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write all current findings to PATH as a fresh baseline "
        "(justifications are placeholders — edit before committing) "
        "and exit 0",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RULE_ID",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also show baselined and suppressed findings",
    )


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id} [{rule.severity}] {rule.name}")
            print(f"    {rule.rationale}")
        return 0

    root = Path(args.root)
    baseline = Baseline.empty()
    if not args.no_baseline and args.write_baseline is None:
        baseline_path = (
            Path(args.baseline)
            if args.baseline
            else root / DEFAULT_BASELINE
        )
        if baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except BaselineError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        elif args.baseline:
            print(
                f"error: baseline {baseline_path} does not exist",
                file=sys.stderr,
            )
            return 2

    result = lint_paths(
        [Path(p) for p in args.paths],
        root=root,
        baseline=baseline,
        only_rules=args.rule,
    )

    if args.write_baseline is not None:
        fresh = Baseline.from_findings(
            result.all_raw_findings(),
            justification="TODO: justify this grandfathered finding",
        )
        fresh.save(Path(args.write_baseline))
        print(
            f"wrote {len(fresh.entries)} entries to {args.write_baseline}; "
            f"replace the TODO justifications before committing"
        )
        return 0

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_human(result, verbose=args.verbose))
    return result.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism- and safety-certifying lint for this repo",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())


__all__ = ["add_arguments", "main", "run"]
