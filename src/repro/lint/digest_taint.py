"""DIGEST-TAINT: nondeterministic sources must not reach digest sinks.

Everything content-addressed in this repo — config digests, solve-memo
keys, ``CampaignReport`` digests, fuzz replay digests — promises to be
a pure function of its logical inputs: byte-identical across runs,
platforms, and ``PYTHONHASHSEED`` values.  This pass proves it
statically with a per-function forward dataflow plus
*interprocedural-lite* module summaries.

**Sinks** are discovered, not hardcoded: a ``hashlib.<algo>(...)``
constructor call, an ``.update(...)`` on a value built from one, or a
call to a same-module function whose own body feeds a parameter into a
sink (``_digest_of``, ``canonical_digest`` and friends — this is the
interprocedural-lite half, so taint is caught at the call site that
introduced it, not inside the innocent helper).

**Sources**, each tagged with a human-readable reason:

* wall clock — ``time.time``/``perf_counter``/``monotonic``,
  ``datetime.now``/``utcnow``/``today`` — except under ``repro/obs/``,
  whose whole job is measuring wall time;
* unseeded module-level RNG — ``random.random()``, ``random.randint``
  … (calls on a ``random.Random`` *instance* are fine: RNG001 already
  polices how instances are seeded);
* interpreter identity — ``id()``, ``hash()`` (salted for ``str`` by
  ``PYTHONHASHSEED``), explicit ``object.__repr__``;
* ambient state — ``os.environ``/``os.getenv`` reads;
* filesystem ordering — ``os.listdir``/``os.scandir``, ``glob``,
  ``Path.iterdir``/``rglob``;
* unordered iteration — values of ``set``/``frozenset`` type and raw
  dict views (``.keys()``/``.values()``/``.items()``): *order* taint
  that an enclosing ``sorted(...)`` cleanses (value taints are not
  cleansed by sorting — a sorted list of timestamps is still
  timestamps);
* ``json.dumps(..., default=str)`` / ``default=repr`` — the fallback
  encoder bottoms out in ``object.__repr__``, which embeds a memory
  address; a canonical encoder must reject unknown types instead.

Taint propagates through assignments, augmented assignments, tuple
unpacking, loop targets, comprehensions, f-strings, and accumulator
mutation (``append``/``add``/``extend``/``update``/``insert``), with a
fixpoint loop so flows through loop-carried variables converge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .base import Finding, ModuleSource, Rule, dotted_name, register

#: Taint tokens are strings: ``"value:<reason>"`` survives everything,
#: ``"order:<reason>"`` is cleansed by ``sorted(...)``, ``"hasher"``
#: marks hashlib objects, and ``"param:<name>"`` threads parameter
#: identity through the summary computation.
Taint = Set[str]

_WALL_CLOCK_MODULES = ("time", "datetime", "date")
_WALL_CLOCK_ATTRS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "now",
    "utcnow",
    "today",
}
_MODULE_RNG_ATTRS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "getrandbits",
    "randbytes",
}
_FS_ORDER_CALLS = {
    "os.listdir",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
}
_FS_ORDER_ATTRS = {"iterdir", "rglob"}
_HASHLIB_ALGOS = {
    "sha256",
    "sha224",
    "sha384",
    "sha512",
    "sha1",
    "md5",
    "blake2b",
    "blake2s",
    "sha3_256",
    "sha3_512",
}
_ACCUMULATE_ATTRS = {"append", "add", "extend", "update", "insert"}


def _is_value(token: str) -> bool:
    return token.startswith("value:")


def _is_order(token: str) -> bool:
    return token.startswith("order:")


def _reasons(taint: Taint) -> List[str]:
    return sorted(
        token.split(":", 1)[1]
        for token in taint
        if _is_value(token) or _is_order(token)
    )


_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet"}


def _is_set_annotation(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    name = dotted_name(node)
    return name.rsplit(".", 1)[-1] in _SET_ANNOTATIONS


@dataclass
class FunctionSummary:
    """What a function does with taint, seen from a call site."""

    node: ast.FunctionDef
    #: positional parameter names, for call-site argument mapping
    params: List[str]
    #: parameters whose value reaches a digest sink inside the body
    sink_params: Set[str] = field(default_factory=set)
    #: the return value carries taint born inside the body
    returns_taint: bool = False
    #: reasons attached to the tainted return, for messages
    return_reasons: Set[str] = field(default_factory=set)


@register
class DigestTaintRule(Rule):
    """DIGEST-TAINT: the headline dataflow pass."""

    rule_id = "DIGEST-TAINT"
    name = "digest-taint"
    severity = "error"
    rationale = (
        "Content addresses (config digests, solve-memo keys, "
        "CampaignReport digests, fuzz replay digests) must be pure "
        "functions of their logical inputs — byte-identical across "
        "runs, platforms, and PYTHONHASHSEED.  Wall clock, unseeded "
        "RNG, id()/hash(), environment reads, filesystem ordering, "
        "and unsorted set/dict-view iteration silently break that "
        "promise at the moment they flow into a digest."
    )

    #: wall-clock reads are this package's job, not a defect there
    exempt_scopes: Tuple[str, ...] = ("repro/obs/",)

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        exempt_clock = any(
            scope in module.relpath for scope in self.exempt_scopes
        )
        functions = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.FunctionDef)
        ]
        summaries: Dict[str, FunctionSummary] = {}
        for func in functions:
            summaries[func.name] = FunctionSummary(
                node=func,
                params=[arg.arg for arg in func.args.args],
            )
        # Two summary rounds: the second catches helpers that forward
        # to helpers (sink transitivity one level deep — the
        # "interprocedural-lite" contract).
        for _ in range(2):
            for summary in summaries.values():
                analysis = _FunctionTaint(
                    summary.node,
                    summaries,
                    exempt_clock=exempt_clock,
                    seed_params=True,
                )
                analysis.run()
                summary.sink_params = analysis.sink_params
                summary.returns_taint = analysis.returns_taint
                summary.return_reasons = analysis.return_reasons
        # Reporting pass: parameters are trusted (the caller's caller
        # is checked at its own call sites), everything born inside
        # the body is tracked.
        for func in functions:
            analysis = _FunctionTaint(
                func, summaries, exempt_clock=exempt_clock, seed_params=False
            )
            analysis.run()
            for node, reasons in analysis.violations:
                yield self.finding(
                    module,
                    node,
                    "nondeterministic data reaches a digest sink: "
                    + "; ".join(sorted(set(reasons))),
                )


class _FunctionTaint:
    """Forward taint dataflow over one function body."""

    def __init__(
        self,
        func: ast.FunctionDef,
        summaries: Dict[str, FunctionSummary],
        exempt_clock: bool,
        seed_params: bool,
    ):
        self.func = func
        self.summaries = summaries
        self.exempt_clock = exempt_clock
        self.env: Dict[str, Taint] = {}
        self.sink_params: Set[str] = set()
        self.returns_taint = False
        self.return_reasons: Set[str] = set()
        self.violations: List[Tuple[ast.AST, List[str]]] = []
        self._reported: Set[int] = set()
        for arg in func.args.args:
            if seed_params:
                self.env[arg.arg] = {f"param:{arg.arg}"}
            # A parameter annotated as a set is unordered wherever it
            # came from; iterating it near a digest needs sorted().
            if _is_set_annotation(arg.annotation):
                self.env.setdefault(arg.arg, set()).add(
                    "order:unsorted set iteration"
                )

    # -- driver ---------------------------------------------------------

    def run(self) -> None:
        # Fixpoint over the statement list: loop-carried taint (an
        # accumulator appended inside a loop, read after it) settles
        # within a few rounds; the bound guards pathological bodies.
        for _ in range(4):
            before = {name: set(taint) for name, taint in self.env.items()}
            for stmt in self.func.body:
                self._stmt(stmt)
            if self.env == before:
                break

    # -- statements -----------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested definitions get their own analysis
        if isinstance(stmt, ast.Assign):
            taint = self._expr(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._expr(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self._expr(stmt.value) | self._expr(stmt.target)
            self._bind(stmt.target, taint)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self._expr(stmt.value)
                reasons = _reasons(taint)
                if reasons:
                    self.returns_taint = True
                    self.return_reasons.update(reasons)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test)
            for child in stmt.body + stmt.orelse:
                self._stmt(child)
        elif isinstance(stmt, ast.For):
            taint = self._expr(stmt.iter)
            self._bind(stmt.target, taint)
            for child in stmt.body + stmt.orelse:
                self._stmt(child)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                taint = self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taint)
            for child in stmt.body:
                self._stmt(child)
        elif isinstance(stmt, ast.Try):
            for child in (
                stmt.body + stmt.orelse + stmt.finalbody
                + [s for handler in stmt.handlers for s in handler.body]
            ):
                self._stmt(child)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            pass  # messages do not feed digests
        # Pass/Break/Continue/Import/Global/Delete: nothing to track.

    def _bind(self, target: ast.expr, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint)
        # Attribute/Subscript writes: conservatively taint the base name.
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            base = target.value
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name) and base.id in self.env:
                self.env[base.id] |= {
                    t for t in taint if _is_value(t) or _is_order(t)
                }

    # -- expressions ----------------------------------------------------

    def _expr(self, expr: ast.expr) -> Taint:  # noqa: C901 — one dispatch
        if isinstance(expr, ast.Name):
            return set(self.env.get(expr.id, set()))
        if isinstance(expr, ast.Constant):
            return set()
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, (ast.Set,)):
            taint = self._union(expr.elts)
            taint.add("order:unsorted set iteration")
            return taint
        if isinstance(expr, ast.SetComp):
            taint = self._comprehension(expr.generators, [expr.elt])
            taint.add("order:unsorted set iteration")
            return taint
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            return self._comprehension(expr.generators, [expr.elt])
        if isinstance(expr, ast.DictComp):
            return self._comprehension(
                expr.generators, [expr.key, expr.value]
            )
        if isinstance(expr, ast.Attribute):
            name = dotted_name(expr)
            if name in ("os.environ",):
                return {"value:os.environ read"}
            return self._expr(expr.value)
        if isinstance(expr, ast.Subscript):
            return self._expr(expr.value) | self._expr(expr.slice)
        if isinstance(expr, ast.BinOp):
            return self._expr(expr.left) | self._expr(expr.right)
        if isinstance(expr, ast.BoolOp):
            return self._union(expr.values)
        if isinstance(expr, ast.UnaryOp):
            return self._expr(expr.operand)
        if isinstance(expr, ast.Compare):
            return self._expr(expr.left) | self._union(expr.comparators)
        if isinstance(expr, ast.IfExp):
            return (
                self._expr(expr.body)
                | self._expr(expr.orelse)
                | self._expr(expr.test)
            )
        if isinstance(expr, ast.JoinedStr):
            return self._union(expr.values)
        if isinstance(expr, ast.FormattedValue):
            return self._expr(expr.value)
        if isinstance(expr, (ast.Tuple, ast.List)):
            return self._union(expr.elts)
        if isinstance(expr, ast.Dict):
            taint: Taint = set()
            for key in expr.keys:
                if key is not None:
                    taint |= self._expr(key)
            return taint | self._union(expr.values)
        if isinstance(expr, ast.Starred):
            return self._expr(expr.value)
        if isinstance(expr, ast.Lambda):
            return set()
        if isinstance(expr, ast.Await):
            return self._expr(expr.value)
        return set()

    def _union(self, exprs: Iterable[Optional[ast.expr]]) -> Taint:
        taint: Taint = set()
        for expr in exprs:
            if expr is not None:
                taint |= self._expr(expr)
        return taint

    def _comprehension(
        self, generators: List[ast.comprehension], results: List[ast.expr]
    ) -> Taint:
        taint: Taint = set()
        for gen in generators:
            iter_taint = self._expr(gen.iter)
            self._bind(gen.target, iter_taint)
            taint |= iter_taint
            for condition in gen.ifs:
                self._expr(condition)
        return taint | self._union(results)

    # -- calls: sources, sinks, cleansers, summaries ---------------------

    def _call(self, call: ast.Call) -> Taint:  # noqa: C901 — one dispatch
        callee = dotted_name(call.func)
        arg_taint = self._union(call.args) | self._union(
            keyword.value for keyword in call.keywords
        )

        # sorted(...) fixes iteration order, and only iteration order.
        if callee == "sorted":
            return {t for t in arg_taint if not _is_order(t)}

        # -- sinks -------------------------------------------------------
        root = callee.split(".", 1)[0]
        leaf = callee.rsplit(".", 1)[-1]
        if root == "hashlib" and leaf in _HASHLIB_ALGOS:
            self._check_sink(call, arg_taint, f"hashlib.{leaf}()")
            return {"hasher"}
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "update"
            and "hasher" in self._expr(call.func.value)
        ):
            self._check_sink(call, arg_taint, "hash.update()")
            return set()
        summary = self.summaries.get(callee)
        if summary is not None and callee != self.func.name:
            self._check_summary_call(call, summary)
            if summary.returns_taint:
                reasons = summary.return_reasons or {"helper return"}
                return arg_taint | {
                    f"value:{callee}() returns nondeterministic data "
                    f"({'; '.join(sorted(reasons))})"
                }
            return arg_taint

        # -- sources -----------------------------------------------------
        source = self._source_reason(call, callee)
        if source is not None:
            return arg_taint | {source}

        # dict views: order taint unless sorted upstream; the dict
        # itself iterates in insertion order, but a raw view feeding a
        # digest leaves the ordering obligation implicit — sort it.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in ("keys", "values", "items")
            and not call.args
        ):
            return arg_taint | self._expr(call.func.value) | {
                f"order:unsorted dict .{call.func.attr}() iteration"
            }

        if callee in ("set", "frozenset"):
            return arg_taint | {"order:unsorted set iteration"}

        # Methods on tracked values keep their taint (str.encode,
        # str.join over a tainted iterable, bytes concat, ...).
        if isinstance(call.func, ast.Attribute):
            return arg_taint | self._expr(call.func.value)
        return arg_taint

    def _source_reason(self, call: ast.Call, callee: str) -> Optional[str]:
        if "." in callee:
            base, leaf = callee.rsplit(".", 1)
            base_root = base.split(".")[-1]
            if (
                not self.exempt_clock
                and base_root in _WALL_CLOCK_MODULES
                and leaf in _WALL_CLOCK_ATTRS
            ):
                return f"value:wall clock ({callee}())"
            if base_root == "random" and leaf in _MODULE_RNG_ATTRS:
                return f"value:module-level RNG ({callee}())"
            if callee in _FS_ORDER_CALLS or leaf in _FS_ORDER_ATTRS:
                return f"value:filesystem ordering ({callee}())"
            if callee in ("os.getenv", "os.environ.get"):
                return "value:os.environ read"
            if callee == "object.__repr__":
                return "value:object.__repr__ (memory address)"
            if callee == "json.dumps":
                for keyword in call.keywords:
                    if (
                        keyword.arg == "default"
                        and isinstance(keyword.value, ast.Name)
                        and keyword.value.id in ("str", "repr")
                    ):
                        return (
                            "value:json.dumps(default="
                            f"{keyword.value.id}) falls back to "
                            "object.__repr__ for unknown types — use a "
                            "canonical encoder that rejects them"
                        )
        elif callee in ("id", "hash"):
            return f"value:interpreter identity ({callee}())"
        return None

    def _check_sink(
        self, call: ast.Call, arg_taint: Taint, sink: str
    ) -> None:
        for token in arg_taint:
            if token.startswith("param:"):
                self.sink_params.add(token.split(":", 1)[1])
        reasons = _reasons(arg_taint)
        if reasons and id(call) not in self._reported:
            self._reported.add(id(call))
            self.violations.append(
                (call, [f"{reason} -> {sink}" for reason in reasons])
            )

    def _check_summary_call(
        self, call: ast.Call, summary: FunctionSummary
    ) -> None:
        if not summary.sink_params:
            return
        bound: List[Tuple[str, ast.expr]] = []
        for param, arg in zip(summary.params, call.args):
            bound.append((param, arg))
        for keyword in call.keywords:
            if keyword.arg is not None:
                bound.append((keyword.arg, keyword.value))
        for param, arg in bound:
            if param not in summary.sink_params:
                continue
            taint = self._expr(arg)
            for token in taint:
                if token.startswith("param:"):
                    self.sink_params.add(token.split(":", 1)[1])
            reasons = _reasons(taint)
            if reasons and id(call) not in self._reported:
                self._reported.add(id(call))
                self.violations.append(
                    (
                        call,
                        [
                            f"{reason} -> {summary.node.name}({param}=...) "
                            f"which digests it"
                            for reason in reasons
                        ],
                    )
                )


__all__ = ["DigestTaintRule", "FunctionSummary"]
