"""Inline suppressions: ``# repro-lint: disable=RULE -- justification``.

A suppression silences the named rule(s) on its own line, or — when it
is a standalone comment — on the next line that carries code.  The
justification after ``--`` is **required**: a suppression without one
does not suppress anything and instead surfaces as a ``SUP001``
finding, so silencing a rule always costs a written sentence that
reviewers can judge.  This mirrors the baseline policy (every
grandfathered finding carries a justification) at line granularity.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from .base import Finding, ModuleSource

#: Rule id of the meta-finding for unjustified suppressions.  Kept as a
#: module constant (not a registered Rule) because it can never itself
#: be suppressed or baselined.
SUP_RULE_ID = "SUP001"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,-]+)(?:\s+--\s*(\S.*))?"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment."""

    line: int
    rules: Tuple[str, ...]
    justification: str
    #: line the suppression applies to (its own, or the next code line)
    target_line: int


def collect(module: ModuleSource) -> Tuple[List[Suppression], List[Finding]]:
    """Parse every suppression comment in ``module``.

    Returns the usable suppressions and one ``SUP001`` finding per
    suppression whose justification is missing.
    """
    suppressions: List[Suppression] = []
    problems: List[Finding] = []
    for index, text in enumerate(module.lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        justification = (match.group(2) or "").strip()
        standalone = text.strip().startswith("#")
        target = _next_code_line(module, index) if standalone else index
        if not justification:
            problems.append(
                Finding(
                    rule=SUP_RULE_ID,
                    path=module.path,
                    line=index,
                    column=text.find("#"),
                    message=(
                        f"suppression of {', '.join(rules)} has no "
                        f"justification; write "
                        f"'# repro-lint: disable={rules[0] if rules else 'RULE'}"
                        f" -- <why this is safe>'"
                    ),
                    snippet=text.strip(),
                )
            )
            continue
        suppressions.append(
            Suppression(
                line=index,
                rules=rules,
                justification=justification,
                target_line=target,
            )
        )
    return suppressions, problems


def _next_code_line(module: ModuleSource, after: int) -> int:
    for index in range(after + 1, len(module.lines) + 1):
        stripped = module.lines[index - 1].strip()
        if stripped and not stripped.startswith("#"):
            return index
    return after


def suppressed_rules_by_line(
    suppressions: List[Suppression],
) -> Dict[int, Set[str]]:
    """line number → set of rule ids silenced on that line."""
    by_line: Dict[int, Set[str]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.target_line, set()).update(
            suppression.rules
        )
    return by_line


__all__ = [
    "SUP_RULE_ID",
    "Suppression",
    "collect",
    "suppressed_rules_by_line",
]
