"""The discipline rule pack: ERR001, RNG001, POOL001, OBS001, FROZEN001.

Each rule encodes one piece of discipline this repo already follows
(or is migrating to); the rationale strings double as the seed of the
``docs/LINT.md`` catalogue, which ``tools/check_docs.py`` keeps in
sync with this registry.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from .base import Finding, ModuleSource, Rule, dotted_name, register

_BARE_ERRORS = ("RuntimeError", "ValueError", "AssertionError")


@register
class BareRaiseRule(Rule):
    """ERR001: no bare builtin raises in the net and core layers."""

    rule_id = "ERR001"
    name = "bare-builtin-raise"
    severity = "error"
    rationale = (
        "repro.net and repro.core degrade gracefully through the "
        "structured error hierarchy (repro.net.errors, "
        "repro.core.errors): callers dispatch on error *types* and "
        "read structured attributes instead of parsing message "
        "strings.  A bare RuntimeError/ValueError/AssertionError "
        "raise re-opens that hole."
    )

    scopes: Tuple[str, ...] = ("repro/net/", "repro/core/")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        if not any(scope in module.relpath for scope in self.scopes):
            return
        # The error modules themselves define the hierarchy and may
        # document the bare forms they replace.
        if module.relpath.endswith("errors.py"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = ""
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in _BARE_ERRORS:
                yield self.finding(
                    module,
                    node,
                    f"bare {name} raised in a structured-error layer; "
                    f"raise a repro.net.errors / repro.core.errors type "
                    f"(subclassing {name} keeps existing handlers working)",
                )


@register
class DerivedSeedRule(Rule):
    """RNG001: every ``random.Random(...)`` takes a derived string seed."""

    rule_id = "RNG001"
    name = "derived-string-seed"
    severity = "error"
    rationale = (
        "String seeds of the form 'repro-<component>:<seed>' hash "
        "through SHA-512 inside random.Random — deterministic across "
        "platforms and Python builds, unlike hash(tuple) — and "
        "namespace the stream per component so two subsystems sharing "
        "an integer seed cannot entangle their draws."
    )

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee not in ("random.Random", "Random"):
                continue
            if not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    "random.Random() without a seed draws from ambient "
                    "entropy; pass a derived 'repro-<component>:<seed>' "
                    "string",
                )
                continue
            if len(node.args) != 1 or node.keywords:
                yield self.finding(
                    module,
                    node,
                    "random.Random must take exactly one derived "
                    "'repro-<component>:<seed>' string seed",
                )
                continue
            if not _is_derived_seed(node.args[0]):
                yield self.finding(
                    module,
                    node,
                    "random.Random seed is not a derived string; use the "
                    "f\"repro-<component>:{seed}\" convention so streams "
                    "are platform-stable and namespaced",
                )


def _is_derived_seed(arg: ast.expr) -> bool:
    if isinstance(arg, ast.Constant):
        return isinstance(arg.value, str) and arg.value.startswith("repro-")
    if isinstance(arg, ast.JoinedStr) and arg.values:
        first = arg.values[0]
        return (
            isinstance(first, ast.Constant)
            and isinstance(first.value, str)
            and first.value.startswith("repro-")
        )
    return False


@register
class PoolSubmitRule(Rule):
    """POOL001: only module-level callables cross the process boundary."""

    rule_id = "POOL001"
    name = "picklable-pool-callables"
    severity = "error"
    rationale = (
        "ProcessPoolExecutor pickles the callable by qualified name: "
        "lambdas and closures fail at submit time (or silently change "
        "behaviour under fork when they capture mutable parent state). "
        "repro.service therefore submits only module-level functions "
        "whose inputs are frozen dataclasses."
    )

    scopes: Tuple[str, ...] = ("repro/service/",)

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        if not any(scope in module.relpath for scope in self.scopes):
            return
        module_level: Set[str] = {
            node.name
            for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        nested = _nested_function_names(module.tree)
        pools = _pool_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ("submit", "map"):
                continue
            owner = dotted_name(func.value)
            if owner not in pools:
                continue
            if not node.args:
                continue
            target = node.args[0]
            if isinstance(target, ast.Lambda):
                yield self.finding(
                    module,
                    node,
                    f"lambda submitted to ProcessPoolExecutor.{func.attr}; "
                    f"pool callables must be module-level functions",
                )
            elif isinstance(target, ast.Name):
                if target.id in nested and target.id not in module_level:
                    yield self.finding(
                        module,
                        node,
                        f"closure {target.id!r} submitted to "
                        f"ProcessPoolExecutor.{func.attr}; hoist it to "
                        f"module level so it pickles by qualified name",
                    )
            elif isinstance(target, ast.Attribute):
                yield self.finding(
                    module,
                    node,
                    f"bound method {dotted_name(target) or target.attr!r} "
                    f"submitted to ProcessPoolExecutor.{func.attr}; it "
                    f"drags its instance across the process boundary — "
                    f"use a module-level function over picklable inputs",
                )


def _pool_names(tree: ast.Module) -> Set[str]:
    """Names ever assigned from a ``ProcessPoolExecutor(...)`` call."""
    pools: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and dotted_name(value.func).split(".")[-1] == "ProcessPoolExecutor"
        ):
            for target in node.targets:
                name = dotted_name(target)
                if name:
                    pools.add(name)
    return pools


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Function names defined inside another function (closures)."""
    nested: Set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    nested.add(child.name)
                visit(child, True)
            else:
                visit(child, inside_function)

    visit(tree, False)
    return nested


#: The public pipeline entry points and the span each must open, as
#: catalogued in ``docs/OBSERVABILITY.md`` ("Emitted by" column).  The
#: docs job keeps the reverse direction honest: every literal span name
#: in src/repro must appear in the catalogue.
OBS_ENTRY_POINTS: Tuple[Tuple[str, str, str], ...] = (
    ("repro/core/compiler.py", "Compiler.compile", "compile.full"),
    ("repro/core/update.py", "UpdatePlanner.plan", "update.plan"),
    ("repro/core/session.py", "UpdateSession.push_update", "session.push_update"),
    ("repro/core/session.py", "UpdateSession.push_campaign", "session.push_campaign"),
    ("repro/net/dissemination.py", "disseminate", "net.disseminate"),
    ("repro/net/lossy.py", "disseminate_lossy", "net.disseminate_lossy"),
    ("repro/net/campaign.py", "run_campaign", "campaign.run"),
    ("repro/net/kernel.py", "SimKernel.run", "net.kernel.run"),
    ("repro/net/trickle.py", "run_trickle", "net.trickle.run"),
    ("repro/net/gossip.py", "run_gossip", "net.gossip.run"),
    ("repro/net/faults.py", "generate_fault_plan", "net.fault.plan"),
    ("repro/net/coding.py", "run_coded_campaign", "net.coding.run"),
    ("repro/versioning/graph.py", "build_version_graph", "versioning.build"),
    ("repro/versioning/planner.py", "plan_cohorts", "versioning.plan"),
    ("repro/versioning/campaign.py", "run_versioned_campaign", "versioning.campaign"),
    ("repro/sim/executor.py", "Simulator.run", "sim.run"),
    ("repro/ilp/solver.py", "solve", "ilp.solve"),
    ("repro/service/fleet.py", "FleetUpdateService.run", "service.batch"),
    ("repro/service/fleet.py", "execute_job", "service.job"),
    ("repro/fuzz/runner.py", "run_fuzz", "fuzz.iteration"),
    ("repro/fuzz/fault_fuzz.py", "run_fault_fuzz", "fuzz.fault.iteration"),
    ("repro/obs/profile.py", "profile_update", "profile.total"),
)


@register
class EntryPointSpanRule(Rule):
    """OBS001: public pipeline entry points must open their span."""

    rule_id = "OBS001"
    name = "entry-point-span"
    severity = "error"
    rationale = (
        "docs/OBSERVABILITY.md is a machine-checked telemetry "
        "contract: every public pipeline entry point opens a named "
        "span so 'repro profile' attributes wall time and energy to "
        "phases.  An entry point that stops opening its span leaves a "
        "silent hole in every trace."
    )

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for suffix, qualname, span in OBS_ENTRY_POINTS:
            if not module.relpath.endswith(suffix):
                continue
            func = _find_function(module.tree, qualname)
            if func is None:
                yield Finding(
                    rule=self.rule_id,
                    path=module.path,
                    line=1,
                    column=0,
                    message=(
                        f"entry point {qualname} (span {span!r}) is "
                        f"catalogued in docs/OBSERVABILITY.md but not "
                        f"defined here; update the catalogue and the "
                        f"OBS001 registry together"
                    ),
                    severity=self.severity,
                    snippet=module.snippet_at(1),
                )
            elif not _opens_span(func, span):
                yield self.finding(
                    module,
                    func,
                    f"entry point {qualname} must open the "
                    f"{span!r} span (see docs/OBSERVABILITY.md)",
                )


def _find_function(
    tree: ast.Module, qualname: str
) -> Optional[ast.FunctionDef]:
    parts = qualname.split(".")
    scope: List[ast.stmt] = tree.body
    node: Optional[ast.AST] = None
    for part in parts:
        node = None
        for child in scope:
            if (
                isinstance(child, (ast.FunctionDef, ast.ClassDef))
                and child.name == part
            ):
                node = child
                break
        if node is None:
            return None
        scope = node.body if hasattr(node, "body") else []
    return node if isinstance(node, ast.FunctionDef) else None


def _opens_span(func: ast.FunctionDef, span: str) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        callee = dotted_name(node.func)
        if not (callee == "span" or callee.endswith(".span")):
            continue
        if (
            node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == span
        ):
            return True
    return False


@register
class FrozenMutationRule(Rule):
    """FROZEN001: frozen dataclasses stay frozen outside __post_init__."""

    rule_id = "FROZEN001"
    name = "frozen-dataclass-mutation"
    severity = "error"
    rationale = (
        "The typed configs (CompileConfig, UpdateConfig, TopologySpec, "
        "FleetJob) are frozen because their content digests key the "
        "service and solver caches: mutate one after construction and "
        "its digest no longer describes it, poisoning every cache "
        "entry derived from it.  object.__setattr__ is sanctioned only "
        "inside __post_init__ (normalisation before first use)."
    )

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        frozen_classes = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef) and _is_frozen_dataclass(node)
        ]
        for cls in frozen_classes:
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in ("__post_init__", "__new__"):
                    continue
                yield from self._check_body(module, method)
        # object.__setattr__ anywhere outside a __post_init__ reaches
        # around the freeze even from other modules' code.
        yield from self._check_setattr_escapes(module, frozen_classes)

    def _check_body(
        self, module: ModuleSource, method: ast.FunctionDef
    ) -> Iterable[Finding]:
        for node in ast.walk(method):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    yield self.finding(
                        module,
                        node,
                        f"assignment to self.{target.attr} in "
                        f"{method.name}() of a frozen dataclass; frozen "
                        f"configs are content-addressed — derive a new "
                        f"instance with dataclasses.replace instead",
                    )

    def _check_setattr_escapes(
        self, module: ModuleSource, frozen_classes: List[ast.ClassDef]
    ) -> Iterable[Finding]:
        allowed: Set[int] = set()
        for cls in frozen_classes:
            for method in cls.body:
                if (
                    isinstance(method, ast.FunctionDef)
                    and method.name == "__post_init__"
                ):
                    for node in ast.walk(method):
                        allowed.add(id(node))
        for node in ast.walk(module.tree):
            if id(node) in allowed:
                continue
            if (
                isinstance(node, ast.Call)
                and dotted_name(node.func) == "object.__setattr__"
            ):
                yield self.finding(
                    module,
                    node,
                    "object.__setattr__ outside __post_init__ defeats a "
                    "frozen dataclass; derive a new instance with "
                    "dataclasses.replace instead",
                )


def _is_frozen_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func)
        if name not in ("dataclass", "dataclasses.dataclass"):
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


__all__ = [
    "BareRaiseRule",
    "DerivedSeedRule",
    "EntryPointSpanRule",
    "FrozenMutationRule",
    "OBS_ENTRY_POINTS",
    "PoolSubmitRule",
]
