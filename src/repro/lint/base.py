"""Core vocabulary of the lint suite: findings, modules, rules, registry.

A :class:`Rule` inspects one parsed :class:`ModuleSource` at a time and
yields :class:`Finding`s.  Rules register themselves with the process
registry via :func:`register`; the runner iterates the registry in rule
id order so reports are deterministic.  The registry is the single
source of truth for the rule catalogue — ``tools/check_docs.py``
cross-checks ``docs/LINT.md`` against the ``rule_id`` declarations in
this package so the documentation cannot drift.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Type

#: Legal finding severities.  ``error`` findings fail the run;
#: ``warning`` findings are reported but do not affect the exit code.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule firing at a location."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    severity: str = "error"
    #: the stripped source line, for context and baseline fingerprints
    snippet: str = ""

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} [{self.severity}] {self.message}"
        )


@dataclass
class ModuleSource:
    """One parsed source file handed to every rule."""

    #: path as given to the runner (used in reports)
    path: str
    #: normalised posix path relative to the lint root — what scoped
    #: rules (ERR001, POOL001, the obs exemption) match against
    relpath: str
    text: str
    tree: ast.Module
    lines: List[str]

    @staticmethod
    def load(path: Path, relpath: str) -> "ModuleSource":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        return ModuleSource(
            path=str(path),
            relpath=relpath,
            text=text,
            tree=tree,
            lines=text.splitlines(),
        )

    def snippet_at(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``rationale`` is surfaced in ``--list-rules``, the SARIF rule
    metadata, and is the seed of the ``docs/LINT.md`` catalogue entry.
    """

    rule_id: str = ""
    name: str = ""
    severity: str = "error"
    rationale: str = ""

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleSource,
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.rule_id,
            path=module.path,
            line=line,
            column=column,
            message=message,
            severity=severity or self.severity,
            snippet=module.snippet_at(line),
        )


#: The process-wide rule registry, keyed by rule id.
RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.severity not in SEVERITIES:
        raise ValueError(
            f"rule {cls.rule_id} severity must be one of {SEVERITIES}, "
            f"got {cls.severity!r}"
        )
    if cls.rule_id in RULES:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULES[cls.rule_id] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, in id order (deterministic reports)."""
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def get_rule(rule_id: str) -> Rule:
    if rule_id not in RULES:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(RULES))}"
        )
    return RULES[rule_id]


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, ``""`` otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


__all__ = [
    "Finding",
    "ModuleSource",
    "RULES",
    "Rule",
    "SEVERITIES",
    "all_rules",
    "dotted_name",
    "get_rule",
    "register",
]
