"""Report renderers: human, machine JSON, and SARIF 2.1.0.

The SARIF output is consumed by the CI job (uploaded as an artifact and
suitable for code-scanning ingestion); the JSON output is the stable
machine interface for scripts; the human output is what developers read
in a terminal.  All three are rendered from the same
:class:`~repro.lint.runner.LintResult`, so they can never disagree.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .base import all_rules
from .runner import LintResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro.lint"


def render_human(result: LintResult, verbose: bool = False) -> str:
    lines: List[str] = []
    for path, message in result.parse_errors:
        lines.append(f"{path}: parse error: {message}")
    for finding in result.active:
        lines.append(finding.render())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if verbose:
        for finding, entry in result.grandfathered:
            lines.append(
                f"{finding.render()}  [baselined: {entry.justification}]"
            )
        for finding in result.suppressed:
            lines.append(f"{finding.render()}  [suppressed]")
    for entry in result.stale_entries:
        lines.append(
            f"{entry.path}: stale baseline entry {entry.fingerprint} "
            f"({entry.rule}) — the code it grandfathered is gone; "
            f"remove it from the baseline"
        )
    lines.append(
        f"checked {result.files_checked} files: "
        f"{len(result.active)} active, "
        f"{len(result.grandfathered)} baselined, "
        f"{len(result.suppressed)} suppressed"
        + (f", {len(result.stale_entries)} stale baseline entries"
           if result.stale_entries else "")
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    document: Dict[str, Any] = {
        "tool": TOOL_NAME,
        "files_checked": result.files_checked,
        "exit_code": result.exit_code,
        "findings": [_finding_dict(f) for f in result.active],
        "grandfathered": [
            dict(_finding_dict(finding), justification=entry.justification)
            for finding, entry in result.grandfathered
        ],
        "suppressed": [_finding_dict(f) for f in result.suppressed],
        "stale_baseline_entries": [
            {
                "fingerprint": entry.fingerprint,
                "rule": entry.rule,
                "path": entry.path,
            }
            for entry in result.stale_entries
        ],
        "parse_errors": [
            {"path": path, "message": message}
            for path, message in result.parse_errors
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _finding_dict(finding) -> Dict[str, Any]:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "column": finding.column,
        "severity": finding.severity,
        "message": finding.message,
        "snippet": finding.snippet,
    }


def render_sarif(result: LintResult) -> str:
    rules_meta = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {
                "level": _sarif_level(rule.severity),
            },
        }
        for rule in all_rules()
    ]
    results = [
        _sarif_result(finding, suppressed=False)
        for finding in result.active
    ]
    results.extend(
        _sarif_result(finding, suppressed=True, justification=entry.justification)
        for finding, entry in result.grandfathered
    )
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "docs/LINT.md",
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _sarif_level(severity: str) -> str:
    return {"error": "error", "warning": "warning"}.get(severity, "warning")


def _sarif_result(
    finding, suppressed: bool, justification: str = ""
) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _sarif_level(finding.severity),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column + 1,
                    },
                }
            }
        ],
    }
    if suppressed:
        entry["suppressions"] = [
            {
                "kind": "external",
                "justification": justification,
            }
        ]
    return entry


__all__ = [
    "SARIF_SCHEMA",
    "SARIF_VERSION",
    "TOOL_NAME",
    "render_human",
    "render_json",
    "render_sarif",
]
