"""Peripheral models of the simulated mote.

The devices mirror what the TinyOS benchmarks exercise: LEDs, a
byte-oriented radio transmitter, a periodic timer with a latched
``fired`` flag, and an ADC producing deterministic synthetic samples
(the stand-in for real sensor data, per DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import devices as ports


@dataclass
class LedBank:
    """The three Mica2 LEDs, as one bit-mask register."""

    state: int = 0
    writes: list[int] = field(default_factory=list)

    def write(self, value: int) -> None:
        self.state = value & 0xFF
        self.writes.append(self.state)

    def read(self) -> int:
        return self.state


@dataclass
class Radio:
    """Latches a low byte, transmits on the high-byte write."""

    latch: int = 0
    sent: list[int] = field(default_factory=list)

    def write_lo(self, value: int) -> None:
        self.latch = value & 0xFF

    def write_hi(self, value: int) -> None:
        self.sent.append(self.latch | ((value & 0xFF) << 8))

    @property
    def bytes_sent(self) -> int:
        return 2 * len(self.sent)


@dataclass
class Timer:
    """Periodic timer with a latched fired flag (read clears).

    ``period_cycles`` models the 1 Hz / 4 Hz TinyOS timers scaled to
    simulation time; the poll loop of the benchmarks reads the flag via
    ``timer_fired()``.

    ``fire_every_polls`` switches to a *logical* timer that fires on
    every Nth poll regardless of cycle time.  Cycle-driven timers make
    two binaries of slightly different speed execute different event
    sequences, which pollutes Diff_cycle comparisons; the poll-driven
    mode gives both versions the identical logical schedule (used by
    :func:`repro.core.update.measure_cycles`).
    """

    period_cycles: int = 500
    fire_every_polls: int | None = None
    fired: bool = False
    fires: int = 0
    _next_fire: int = 0
    _polls: int = 0

    def __post_init__(self):
        self._next_fire = self.period_cycles

    def tick(self, now_cycles: int) -> None:
        if self.fire_every_polls is not None:
            return
        while now_cycles >= self._next_fire:
            self.fired = True
            self.fires += 1
            self._next_fire += self.period_cycles

    def read_and_clear(self) -> int:
        if self.fire_every_polls is not None:
            self._polls += 1
            if self._polls % self.fire_every_polls == 0:
                self.fires += 1
                return 1
            return 0
        value = 1 if self.fired else 0
        self.fired = False
        return value


@dataclass
class Adc:
    """Deterministic synthetic sensor: a 16-bit LCG sample stream."""

    seed: int = 0x1234
    reads: int = 0

    def sample(self) -> int:
        # Numerical Recipes LCG, truncated to 16 bits - deterministic
        # and platform-independent.
        self.seed = (1664525 * self.seed + 1013904223) & 0xFFFFFFFF
        self.reads += 1
        return (self.seed >> 8) & 0xFFFF


@dataclass
class DeviceBoard:
    """All peripherals plus the I/O-port dispatch."""

    led: LedBank = field(default_factory=LedBank)
    radio: Radio = field(default_factory=Radio)
    timer: Timer = field(default_factory=Timer)
    adc: Adc = field(default_factory=Adc)
    _adc_latch: int = 0

    def io_read(self, port: int, now_cycles: int) -> int:
        if port == ports.PORT_LED:
            return self.led.read()
        if port == ports.PORT_TIMER:
            self.timer.tick(now_cycles)
            return self.timer.read_and_clear()
        if port == ports.PORT_ADC_LO:
            self._adc_latch = self.adc.sample()
            return self._adc_latch & 0xFF
        if port == ports.PORT_ADC_HI:
            return (self._adc_latch >> 8) & 0xFF
        raise ValueError(f"read from unknown port {port:#x}")

    def io_write(self, port: int, value: int) -> None:
        if port == ports.PORT_LED:
            self.led.write(value)
        elif port == ports.PORT_RADIO_LO:
            self.radio.write_lo(value)
        elif port == ports.PORT_RADIO_HI:
            self.radio.write_hi(value)
        else:
            raise ValueError(f"write to unknown port {port:#x}")
