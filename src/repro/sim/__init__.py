"""Instruction-level mote simulator and peripherals.

The reproduction's stand-in for Avrora (paper §5.1): a cycle-accounted
interpreter for the AVR-flavoured ISA of :mod:`repro.isa`, supplying
the two measurements the evaluation needs — ``Diff_cycle`` (execution
cycles of old vs new binaries, Figure 11) and the per-IR-statement
execution frequencies ``freq(s)`` that weight the ILP energy objective
(eq. 10).

Device semantics
    A :class:`~repro.sim.devices.DeviceBoard` maps an LED port, a
    radio port, a timer, and an ADC into data memory
    (:mod:`repro.isa.devices`).  Each device records its observable
    event stream — LED writes, radio packets sent, timer fires, ADC
    samples — and :func:`~repro.sim.executor.traces_equal` compares
    two runs stream-by-stream, which is what "behaviourally
    equivalent after patching" means throughout the fuzzer and tests.
    The timer can fire every Nth poll rather than every Nth cycle so
    two binaries of slightly different speed still see the identical
    logical schedule (DESIGN.md §5b).

Cycle fidelity
    Per-opcode base costs come from the opcode table; taken branches
    cost one extra cycle, like the ATmega128L.  A run ends at ``halt``,
    at ``main`` returning, or at a configurable cycle budget (budget
    exhaustion usually means a hang and is counted separately).

Each run emits one ``sim.run`` span and per-run ``sim.*`` totals into
:mod:`repro.obs` — never per-instruction — see docs/OBSERVABILITY.md.
"""

from .devices import Adc, DeviceBoard, LedBank, Radio, Timer
from .executor import (
    Divergence,
    RunResult,
    SimulationError,
    Simulator,
    run_image,
    traces_equal,
)

__all__ = [
    "Adc",
    "DeviceBoard",
    "Divergence",
    "LedBank",
    "Radio",
    "RunResult",
    "SimulationError",
    "Simulator",
    "Timer",
    "run_image",
    "traces_equal",
]
