"""Instruction-level mote simulator and peripherals."""

from .devices import Adc, DeviceBoard, LedBank, Radio, Timer
from .executor import RunResult, SimulationError, Simulator, run_image

__all__ = [
    "Adc",
    "DeviceBoard",
    "LedBank",
    "Radio",
    "RunResult",
    "SimulationError",
    "Simulator",
    "Timer",
    "run_image",
]
