"""Instruction-level mote simulator and peripherals."""

from .devices import Adc, DeviceBoard, LedBank, Radio, Timer
from .executor import (
    Divergence,
    RunResult,
    SimulationError,
    Simulator,
    run_image,
    traces_equal,
)

__all__ = [
    "Adc",
    "DeviceBoard",
    "Divergence",
    "LedBank",
    "Radio",
    "RunResult",
    "SimulationError",
    "Simulator",
    "Timer",
    "run_image",
    "traces_equal",
]
