"""Instruction-level simulator (the reproduction's Avrora stand-in).

Executes a :class:`~repro.isa.assembler.BinaryImage` with per-opcode
cycle accounting, AVR-style flag semantics for the subset the code
generator emits, and an execution profiler that attributes machine
instructions back to (function, IR index) — the ``freq(s)`` input of
the paper's energy objective.

Cycle fidelity: base costs come from the opcode table; taken branches
cost one extra cycle, like the ATmega128.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import devices as memmap
from ..isa.assembler import BinaryImage, EncodedInstr
from ..isa.instructions import MachineInstr
from ..obs import metrics, trace
from .devices import DeviceBoard


class SimulationError(Exception):
    """Raised on invalid execution (bad PC, stack mismatch, bad port)."""


@dataclass(frozen=True)
class Divergence:
    """First observable difference between two simulation runs.

    ``channel`` names the device stream ("led", "radio", "timer",
    "adc", "halted", "main_returned"); ``index`` is the position of the
    first differing event in that stream (``None`` for scalar
    channels); ``a``/``b`` are the differing observations.
    """

    channel: str
    a: object
    b: object
    index: int | None = None

    def render(self) -> str:
        at = f"[{self.index}]" if self.index is not None else ""
        return f"{self.channel}{at}: {self.a!r} != {self.b!r}"


def traces_equal(a: "RunResult", b: "RunResult") -> Divergence | None:
    """Compare the observable device traces of two runs.

    Two binaries are behaviourally equivalent for update purposes when
    every externally visible effect matches: the LED write sequence,
    the radio packet sequence, the timer fire count, the ADC sample
    count, and how the run ended.  Returns ``None`` when the traces
    agree, else the first :class:`Divergence` (sequence channels are
    compared before scalar ones, so the returned divergence is the most
    debuggable observation).
    """
    for channel, seq_a, seq_b in (
        ("led", a.devices.led.writes, b.devices.led.writes),
        ("radio", a.devices.radio.sent, b.devices.radio.sent),
    ):
        for index, (va, vb) in enumerate(zip(seq_a, seq_b)):
            if va != vb:
                return Divergence(channel=channel, a=va, b=vb, index=index)
        if len(seq_a) != len(seq_b):
            index = min(len(seq_a), len(seq_b))
            longer = seq_a if len(seq_a) > len(seq_b) else seq_b
            return Divergence(
                channel=channel,
                a=longer[index] if longer is seq_a else "<absent>",
                b=longer[index] if longer is seq_b else "<absent>",
                index=index,
            )
    for channel, va, vb in (
        ("timer", a.devices.timer.fires, b.devices.timer.fires),
        ("adc", a.devices.adc.reads, b.devices.adc.reads),
        ("halted", a.halted, b.halted),
        ("main_returned", a.main_returned, b.main_returned),
    ):
        if va != vb:
            return Divergence(channel=channel, a=va, b=vb)
    return None


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    cycles: int
    instructions: int
    halted: bool
    main_returned: bool
    devices: DeviceBoard
    #: (function name, IR index) -> executed machine instructions
    profile: dict = field(default_factory=dict)

    def ir_frequencies(self, function: str) -> dict[int, int]:
        """Executed-count per IR index for one function."""
        freqs: dict[int, int] = {}
        for (fn, ir_index), count in self.profile.items():
            if fn == function and ir_index >= 0:
                freqs[ir_index] = freqs.get(ir_index, 0) + count
        return freqs


class Simulator:
    """Executes one binary image."""

    def __init__(
        self,
        image: BinaryImage,
        devices: DeviceBoard | None = None,
        collect_profile: bool = False,
    ):
        self.image = image
        self.devices = devices or DeviceBoard()
        self.collect_profile = collect_profile
        self.regs = bytearray(32)
        self.sram = bytearray(memmap.DATA_START + memmap.SRAM_SIZE)
        base = image.data_base or memmap.DATA_START
        self.sram[base : base + len(image.data)] = image.data
        self.flag_z = False
        self.flag_c = False
        self.pc = image.entry
        self.stack: list[tuple[str, int]] = []  # ("byte", v) / ("ret", addr)
        self.cycles = 0
        self.executed = 0
        self.halted = False
        self.main_returned = False
        self.profile: dict[tuple[str, int], int] = {}
        # word address -> EncodedInstr for fetch
        self._by_address: dict[int, EncodedInstr] = {
            enc.address: enc for enc in image.code
        }

    # -- register/memory helpers ----------------------------------------------

    def reg(self, index: int) -> int:
        return self.regs[index]

    def set_reg(self, index: int, value: int) -> None:
        self.regs[index] = value & 0xFF

    def pair(self, base: int) -> int:
        return self.regs[base] | (self.regs[base + 1] << 8)

    def set_pair(self, base: int, value: int) -> None:
        self.regs[base] = value & 0xFF
        self.regs[base + 1] = (value >> 8) & 0xFF

    def load(self, address: int) -> int:
        self._check_addr(address)
        return self.sram[address]

    def store(self, address: int, value: int) -> None:
        self._check_addr(address)
        self.sram[address] = value & 0xFF

    def _check_addr(self, address: int) -> None:
        if not memmap.DATA_START <= address < len(self.sram):
            raise SimulationError(f"data access outside SRAM: {address:#06x}")

    # -- flag helpers --------------------------------------------------------------

    def _add(self, a: int, b: int, carry_in: int = 0) -> int:
        total = a + b + carry_in
        self.flag_c = total > 0xFF
        result = total & 0xFF
        self.flag_z = result == 0
        return result

    def _sub(self, a: int, b: int, borrow_in: int = 0, keep_z: bool = False) -> int:
        total = a - b - borrow_in
        self.flag_c = total < 0
        result = total & 0xFF
        if keep_z:
            self.flag_z = self.flag_z and result == 0
        else:
            self.flag_z = result == 0
        return result

    # -- execution -----------------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            return
        enc = self._by_address.get(self.pc)
        if enc is None:
            raise SimulationError(f"invalid PC {self.pc:#06x}")
        ins = enc.instr
        next_pc = self.pc + enc.size_words
        cost = ins.cycles

        taken_pc = self._execute(ins, next_pc)
        if (
            taken_pc is not None
            and ins.spec.fmt == "br"
            and ins.mnemonic != "rjmp"  # rjmp's 2 cycles are in the table
        ):
            cost += 1  # taken conditional-branch penalty
        self.pc = taken_pc if taken_pc is not None else next_pc
        self.cycles += cost
        self.executed += 1
        if self.collect_profile:
            key = (ins.comment, ins.ir_index)
            self.profile[key] = self.profile.get(key, 0) + 1

    def _execute(self, ins: MachineInstr, next_pc: int) -> int | None:
        """Execute; return the next PC for control transfers."""
        op = ins.mnemonic
        rd, rr = ins.rd, ins.rr
        R = self.regs

        if op == "nop":
            return None
        if op == "halt":
            self.halted = True
            return self.pc
        if op == "mov":
            self.set_reg(rd, R[rr])
            return None
        if op == "movw":
            self.set_pair(rd, self.pair(rr))
            return None
        if op == "ldi":
            self.set_reg(rd, ins.imm)
            return None
        if op == "clr":
            self.set_reg(rd, 0)
            self.flag_z = True
            return None
        if op == "add":
            self.set_reg(rd, self._add(R[rd], R[rr]))
            return None
        if op == "adc":
            self.set_reg(rd, self._add(R[rd], R[rr], int(self.flag_c)))
            return None
        if op == "sub":
            self.set_reg(rd, self._sub(R[rd], R[rr]))
            return None
        if op == "sbc":
            self.set_reg(rd, self._sub(R[rd], R[rr], int(self.flag_c), keep_z=True))
            return None
        if op == "subi":
            self.set_reg(rd, self._sub(R[rd], ins.imm))
            return None
        if op == "sbci":
            self.set_reg(rd, self._sub(R[rd], ins.imm, int(self.flag_c), keep_z=True))
            return None
        if op == "and" or op == "andi":
            value = R[rd] & (R[rr] if op == "and" else ins.imm)
            self.set_reg(rd, value)
            self.flag_z = value == 0
            return None
        if op == "or" or op == "ori":
            value = R[rd] | (R[rr] if op == "or" else ins.imm)
            self.set_reg(rd, value)
            self.flag_z = value == 0
            return None
        if op == "eor" or op == "eori":
            value = R[rd] ^ (R[rr] if op == "eor" else ins.imm)
            self.set_reg(rd, value)
            self.flag_z = value == 0
            return None
        if op == "cp":
            self._sub(R[rd], R[rr])
            return None
        if op == "cpc":
            self._sub(R[rd], R[rr], int(self.flag_c), keep_z=True)
            return None
        if op == "cpi":
            self._sub(R[rd], ins.imm)
            return None
        if op == "mul":
            self.set_reg(rd, (R[rd] * R[rr]) & 0xFF)
            return None
        if op == "div":
            self.set_reg(rd, R[rd] // R[rr] if R[rr] else 0xFF)
            return None
        if op == "mod":
            self.set_reg(rd, R[rd] % R[rr] if R[rr] else R[rd])
            return None
        if op == "mul16":
            self.set_pair(rd, (self.pair(rd) * self.pair(rr)) & 0xFFFF)
            return None
        if op == "div16":
            divisor = self.pair(rr)
            self.set_pair(rd, self.pair(rd) // divisor if divisor else 0xFFFF)
            return None
        if op == "mod16":
            divisor = self.pair(rr)
            self.set_pair(rd, self.pair(rd) % divisor if divisor else self.pair(rd))
            return None
        if op == "neg":
            value = (-R[rd]) & 0xFF
            self.set_reg(rd, value)
            self.flag_z = value == 0
            self.flag_c = value != 0
            return None
        if op == "com":
            value = (~R[rd]) & 0xFF
            self.set_reg(rd, value)
            self.flag_z = value == 0
            return None
        if op == "inc":
            value = (R[rd] + 1) & 0xFF
            self.set_reg(rd, value)
            self.flag_z = value == 0
            return None
        if op == "dec":
            value = (R[rd] - 1) & 0xFF
            self.set_reg(rd, value)
            self.flag_z = value == 0
            return None
        if op == "lsl":
            self.flag_c = bool(R[rd] & 0x80)
            value = (R[rd] << 1) & 0xFF
            self.set_reg(rd, value)
            self.flag_z = value == 0
            return None
        if op == "lsr":
            self.flag_c = bool(R[rd] & 1)
            value = R[rd] >> 1
            self.set_reg(rd, value)
            self.flag_z = value == 0
            return None
        if op == "rol":
            carry = int(self.flag_c)
            self.flag_c = bool(R[rd] & 0x80)
            value = ((R[rd] << 1) | carry) & 0xFF
            self.set_reg(rd, value)
            self.flag_z = value == 0
            return None
        if op == "ror":
            carry = int(self.flag_c)
            self.flag_c = bool(R[rd] & 1)
            value = (R[rd] >> 1) | (carry << 7)
            self.set_reg(rd, value)
            self.flag_z = value == 0
            return None
        if op == "push":
            self.stack.append(("byte", R[rd]))
            return None
        if op == "pop":
            if not self.stack or self.stack[-1][0] != "byte":
                raise SimulationError("pop without matching push")
            _, value = self.stack.pop()
            self.set_reg(rd, value)
            return None
        if op == "in":
            self.set_reg(rd, self.devices.io_read(rr, self.cycles))
            return None
        if op == "out":
            self.devices.io_write(rr, R[rd])
            return None
        if op == "lds":
            self.set_reg(rd, self.load(ins.addr))
            return None
        if op == "sts":
            self.store(ins.addr, R[rd])
            return None
        if op == "ld_z":
            self.set_reg(rd, self.load(self.pair(30)))
            return None
        if op == "ld_zp":
            address = self.pair(30)
            self.set_reg(rd, self.load(address))
            self.set_pair(30, (address + 1) & 0xFFFF)
            return None
        if op == "st_z":
            self.store(self.pair(30), R[rd])
            return None
        if op == "st_zp":
            address = self.pair(30)
            self.store(address, R[rd])
            self.set_pair(30, (address + 1) & 0xFFFF)
            return None
        if op == "rjmp":
            return next_pc + ins.addr
        if op == "breq":
            return next_pc + ins.addr if self.flag_z else None
        if op == "brne":
            return next_pc + ins.addr if not self.flag_z else None
        if op == "brlo":
            return next_pc + ins.addr if self.flag_c else None
        if op == "brsh":
            return next_pc + ins.addr if not self.flag_c else None
        if op == "jmp":
            return ins.addr
        if op == "call":
            self.stack.append(("ret", next_pc))
            return ins.addr
        if op == "ret":
            if not self.stack:
                # main returned: the program is done.
                self.halted = True
                self.main_returned = True
                return self.pc
            kind, value = self.stack.pop()
            if kind != "ret":
                raise SimulationError("ret with unbalanced stack")
            return value
        raise SimulationError(f"cannot execute {ins}")  # pragma: no cover

    def run(self, max_cycles: int = 5_000_000) -> RunResult:
        """Run until HALT, main-return, or the cycle budget.

        Metrics are published once per run (never per instruction), so
        the simulation loop itself stays uninstrumented.
        """
        with trace.span("sim.run", max_cycles=max_cycles) as span:
            while not self.halted and self.cycles < max_cycles:
                self.step()
            span.set(cycles=self.cycles, instructions=self.executed)
        metrics.counter("sim.runs").inc()
        metrics.counter("sim.cycles").inc(self.cycles)
        metrics.counter("sim.instructions").inc(self.executed)
        if not self.halted:
            metrics.counter("sim.cycle_budget_hits").inc()
        return RunResult(
            cycles=self.cycles,
            instructions=self.executed,
            halted=self.halted,
            main_returned=self.main_returned,
            devices=self.devices,
            profile=dict(self.profile),
        )


def run_image(
    image: BinaryImage,
    devices: DeviceBoard | None = None,
    max_cycles: int = 5_000_000,
    collect_profile: bool = False,
) -> RunResult:
    """Convenience: simulate ``image`` to completion."""
    sim = Simulator(image, devices=devices, collect_profile=collect_profile)
    return sim.run(max_cycles=max_cycles)
