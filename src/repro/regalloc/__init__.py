"""Register allocation: baselines, chunking, preferences, UCC-RA."""

from .base import (
    AllocationError,
    AllocationRecord,
    MoveInsertion,
    Piece,
    Placement,
    verify_allocation,
)
from .chunks import (
    Chunk,
    DEFAULT_K,
    IRMatch,
    build_chunks,
    changed_fraction,
    changed_indices,
    chunk_of,
    match_ir,
)
from .graph_coloring import allocate_graph_coloring
from .linear_scan import allocate_linear_scan
from .preferences import PreferenceMap, build_preferences, misleading_preferences
from .ucc_ra import UCCReport, allocate_ucc_greedy

__all__ = [
    "AllocationError",
    "AllocationRecord",
    "Chunk",
    "DEFAULT_K",
    "IRMatch",
    "MoveInsertion",
    "Piece",
    "Placement",
    "PreferenceMap",
    "UCCReport",
    "allocate_graph_coloring",
    "allocate_linear_scan",
    "allocate_ucc_greedy",
    "build_chunks",
    "build_preferences",
    "changed_fraction",
    "changed_indices",
    "chunk_of",
    "match_ir",
    "misleading_preferences",
    "verify_allocation",
]

from .ilp_model import ChunkSpec, THETA, build_chunk_model, nonlinear_objective
from .ilp_ra import ILPChunkOutcome, ILPReport, allocate_ucc_ilp, build_spec_for_chunk
from .minlp import MINLPResult, solve_chunk_minlp

__all__ += [
    "ChunkSpec",
    "ILPChunkOutcome",
    "ILPReport",
    "MINLPResult",
    "THETA",
    "allocate_ucc_ilp",
    "build_chunk_model",
    "build_spec_for_chunk",
    "nonlinear_objective",
    "solve_chunk_minlp",
]
