"""Poletto/Sarkar linear-scan register allocation.

The second update-oblivious baseline (paper §6 discusses linear-scan
allocators producing code comparable to graph coloring).  Like the
graph-coloring baseline it is deterministic and a pure function of the
new IR, so it exhibits the same small-edit/large-cascade behaviour the
paper attacks.
"""

from __future__ import annotations

from ..ir.function import IRFunction
from ..ir.liveness import LiveInterval, analyze
from ..isa import registers as regs
from .base import AllocationRecord, Placement


def allocate_linear_scan(fn: IRFunction) -> AllocationRecord:
    """Allocate registers for ``fn`` with the classic linear scan."""
    info = analyze(fn)
    intervals = sorted(
        info.intervals.values(), key=lambda iv: (iv.start, iv.end, iv.vreg.name)
    )

    record = AllocationRecord(function=fn.name, algorithm="linear-scan")
    active: list[tuple[LiveInterval, int]] = []  # (interval, base)
    occupied: set[int] = set()

    def expire(current_start: int) -> None:
        still_active = []
        for interval, base in active:
            if interval.end < current_start:
                occupied.difference_update(
                    regs.registers_of(base, interval.vreg.size)
                )
            else:
                still_active.append((interval, base))
        active[:] = still_active

    for interval in intervals:
        expire(interval.start)
        reg = interval.vreg
        placement = Placement(vreg=reg.name, size=reg.size)
        candidates = regs.candidates(reg.size, callee_saved_only=interval.crosses_call)
        for base in candidates:
            if not set(regs.registers_of(base, reg.size)) & occupied:
                occupied.update(regs.registers_of(base, reg.size))
                active.append((interval, base))
                placement.add_piece(interval.start, interval.end, base)
                break
        else:
            # Spill heuristic: spill the conflicting active interval that
            # ends last if it outlives the current one, else spill the
            # current interval.
            victim = None
            for other, base in active:
                if other.vreg.size == reg.size and not (
                    interval.crosses_call and base not in regs.CALLEE_SAVED
                ):
                    if victim is None or other.end > victim[0].end:
                        victim = (other, base)
            if victim is not None and victim[0].end > interval.end:
                other, base = victim
                active.remove(victim)
                other_placement = record.placements[other.vreg.name]
                other_placement.pieces.clear()
                other_placement.spilled = True
                record.spill_order.append(other.vreg.name)
                active.append((interval, base))
                placement.add_piece(interval.start, interval.end, base)
            else:
                placement.spilled = True
                record.spill_order.append(reg.name)
        record.placements[reg.name] = placement
    return record
