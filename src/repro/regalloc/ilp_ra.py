"""ILP-mode UCC-RA: per-changed-chunk optimal register selection.

Runs the preference-guided greedy allocator first, then, for each
*changed* chunk, builds the paper's integer program
(:mod:`repro.regalloc.ilp_model`) with

* chunk-internal variables (live range contained in the chunk) free to
  be re-decided over a restricted candidate set,
* boundary-crossing variables fixed to the greedy/old decision,

solves it, and adopts the ILP assignment when it improves the modelled
energy.  Adoption is all-or-nothing per chunk and restricted to
solutions where every internal variable occupies one register for its
whole lifetime (intra-chunk shuffling of *changed* instructions cannot
reduce transmission — they are re-sent regardless — so this restriction
costs nothing in our workloads; DESIGN.md §5 records it).

The per-chunk :class:`~repro.ilp.branch_bound.SolveStats` are what the
complexity figures (13-15) plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..energy.model import DEFAULT_ENERGY_MODEL, EnergyModel
from ..ilp.branch_bound import SolveStats
from ..ilp.solver import solve
from ..ir.cfg import static_frequencies
from ..ir.function import IRFunction
from ..ir.liveness import analyze
from ..isa import registers as regs
from ..obs import metrics
from .base import AllocationRecord, Placement
from .chunks import DEFAULT_K, changed_indices
from .ilp_model import ChunkSpec, build_chunk_model, greedy_incumbent, _loc, _mem
from .ucc_ra import UCCReport, allocate_ucc_greedy


@dataclass
class ILPChunkOutcome:
    """What happened for one changed chunk."""

    lo: int
    hi: int
    status: str  # "adopted" | "kept_greedy" | "skipped_too_big" | "infeasible"
    stats: SolveStats | None = None
    variables_redecided: int = 0


@dataclass
class ILPReport:
    """Aggregate diagnostics of one ILP-mode allocation."""

    greedy: UCCReport = None
    chunks: list[ILPChunkOutcome] = field(default_factory=list)

    def total_iterations(self) -> int:
        return sum(o.stats.simplex_iterations for o in self.chunks if o.stats)


def allocate_ucc_ilp(
    new_fn: IRFunction,
    old_fn: IRFunction,
    old_record: AllocationRecord,
    energy: EnergyModel = DEFAULT_ENERGY_MODEL,
    k: int = DEFAULT_K,
    expected_runs: float = 1000.0,
    backend: str = "scipy",
    candidates_per_var: int = 4,
    max_model_vars: int = 6000,
    cache: bool = True,
) -> tuple[AllocationRecord, ILPReport]:
    """UCC-RA with per-changed-chunk ILP refinement."""
    record, greedy_report = allocate_ucc_greedy(
        new_fn, old_fn, old_record, energy=energy, k=k, expected_runs=expected_runs
    )
    report = ILPReport(greedy=greedy_report)
    info = analyze(new_fn)
    freqs = static_frequencies(new_fn)
    changed = changed_indices(new_fn, greedy_report.match)

    for chunk in greedy_report.chunks:
        if not chunk.changed:
            continue
        spec = build_spec_for_chunk(
            new_fn,
            info,
            record,
            greedy_report,
            chunk.start,
            chunk.end,
            changed,
            freqs,
            energy,
            expected_runs,
            candidates_per_var,
        )
        internal = [a for a in spec.variables() if a not in spec.fixed]
        if not internal:
            report.chunks.append(
                ILPChunkOutcome(chunk.start, chunk.end, "kept_greedy")
            )
            continue
        model = build_chunk_model(spec)
        if model.num_variables > max_model_vars:
            report.chunks.append(
                ILPChunkOutcome(chunk.start, chunk.end, "skipped_too_big")
            )
            continue
        assignment = {
            a: (None if record.placements[a].spilled else record.placements[a].sole_register)
            for a in spec.variables()
        }
        incumbent = greedy_incumbent(spec, assignment)
        result = solve(model, backend=backend, incumbent=incumbent, cache=cache)
        _audit_solution(model, result)
        if result.status != "optimal":
            report.chunks.append(
                ILPChunkOutcome(
                    chunk.start, chunk.end, "infeasible", stats=result.stats
                )
            )
            continue
        adopted = _try_adopt(spec, record, internal, result.values)
        report.chunks.append(
            ILPChunkOutcome(
                chunk.start,
                chunk.end,
                "adopted" if adopted else "kept_greedy",
                stats=result.stats,
                variables_redecided=len(internal) if adopted else 0,
            )
        )
    for outcome in report.chunks:
        if outcome.status == "adopted":
            metrics.counter("regalloc.ilp.chunks_adopted").inc()
        elif outcome.status == "kept_greedy":
            metrics.counter("regalloc.ilp.chunks_kept_greedy").inc()
        elif outcome.status == "skipped_too_big":
            metrics.counter("regalloc.ilp.chunks_skipped").inc()
        else:
            metrics.counter("regalloc.ilp.chunks_infeasible").inc()
    return record, report


def _audit_solution(model, result) -> None:
    """Cross-check an "optimal" solve against its own model.

    Imported lazily — ``regalloc.__init__`` pulls this module in, so a
    top-level import of :mod:`repro.analysis` would cycle.
    """
    from ..analysis.base import VerificationError, VerificationReport
    from ..analysis.energy_audit import PASS_NAME, audit_ilp_solution

    findings = audit_ilp_solution(model, result)
    if findings:
        report = VerificationReport()
        report.extend(PASS_NAME, findings)
        raise VerificationError(report)


def build_spec_for_chunk(
    fn: IRFunction,
    info,
    record: AllocationRecord,
    greedy_report: UCCReport,
    lo: int,
    hi: int,
    changed: set[int],
    freqs: dict[int, float],
    energy: EnergyModel,
    expected_runs: float,
    candidates_per_var: int,
) -> ChunkSpec:
    """Assemble the model inputs for one chunk against the greedy record."""
    intervals = info.intervals
    prefs = greedy_report.preferences

    names: set[str] = set()
    for index in range(lo, hi):
        ins = fn.instrs[index]
        names.update(r.name for r in ins.vregs())
        names.update(info.live_in[index])
        names.update(info.live_out[index])

    candidates: dict[str, tuple[int, ...]] = {}
    fixed: dict[str, int] = {}
    for name in sorted(names):
        interval = intervals[name]
        legal = regs.candidates(
            interval.vreg.size, callee_saved_only=interval.crosses_call
        )
        placement = record.placements.get(name)
        chosen: list[int] = []
        tag = prefs.variable_preference(name) if prefs else None
        if tag is not None and tag in legal:
            chosen.append(tag)
        if placement is not None and not placement.spilled:
            base = placement.sole_register
            if base is None and placement.pieces:
                base = placement.pieces[0].base
            if base is not None and base in legal and base not in chosen:
                chosen.append(base)
        for base in legal:
            if len(chosen) >= candidates_per_var:
                break
            if base not in chosen:
                chosen.append(base)
        candidates[name] = tuple(chosen)
        internal = interval.start >= lo and interval.end < hi
        if not internal and placement is not None:
            if placement.spilled:
                fixed[name] = -1  # sentinel: memory
            else:
                base = placement.reg_at(lo) or placement.pieces[0].base
                fixed[name] = base
                if base not in candidates[name]:
                    candidates[name] = candidates[name] + (base,)

    # Translate the memory sentinel for ChunkSpec.fixed semantics.
    spec_fixed = {}
    for name, base in fixed.items():
        spec_fixed[name] = base
    chg = {s: (s in changed) for s in range(lo, hi)}
    prefer = dict(prefs.tags) if prefs else {}
    old_spilled = dict(prefs.was_spilled) if prefs else {}
    return ChunkSpec(
        fn=fn,
        liveness=info,
        lo=lo,
        hi=hi,
        candidates=candidates,
        fixed=spec_fixed,
        prefer=prefer,
        chg=chg,
        freq=freqs,
        old_spilled=old_spilled,
        cnt=expected_runs,
        energy=energy,
    )


def _try_adopt(
    spec: ChunkSpec,
    record: AllocationRecord,
    internal: list[str],
    values: dict[str, int],
) -> bool:
    """Adopt the ILP assignment when every internal variable sits in one
    register throughout (see module docstring)."""
    new_bases: dict[str, int] = {}
    for name in internal:
        base = None
        for p in range(spec.hi - spec.lo + 1):
            if name not in spec.live_at_point(p):
                continue
            if values.get(_mem(name, p), 0):
                return False  # memory residence: keep greedy
            at_p = [
                r for r in spec.candidates[name] if values.get(_loc(name, p, r), 0)
            ]
            if len(at_p) != 1:
                continue
            if base is None:
                base = at_p[0]
            elif base != at_p[0]:
                return False  # moves within the chunk: keep greedy
        if base is None:
            # never live at a point (single-statement temp): keep its
            # greedy register
            continue
        new_bases[name] = base

    for name, base in new_bases.items():
        old_placement = record.placements[name]
        placement = Placement(vreg=name, size=old_placement.size)
        start = min(p.start for p in old_placement.pieces) if old_placement.pieces else spec.lo
        end = max(p.end for p in old_placement.pieces) if old_placement.pieces else spec.lo
        placement.add_piece(start, end, base)
        record.placements[name] = placement
    return True
