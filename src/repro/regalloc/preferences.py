"""Preferred-register tags (paper §3.2).

*"In UCC-RA, we tag each variable in an unchanged IR instruction with
the register name that was assigned in the old binary."*

Given the old allocation record and the old↔new IR match, this module
computes, for every virtual register of the new IR:

* ``at(vreg, new_index)`` — the register the old binary held the
  variable in at the matched old instruction (None when unmatched or
  previously spilled), and
* ``variable_preference(vreg)`` — the dominant old register across all
  matched occurrences, used as the coarse per-variable hint.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..ir.function import IRFunction
from .base import AllocationRecord
from .chunks import IRMatch


@dataclass
class PreferenceMap:
    """Preferred-register tags for one function's new IR."""

    #: (vreg name, new IR index) -> preferred base register
    tags: dict[tuple[str, int], int] = field(default_factory=dict)
    #: vreg name -> dominant preferred base register
    dominant: dict[str, int] = field(default_factory=dict)
    #: vreg name -> True if the old allocation spilled it
    was_spilled: dict[str, bool] = field(default_factory=dict)

    def at(self, vreg: str, new_index: int) -> int | None:
        return self.tags.get((vreg, new_index))

    def variable_preference(self, vreg: str) -> int | None:
        return self.dominant.get(vreg)

    def next_tag_at_or_after(self, vreg: str, new_index: int) -> int | None:
        """The nearest tag at or after ``new_index`` — what a definition
        inside a changed chunk should aim for so the downstream
        unchanged uses match the old encoding."""
        best: tuple[int, int] | None = None
        for (name, idx), reg in self.tags.items():
            if name == vreg and idx >= new_index:
                if best is None or idx < best[0]:
                    best = (idx, reg)
        return best[1] if best else None


def build_preferences(
    old_fn: IRFunction,
    new_fn: IRFunction,
    old_record: AllocationRecord,
    match: IRMatch,
) -> PreferenceMap:
    """Compute preferred-register tags from the old decisions."""
    prefs = PreferenceMap()
    votes: dict[str, Counter] = {}

    for new_index, old_index in match.new_to_old.items():
        new_instr = new_fn.instrs[new_index]
        for reg in new_instr.vregs():
            placement = old_record.placements.get(reg.name)
            if placement is None:
                continue
            if placement.spilled:
                prefs.was_spilled[reg.name] = True
                continue
            base = placement.reg_at(old_index)
            if base is None:
                continue
            prefs.tags[(reg.name, new_index)] = base
            votes.setdefault(reg.name, Counter())[base] += 1

    for name, counter in votes.items():
        # Deterministic tie-break: highest count, then lowest register.
        base, _ = min(counter.items(), key=lambda kv: (-kv[1], kv[0]))
        prefs.dominant[name] = base
    return prefs


def misleading_preferences(
    prefs: PreferenceMap, registers: list[int], seed: int = 7
) -> PreferenceMap:
    """Derange the tags — the paper's §5.6 stress test where *"variables
    are assigned to the preferred register tag randomly"* and the solver
    needs 2-3x more iterations.  Deterministic given ``seed``."""
    import random

    rng = random.Random(f"repro-preferences:{seed}")
    scrambled = PreferenceMap(was_spilled=dict(prefs.was_spilled))
    for (name, idx), _ in prefs.tags.items():
        scrambled.tags[(name, idx)] = rng.choice(registers)
    for name in prefs.dominant:
        scrambled.dominant[name] = rng.choice(registers)
    return scrambled
