"""Changed/unchanged chunk identification (paper §3.2).

Given the IR of the old and new program versions, we

1. align the two instruction sequences with a longest-common-
   subsequence match over *normalised* instruction text (labels and
   temporary statement-ids masked, see
   :meth:`repro.ir.instructions.IRInstr.render`),
2. mark new instructions without a match as *changed*, and
3. group successive instructions of the same kind into chunks, merging
   unchanged runs shorter than the threshold ``K`` into their changed
   neighbours — exactly the rule of §3.2: *"a chunk is considered
   non-changed if (i) all its instructions are not changed, and (ii)
   the chunk size is larger than K instructions."*
"""

from __future__ import annotations

from dataclasses import dataclass, field
from difflib import SequenceMatcher

from ..ir.function import IRFunction

#: Default chunking threshold (instructions).
DEFAULT_K = 4


@dataclass
class IRMatch:
    """Alignment between old and new IR instruction indices."""

    new_to_old: dict[int, int] = field(default_factory=dict)
    old_to_new: dict[int, int] = field(default_factory=dict)

    def is_matched(self, new_index: int) -> bool:
        return new_index in self.new_to_old

    @property
    def matched_count(self) -> int:
        return len(self.new_to_old)


@dataclass
class Chunk:
    """A run ``[start, end)`` of new-IR instructions of one kind."""

    start: int
    end: int
    changed: bool

    def __len__(self) -> int:
        return self.end - self.start

    def indices(self) -> range:
        return range(self.start, self.end)


def match_ir(old_fn: IRFunction, new_fn: IRFunction) -> IRMatch:
    """Align old and new IR by LCS over normalised instruction text."""
    old_texts = [ins.normalized() for ins in old_fn.instrs]
    new_texts = [ins.normalized() for ins in new_fn.instrs]
    matcher = SequenceMatcher(a=old_texts, b=new_texts, autojunk=False)
    match = IRMatch()
    for block in matcher.get_matching_blocks():
        for offset in range(block.size):
            old_index = block.a + offset
            new_index = block.b + offset
            match.new_to_old[new_index] = old_index
            match.old_to_new[old_index] = new_index
    return match


def changed_indices(new_fn: IRFunction, match: IRMatch) -> set[int]:
    """New-IR indices considered *changed* (unmatched against the old IR)."""
    return {
        index for index in range(len(new_fn.instrs)) if index not in match.new_to_old
    }


def build_chunks(
    new_fn: IRFunction, match: IRMatch, k: int = DEFAULT_K
) -> list[Chunk]:
    """Partition the new IR into changed/unchanged chunks (§3.2)."""
    count = len(new_fn.instrs)
    if count == 0:
        return []
    changed = changed_indices(new_fn, match)

    # Raw runs of equal changed-ness.
    runs: list[Chunk] = []
    run_start = 0
    run_changed = 0 in changed
    for index in range(1, count):
        is_changed = index in changed
        if is_changed != run_changed:
            runs.append(Chunk(run_start, index, run_changed))
            run_start = index
            run_changed = is_changed
    runs.append(Chunk(run_start, count, run_changed))

    # Unchanged runs of size <= K merge into neighbouring changed chunks
    # (only when they actually have a changed neighbour; a short but
    # isolated unchanged program stays unchanged).
    merged: list[Chunk] = []
    for run in runs:
        demote = (
            not run.changed
            and len(run) <= k
            and len(runs) > 1  # has neighbours
        )
        if demote:
            run = Chunk(run.start, run.end, True)
        if merged and merged[-1].changed == run.changed:
            merged[-1] = Chunk(merged[-1].start, run.end, run.changed)
        else:
            merged.append(run)
    return merged


def chunk_of(chunks: list[Chunk], index: int) -> Chunk:
    """The chunk containing new-IR instruction ``index``."""
    for chunk in chunks:
        if chunk.start <= index < chunk.end:
            return chunk
    raise IndexError(f"instruction index {index} outside all chunks")


def changed_fraction(new_fn: IRFunction, match: IRMatch) -> float:
    """Fraction of new IR instructions that are changed (diagnostic)."""
    total = len(new_fn.instrs)
    if total == 0:
        return 0.0
    return len(changed_indices(new_fn, match)) / total
