"""Allocator-facing data model.

An :class:`AllocationRecord` is the persisted outcome of register
allocation for one function — *"the compilation decisions that were
made when generating the old binary"* that the paper's update-conscious
compiler feeds back into the next compile.  The record is:

* consumed by instruction selection (which physical register holds each
  virtual register at each IR instruction, which vregs are spilled,
  which inter-register ``mov`` instructions to insert), and
* carried inside :class:`repro.core.compiler.CompiledProgram` so a
  later update can recover the old decisions.

Placements are *piecewise*: UCC-RA may split a live range at a chunk
boundary (paper Figure 4(c)) so a variable lives in different registers
over different IR index ranges, with an inserted ``mov`` joining them.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from ..isa import registers as regs


class AllocationError(Exception):
    """Raised when an allocation is internally inconsistent."""


@dataclass
class Piece:
    """``vreg`` sits in physical base register ``base`` over IR indices
    ``[start, end]`` (inclusive)."""

    start: int
    end: int
    base: int


@dataclass
class Placement:
    """Where one virtual register lives.

    ``pieces`` is sorted and non-overlapping.  A fully spilled vreg has
    ``spilled=True`` and no pieces; instruction selection then accesses
    it through the scratch registers and its frame slot.
    """

    vreg: str
    size: int
    pieces: list[Piece] = field(default_factory=list)
    spilled: bool = False

    def reg_at(self, index: int) -> int | None:
        """Physical base register at IR index ``index`` (None = memory)."""
        starts = [p.start for p in self.pieces]
        pos = bisect_right(starts, index) - 1
        if pos >= 0 and self.pieces[pos].start <= index <= self.pieces[pos].end:
            return self.pieces[pos].base
        return None

    def physical_regs_at(self, index: int) -> tuple[int, ...]:
        base = self.reg_at(index)
        if base is None:
            return ()
        return regs.registers_of(base, self.size)

    @property
    def sole_register(self) -> int | None:
        """The base register if the placement is a single piece."""
        if len(self.pieces) == 1:
            return self.pieces[0].base
        return None

    def add_piece(self, start: int, end: int, base: int) -> None:
        if start > end:
            raise AllocationError(f"bad piece [{start}, {end}] for {self.vreg}")
        for piece in self.pieces:
            if not (end < piece.start or piece.end < start):
                raise AllocationError(
                    f"overlapping pieces for {self.vreg} at [{start}, {end}]"
                )
        self.pieces.append(Piece(start, end, base))
        self.pieces.sort(key=lambda p: p.start)


@dataclass
class MoveInsertion:
    """An inter-register move the allocator asks codegen to insert.

    The move executes *before* IR instruction ``ir_index`` and copies
    ``vreg`` from base register ``src`` to base register ``dst``.
    """

    ir_index: int
    vreg: str
    src: int
    dst: int
    size: int

    @property
    def machine_words(self) -> int:
        """Encoded size: one MOVW word for a pair, one MOV word for a byte."""
        return 1


@dataclass
class AllocationRecord:
    """Complete register-allocation outcome for one function."""

    function: str
    placements: dict[str, Placement] = field(default_factory=dict)
    moves: list[MoveInsertion] = field(default_factory=list)
    #: order in which spilled vregs were assigned frame slots (the frame
    #: builder turns this into byte offsets).
    spill_order: list[str] = field(default_factory=list)
    #: name of the algorithm that produced this record
    algorithm: str = ""

    def placement(self, vreg: str) -> Placement:
        try:
            return self.placements[vreg]
        except KeyError:
            raise AllocationError(
                f"no placement for vreg {vreg!r} in {self.function}"
            ) from None

    def reg_at(self, vreg: str, index: int) -> int | None:
        return self.placement(vreg).reg_at(index)

    def moves_before(self, index: int) -> list[MoveInsertion]:
        return [m for m in self.moves if m.ir_index == index]

    def spilled_vregs(self) -> list[str]:
        return [name for name, p in self.placements.items() if p.spilled]

    def register_pressure(self) -> int:
        """Distinct physical registers ever used (diagnostic)."""
        used: set[int] = set()
        for placement in self.placements.values():
            for piece in placement.pieces:
                used.update(regs.registers_of(piece.base, placement.size))
        return len(used)


def allocation_conflicts(record: AllocationRecord, liveness):
    """Yield every register-sharing conflict as ``(index, phys, a, b)``.

    A conflict exists when two simultaneously-live vregs occupy the
    same physical register at some IR index.  Values live *into* an
    instruction must be pairwise disjoint, and so must values live
    *out of* it.  A value dying at the instruction may legally share a
    register with one defined there (the selector handles the
    two-address hazards).

    ``liveness`` is a :class:`repro.ir.liveness.LivenessInfo`.  Shared
    by :func:`verify_allocation` (the producers' cheap self-check,
    first conflict raises) and the independent allocation verifier in
    :mod:`repro.analysis.alloc_verifier` (collects all conflicts).
    """

    def check_set(names, index: int):
        occupied: dict[int, str] = {}
        for name in sorted(names):
            placement = record.placements.get(name)
            if placement is None:
                continue
            for phys in placement.physical_regs_at(index):
                other = occupied.get(phys)
                if other is not None and other != name:
                    yield index, phys, other, name
                occupied[phys] = name

    instrs = liveness.function.instrs
    for index in range(len(instrs)):
        uses = {r.name for r in instrs[index].uses()}
        defs = {r.name for r in instrs[index].defs()}
        yield from check_set(set(liveness.live_in[index]) | uses, index)
        yield from check_set(set(liveness.live_out[index]) | defs, index)


def verify_allocation(record: AllocationRecord, liveness) -> None:
    """Check that no two simultaneously-live vregs share a physical
    register at any IR index.  Raises :class:`AllocationError` on the
    first conflict found (see :func:`allocation_conflicts`).
    """
    for index, phys, other, name in allocation_conflicts(record, liveness):
        raise AllocationError(
            f"{record.function}: r{phys} holds both {other} and "
            f"{name} at IR index {index}"
        )
