"""Chaitin/Briggs-style graph-coloring register allocation.

This is the reproduction's ``GCC-RA`` baseline (paper §5): a classic,
*update-oblivious* global allocator.  It is a pure function of the new
IR — it never looks at the previous binary — so a small IR change can
shift the colouring of everything processed after it, which is exactly
the cascade the paper measures against.

Determinism matters for the reproduction: given the same IR the
allocator always produces the same record (nodes are processed in
sorted order, colours tried in ascending register number).
"""

from __future__ import annotations

from ..ir.function import IRFunction
from ..ir.liveness import analyze, interference_pairs
from ..isa import registers as regs
from .base import AllocationRecord, Placement


def allocate_graph_coloring(fn: IRFunction) -> AllocationRecord:
    """Allocate registers for ``fn`` with optimistic graph coloring."""
    info = analyze(fn)
    pairs = interference_pairs(info)
    vregs = {r.name: r for r in fn.vregs()}

    adjacency: dict[str, set[str]] = {name: set() for name in vregs}
    for a, b in pairs:
        if a in adjacency and b in adjacency:
            adjacency[a].add(b)
            adjacency[b].add(a)

    candidates = {
        name: regs.candidates(
            reg.size, callee_saved_only=info.intervals[name].crosses_call
            if name in info.intervals
            else False,
        )
        for name, reg in vregs.items()
    }

    # -- simplify phase: peel minimum-degree nodes (optimistic) ------------
    remaining = set(vregs)
    degree = {name: len(adjacency[name] & remaining) for name in remaining}
    stack: list[str] = []
    while remaining:
        name = min(remaining, key=lambda n: (degree[n], n))
        stack.append(name)
        remaining.discard(name)
        for neighbor in adjacency[name]:
            if neighbor in remaining:
                degree[neighbor] -= 1

    # -- select phase -------------------------------------------------------
    record = AllocationRecord(function=fn.name, algorithm="gcc-ra")
    end = len(fn.instrs) - 1 if fn.instrs else 0
    assigned: dict[str, int] = {}
    while stack:
        name = stack.pop()
        reg = vregs[name]
        blocked: set[int] = set()
        for neighbor in adjacency[name]:
            base = assigned.get(neighbor)
            if base is not None:
                blocked.update(regs.registers_of(base, vregs[neighbor].size))
        placement = Placement(vreg=name, size=reg.size)
        for base in candidates[name]:
            if not set(regs.registers_of(base, reg.size)) & blocked:
                assigned[name] = base
                placement.add_piece(0, end, base)
                break
        else:
            placement.spilled = True
            record.spill_order.append(name)
        record.placements[name] = placement
    return record
