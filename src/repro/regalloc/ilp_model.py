"""The integer-programming formulation of UCC-RA (paper §3.3-3.4).

The paper formalises update-conscious allocation per *changed chunk* as
a 0/1 program over decision variables ``X_def/X_cont/X_use/X_useCont/
X_lastUse/X_mov_in/X_mov_out/X_st/X_ld/X_mem_cont`` with constraints
(1)-(9) and the energy objective (10)-(15).  Following the
Goodwin-Wilken tradition the paper builds on [9], we express the same
decision space through *location* variables, which keeps the model
compact while every paper variable remains a derived quantity:

=====================  ========================================================
paper variable         here
=====================  ========================================================
``X_cont.a.s^Ri``      ``loc[a, p, Ri]`` — a sits in Ri at program point p
``X_mem_cont.a.s``     ``mem[a, p]``
``X_def.a.s^Ri``       ``loc[a, p_after(s), Ri]`` for the defined variable
``X_use/X_useCont``    ``uloc[a, s, Ri]`` — the register a is *read from* at s
``X_lastUse``          ``uloc`` at the statement where liveness ends
``X_mov_in/X_mov_out`` ``moved[a, s, Ri]`` — a enters Ri between points
``X_ld.a.s``           ``loaded[a, s]`` — reload before the use at s
``X_st.a.s``           ``stored[a, s]`` — spill store after the def at s
=====================  ========================================================

Constraints generated (paper's numbering in parentheses):

* location exclusivity: a live variable is in exactly one register or
  in memory at every point ((1), (2) pairing, (4));
* register conflict: one live variable per physical register per point
  (the "each register holds one variable at a time" constraints (8)),
  expanded over register *pairs* for u16 values (9);
* use feasibility: a variable read at s is read from the register it
  occupied at the preceding point, unless it was just loaded or moved
  there ((5)-(7));
* flow consistency between consecutive points with movement/ld/st
  indicators ((2), (3)).

The objective is eqs. (10)-(15): constant changed-instruction energy,
the linearised unchanged-instruction re-encoding term with the paper's
``theta = 3/4`` coefficient, spill energy, and inserted-move energy.
:func:`nonlinear_objective` evaluates the *original* MINLP objective
(with the product term of eq. 12) for §5.6's approximation-quality
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..energy.model import DEFAULT_ENERGY_MODEL, EnergyModel
from ..fastpath import fastpath_enabled
from ..ilp.model import Constraint, IntegerProgram, LinTerm
from ..ir.function import IRFunction
from ..ir.liveness import LivenessInfo
from ..isa import registers as regs

#: The paper's theta: averaged update cost of a two-operand instruction
#: when preferred registers may be missed (end of §3.4).
THETA = 0.75


@dataclass
class ChunkSpec:
    """Everything needed to model one chunk ``[lo, hi)``.

    ``candidates`` restricts each variable to a small register set (the
    standard ILP-allocator reduction, DESIGN.md §5); ``fixed`` pins
    boundary-crossing variables to already-decided registers;
    ``prefer`` is the preferred-register tag per (variable, IR index);
    ``chg`` marks changed instructions; ``freq`` is the per-statement
    execution-frequency estimate; ``cnt`` the projected execution count.
    """

    fn: IRFunction
    liveness: LivenessInfo
    lo: int
    hi: int
    candidates: dict[str, tuple[int, ...]]
    fixed: dict[str, int] = field(default_factory=dict)
    prefer: dict[tuple[str, int], int] = field(default_factory=dict)
    chg: dict[int, bool] = field(default_factory=dict)
    freq: dict[int, float] = field(default_factory=dict)
    old_spilled: dict[str, bool] = field(default_factory=dict)
    cnt: float = 1000.0
    energy: EnergyModel = DEFAULT_ENERGY_MODEL

    def variables(self) -> list[str]:
        """Variables live anywhere inside the chunk, sorted."""
        names: set[str] = set()
        for index in range(self.lo, self.hi):
            ins = self.fn.instrs[index]
            names.update(r.name for r in ins.vregs())
            names.update(self.liveness.live_in[index])
            names.update(self.liveness.live_out[index])
        return sorted(n for n in names if n in self.candidates)

    def size_of(self, name: str) -> int:
        return self.liveness.intervals[name].vreg.size

    def live_at_point(self, point: int) -> set[str]:
        """Variables live at program point ``point`` (before instruction
        ``lo + point``; the last point is the chunk's out-boundary)."""
        index = self.lo + point
        if index < self.hi:
            return set(self.liveness.live_in[index])
        return set(self.liveness.live_out[self.hi - 1]) if self.hi > self.lo else set()


# Variable-name builders (kept short: model size matters).
def _loc(a: str, p: int, r: int) -> str:
    return f"L.{a}.{p}.{r}"


def _mem(a: str, p: int) -> str:
    return f"M.{a}.{p}"


def _uloc(a: str, s: int, r: int) -> str:
    return f"U.{a}.{s}.{r}"


def _moved(a: str, s: int, r: int) -> str:
    return f"V.{a}.{s}.{r}"


def _loaded(a: str, s: int) -> str:
    return f"D.{a}.{s}"


def _stored(a: str, s: int) -> str:
    return f"S.{a}.{s}"


def build_chunk_model(spec: ChunkSpec) -> IntegerProgram:
    """Build the 0/1 program for one chunk.

    Two generators exist (see :mod:`repro.fastpath`): the reference one
    below, kept as the correctness oracle, and a fast one that emits
    the *identical* program — same variable registration order, same
    constraints, same objective — from precomputed liveness/preference
    tables.  ``tests/test_ilp_fastpath.py`` certifies the equivalence.
    """
    if fastpath_enabled():
        return _build_chunk_model_fast(spec)
    return _build_chunk_model_reference(spec)


def _build_chunk_model_reference(spec: ChunkSpec) -> IntegerProgram:
    prog = IntegerProgram(name=f"ucc-ra:{spec.fn.name}[{spec.lo}:{spec.hi})")
    names = spec.variables()
    points = range(spec.hi - spec.lo + 1)

    # -- location exclusivity (1)/(4): one home per live variable ---------
    for a in names:
        for p in points:
            if a not in spec.live_at_point(p):
                continue
            terms = [(1.0, _loc(a, p, r)) for r in spec.candidates[a]]
            terms.append((1.0, _mem(a, p)))
            prog.add_constraint(terms, "=", 1.0, name=f"home.{a}.{p}")

    # -- boundary fixing: crossing variables keep their decided register --
    for a, base in spec.fixed.items():
        if a not in names:
            continue
        for p in (0, spec.hi - spec.lo):
            if a in spec.live_at_point(p):
                if base in spec.candidates[a]:
                    prog.fix(_loc(a, p, base), 1)
                else:  # decided spilled at the boundary
                    prog.fix(_mem(a, p), 1)

    # -- register conflicts (8) with pair expansion (9) --------------------
    for p in points:
        live = [a for a in names if a in spec.live_at_point(p)]
        unit_users: dict[int, list[tuple[str, int]]] = {}
        for a in live:
            for r in spec.candidates[a]:
                for unit in regs.registers_of(r, spec.size_of(a)):
                    unit_users.setdefault(unit, []).append((a, r))
        for unit, users in unit_users.items():
            if len(users) < 2:
                continue
            prog.add_constraint(
                [(1.0, _loc(a, p, r)) for a, r in users],
                "<=",
                1.0,
                name=f"conflict.{p}.r{unit}",
            )

    # -- per-statement semantics -------------------------------------------
    for s in range(spec.lo, spec.hi):
        ins = spec.fn.instrs[s]
        p_before = s - spec.lo
        p_after = p_before + 1
        used = sorted({r.name for r in ins.uses() if r.name in spec.candidates})
        defined = sorted({r.name for r in ins.defs() if r.name in spec.candidates})

        # uses: read from exactly one register ((5): use/useCont/lastUse)
        for a in used:
            terms = [(1.0, _uloc(a, s, r)) for r in spec.candidates[a]]
            prog.add_constraint(terms, "=", 1.0, name=f"use.{a}.{s}")
            for r in spec.candidates[a]:
                # The read register must hold the value: it was there at
                # the preceding point, or a reload/move brought it in
                # ((6)/(7): ld/mov before the use point).
                prog.add_constraint(
                    [
                        (1.0, _uloc(a, s, r)),
                        (-1.0, _loc(a, p_before, r)),
                        (-1.0, _loaded(a, s)),
                        (-1.0, _moved(a, s, r)),
                    ],
                    "<=",
                    0.0,
                    name=f"usefeas.{a}.{s}.r{r}",
                )
            # A reload is only possible from memory ((7)).
            prog.add_constraint(
                [(1.0, _loaded(a, s)), (-1.0, _mem(a, p_before))],
                "<=",
                0.0,
                name=f"ldmem.{a}.{s}",
            )

        # defs: the defined variable lands where loc says at p_after; a
        # spill store may put it (also) in memory ((3)/(4)).
        for a in defined:
            prog.add_constraint(
                [(1.0, _mem(a, p_after)), (-1.0, _stored(a, s))],
                "<=",
                0.0,
                name=f"defmem.{a}.{s}",
            )

        # flow: a variable live across s (not redefined) stays put unless
        # moved (V) or stored/loaded ((2)/(3)).
        for a in names:
            if a in defined:
                continue
            if a not in spec.live_at_point(p_before) or a not in spec.live_at_point(
                p_after
            ):
                continue
            for r in spec.candidates[a]:
                # entering r needs an explicit move (or a reload into r —
                # modelled as a move from memory with load cost).
                prog.add_constraint(
                    [
                        (1.0, _loc(a, p_after, r)),
                        (-1.0, _loc(a, p_before, r)),
                        (-1.0, _moved(a, s, r)),
                    ],
                    "<=",
                    0.0,
                    name=f"flow.{a}.{s}.r{r}",
                )
            # entering memory needs a store
            prog.add_constraint(
                [
                    (1.0, _mem(a, p_after)),
                    (-1.0, _mem(a, p_before)),
                    (-1.0, _stored(a, s)),
                ],
                "<=",
                0.0,
                name=f"flowmem.{a}.{s}",
            )

    # -- objective (10)-(15) ----------------------------------------------------
    _add_objective(prog, spec)
    return prog


def _add_objective(prog: IntegerProgram, spec: ChunkSpec) -> None:
    energy = spec.energy
    names = set(spec.variables())

    # Epsilon tie-breaks (orders of magnitude below any real energy
    # term): prefer the variable's old register even in *changed*
    # instructions — re-encoding a changed instruction with the old
    # register often reproduces the old bytes verbatim, which the
    # energy model cannot see but the binary differ rewards — and
    # prefer low-numbered registers, matching the deterministic
    # baseline's habit.
    eps = 1e-6
    for a in sorted(names):
        tag = None
        for (name, _), reg in sorted(spec.prefer.items()):
            if name == a:
                tag = reg
                break
        for p in range(spec.hi - spec.lo + 1):
            if a not in spec.live_at_point(p):
                continue
            for r in spec.candidates[a]:
                penalty = eps * (r + 1)
                if tag is not None and r == tag:
                    penalty = 0.0
                prog.add_objective(_loc(a, p, r), penalty)

    # (11) E_changed_IR: constant w.r.t. decisions.
    constant = 0.0
    for s in range(spec.lo, spec.hi):
        if spec.chg.get(s, True):
            constant += spec.freq.get(s, 1.0) * spec.cnt * energy.e_exe
            constant += energy.e_trans
    prog.objective_constant = constant

    for s in range(spec.lo, spec.hi):
        ins = spec.fn.instrs[s]
        freq = spec.freq.get(s, 1.0)
        used = sorted({r.name for r in ins.uses() if r.name in names})
        defined = sorted({r.name for r in ins.defs() if r.name in names})
        occurring = sorted(set(used) | set(defined))

        # (12)/(15) E_unchanged_IR, linearised with theta.
        if not spec.chg.get(s, True):
            prog.objective_constant += freq * spec.cnt * energy.e_exe
            tagged = [
                (a, spec.prefer[(a, s)])
                for a in occurring
                if (a, s) in spec.prefer
            ]
            theta = THETA if len(tagged) >= 2 else 1.0
            for a, pref in tagged:
                # theta * (1 - X_pref) * E_trans.  Defined variables are
                # charged through their post-point location; skip dead
                # defs (their location variable would be unconstrained).
                if pref not in spec.candidates[a]:
                    continue
                if a in used:
                    var = _uloc(a, s, pref)
                else:
                    if a not in spec.live_at_point(s - spec.lo + 1):
                        continue
                    var = _loc(a, s - spec.lo + 1, pref)
                prog.objective_constant += theta * energy.e_trans
                prog.add_objective(var, -theta * energy.e_trans)

        # (13) E_spill: execution + transmission of ld/st.
        for a in used:
            was_spilled = spec.old_spilled.get(a, False)
            cost = freq * spec.cnt * energy.e_exe_mem
            if not was_spilled:
                cost += energy.e_trans  # a *new* reload instruction
            prog.add_objective(_loaded(a, s), cost)
        for a in defined:
            was_spilled = spec.old_spilled.get(a, False)
            cost = freq * spec.cnt * energy.e_exe_mem
            if not was_spilled:
                cost += energy.e_trans
            prog.add_objective(_stored(a, s), cost)

        # (14) E_extra: inserted inter-register moves (only moves the
        # constraints actually declared are priced).
        for a in sorted(names):
            for r in spec.candidates.get(a, ()):
                name = _moved(a, s, r)
                if name in prog._var_index:
                    prog.add_objective(
                        name, freq * spec.cnt * energy.e_exe + energy.e_trans
                    )


def _build_chunk_model_fast(spec: ChunkSpec) -> IntegerProgram:
    """Fast chunk-model generator.

    Emits exactly the constraint/objective stream of
    :func:`_build_chunk_model_reference` — the loops are the same, in
    the same order — but every repeated lookup is hoisted: per-point
    live sets are computed once instead of per (variable, point) probe,
    the preferred-register first-tag scan becomes one sorted pass,
    register-unit expansion is memoised, and constraints are appended
    with the model layer's invariants inlined.
    """
    prog = IntegerProgram(name=f"ucc-ra:{spec.fn.name}[{spec.lo}:{spec.hi})")
    names = spec.variables()
    n_points = spec.hi - spec.lo + 1
    points = range(n_points)
    candidates = spec.candidates
    live_pts = [spec.live_at_point(p) for p in points]

    var_index = prog._var_index
    variables = prog.variables
    constraints = prog.constraints

    def addc(terms: list[tuple[float, str]], sense: str, rhs: float, name: str) -> None:
        # Inlined IntegerProgram.add_constraint: same zero-coefficient
        # filter, same first-use variable registration order.
        lin = []
        for coeff, v in terms:
            if coeff != 0.0:
                if v not in var_index:
                    var_index[v] = len(variables)
                    variables.append(v)
                lin.append(LinTerm(coeff, v))
        constraints.append(Constraint(terms=lin, sense=sense, rhs=rhs, name=name))

    # -- location exclusivity (1)/(4) --------------------------------------
    for a in names:
        cand = candidates[a]
        for p in points:
            if a not in live_pts[p]:
                continue
            terms = [(1.0, f"L.{a}.{p}.{r}") for r in cand]
            terms.append((1.0, f"M.{a}.{p}"))
            addc(terms, "=", 1.0, f"home.{a}.{p}")

    # -- boundary fixing ---------------------------------------------------
    names_set = set(names)
    for a, base in spec.fixed.items():
        if a not in names_set:
            continue
        for p in (0, spec.hi - spec.lo):
            if a in live_pts[p]:
                if base in candidates[a]:
                    prog.fix(_loc(a, p, base), 1)
                else:
                    prog.fix(_mem(a, p), 1)

    # -- register conflicts (8)/(9) ----------------------------------------
    size_of = {a: spec.size_of(a) for a in names}
    units_of: dict[tuple[int, int], tuple[int, ...]] = {}
    for p in points:
        live_set = live_pts[p]
        unit_users: dict[int, list[tuple[str, int]]] = {}
        for a in names:
            if a not in live_set:
                continue
            sz = size_of[a]
            for r in candidates[a]:
                key = (r, sz)
                units = units_of.get(key)
                if units is None:
                    units = tuple(regs.registers_of(r, sz))
                    units_of[key] = units
                for unit in units:
                    unit_users.setdefault(unit, []).append((a, r))
        for unit, users in unit_users.items():
            if len(users) < 2:
                continue
            addc(
                [(1.0, f"L.{a}.{p}.{r}") for a, r in users],
                "<=",
                1.0,
                f"conflict.{p}.r{unit}",
            )

    # -- per-statement semantics -------------------------------------------
    used_by_s: dict[int, list[str]] = {}
    defined_by_s: dict[int, list[str]] = {}
    for s in range(spec.lo, spec.hi):
        ins = spec.fn.instrs[s]
        p_before = s - spec.lo
        p_after = p_before + 1
        used = sorted({r.name for r in ins.uses() if r.name in candidates})
        defined = sorted({r.name for r in ins.defs() if r.name in candidates})
        used_by_s[s] = used
        defined_by_s[s] = defined

        for a in used:
            cand = candidates[a]
            addc([(1.0, f"U.{a}.{s}.{r}") for r in cand], "=", 1.0, f"use.{a}.{s}")
            for r in cand:
                addc(
                    [
                        (1.0, f"U.{a}.{s}.{r}"),
                        (-1.0, f"L.{a}.{p_before}.{r}"),
                        (-1.0, f"D.{a}.{s}"),
                        (-1.0, f"V.{a}.{s}.{r}"),
                    ],
                    "<=",
                    0.0,
                    f"usefeas.{a}.{s}.r{r}",
                )
            addc(
                [(1.0, f"D.{a}.{s}"), (-1.0, f"M.{a}.{p_before}")],
                "<=",
                0.0,
                f"ldmem.{a}.{s}",
            )

        for a in defined:
            addc(
                [(1.0, f"M.{a}.{p_after}"), (-1.0, f"S.{a}.{s}")],
                "<=",
                0.0,
                f"defmem.{a}.{s}",
            )

        defined_set = set(defined)
        live_before = live_pts[p_before]
        live_after = live_pts[p_after]
        for a in names:
            if a in defined_set:
                continue
            if a not in live_before or a not in live_after:
                continue
            for r in candidates[a]:
                addc(
                    [
                        (1.0, f"L.{a}.{p_after}.{r}"),
                        (-1.0, f"L.{a}.{p_before}.{r}"),
                        (-1.0, f"V.{a}.{s}.{r}"),
                    ],
                    "<=",
                    0.0,
                    f"flow.{a}.{s}.r{r}",
                )
            addc(
                [
                    (1.0, f"M.{a}.{p_after}"),
                    (-1.0, f"M.{a}.{p_before}"),
                    (-1.0, f"S.{a}.{s}"),
                ],
                "<=",
                0.0,
                f"flowmem.{a}.{s}",
            )

    _add_objective_fast(prog, spec, names, live_pts, used_by_s, defined_by_s)
    return prog


def _add_objective_fast(
    prog: IntegerProgram,
    spec: ChunkSpec,
    names: list[str],
    live_pts: list[set[str]],
    used_by_s: dict[int, list[str]],
    defined_by_s: dict[int, list[str]],
) -> None:
    """Objective emission for the fast generator — same stream as
    :func:`_add_objective`, with the first-tag scan and per-statement
    use/def recomputation hoisted."""
    energy = spec.energy

    # One sorted pass replaces the reference's per-variable scan over
    # sorted(prefer): setdefault keeps the first (lowest-key) tag.
    first_tag: dict[str, int] = {}
    for (name, _), reg in sorted(spec.prefer.items()):
        first_tag.setdefault(name, reg)

    eps = 1e-6
    for a in names:  # names is sorted
        tag = first_tag.get(a)
        cand = spec.candidates[a]
        for p in range(spec.hi - spec.lo + 1):
            if a not in live_pts[p]:
                continue
            for r in cand:
                penalty = eps * (r + 1)
                if tag is not None and r == tag:
                    penalty = 0.0
                prog.add_objective(f"L.{a}.{p}.{r}", penalty)

    constant = 0.0
    for s in range(spec.lo, spec.hi):
        if spec.chg.get(s, True):
            constant += spec.freq.get(s, 1.0) * spec.cnt * energy.e_exe
            constant += energy.e_trans
    prog.objective_constant = constant

    var_index = prog._var_index
    for s in range(spec.lo, spec.hi):
        freq = spec.freq.get(s, 1.0)
        used = used_by_s[s]
        defined = defined_by_s[s]
        occurring = sorted(set(used) | set(defined))
        used_set = set(used)

        if not spec.chg.get(s, True):
            prog.objective_constant += freq * spec.cnt * energy.e_exe
            tagged = [
                (a, spec.prefer[(a, s)]) for a in occurring if (a, s) in spec.prefer
            ]
            theta = THETA if len(tagged) >= 2 else 1.0
            for a, pref in tagged:
                if pref not in spec.candidates[a]:
                    continue
                if a in used_set:
                    var = f"U.{a}.{s}.{pref}"
                else:
                    if a not in live_pts[s - spec.lo + 1]:
                        continue
                    var = f"L.{a}.{s - spec.lo + 1}.{pref}"
                prog.objective_constant += theta * energy.e_trans
                prog.add_objective(var, -theta * energy.e_trans)

        for a in used:
            was_spilled = spec.old_spilled.get(a, False)
            cost = freq * spec.cnt * energy.e_exe_mem
            if not was_spilled:
                cost += energy.e_trans
            prog.add_objective(f"D.{a}.{s}", cost)
        for a in defined:
            was_spilled = spec.old_spilled.get(a, False)
            cost = freq * spec.cnt * energy.e_exe_mem
            if not was_spilled:
                cost += energy.e_trans
            prog.add_objective(f"S.{a}.{s}", cost)

        move_cost = freq * spec.cnt * energy.e_exe + energy.e_trans
        for a in names:  # names is sorted
            for r in spec.candidates.get(a, ()):
                name = f"V.{a}.{s}.{r}"
                if name in var_index:
                    prog.add_objective(name, move_cost)


def nonlinear_objective(spec: ChunkSpec, values: dict[str, int]) -> float:
    """Evaluate the *original* MINLP objective (eq. 12's product form)
    on a solved assignment — used by the §5.6 comparison."""
    energy = spec.energy
    total = 0.0
    names = set(spec.variables())
    for s in range(spec.lo, spec.hi):
        ins = spec.fn.instrs[s]
        freq = spec.freq.get(s, 1.0)
        total += freq * spec.cnt * energy.e_exe
        if spec.chg.get(s, True):
            total += energy.e_trans
            continue
        used = {r.name for r in ins.uses() if r.name in names}
        defined = {r.name for r in ins.defs() if r.name in names}
        product = 1
        any_tag = False
        for a in sorted(used | defined):
            if (a, s) not in spec.prefer:
                continue
            any_tag = True
            pref = spec.prefer[(a, s)]
            var = _uloc(a, s, pref) if a in used else _loc(a, s - spec.lo + 1, pref)
            product *= values.get(var, 0)
        if any_tag and product == 0:
            total += energy.e_trans  # the instruction must be re-encoded
        # spill + move costs are linear in both formulations
        for a in sorted(used):
            if values.get(_loaded(a, s), 0):
                total += freq * spec.cnt * energy.e_exe_mem
                if not spec.old_spilled.get(a, False):
                    total += energy.e_trans
        for a in sorted(defined):
            if values.get(_stored(a, s), 0):
                total += freq * spec.cnt * energy.e_exe_mem
                if not spec.old_spilled.get(a, False):
                    total += energy.e_trans
        for a in sorted(names):
            for r in spec.candidates.get(a, ()):
                if values.get(_moved(a, s, r), 0):
                    total += freq * spec.cnt * energy.e_exe + energy.e_trans
    return total


def greedy_incumbent(spec: ChunkSpec, assignment: dict[str, int | None]) -> dict[str, int]:
    """Translate a register assignment (vreg -> base or None for memory)
    into a warm-start solution for the model."""
    values: dict[str, int] = {}
    for a in spec.variables():
        base = assignment.get(a)
        for p in range(spec.hi - spec.lo + 1):
            if a not in spec.live_at_point(p):
                continue
            if base is None:
                values[_mem(a, p)] = 1
            else:
                values[_loc(a, p, base)] = 1
        for s in range(spec.lo, spec.hi):
            ins = spec.fn.instrs[s]
            if any(r.name == a for r in ins.uses()):
                if base is None:
                    values[_loaded(a, s)] = 1
                    # loaded into the first candidate
                    values[_uloc(a, s, spec.candidates[a][0])] = 1
                else:
                    values[_uloc(a, s, base)] = 1
    return values
