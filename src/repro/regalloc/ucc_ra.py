"""Update-conscious register allocation (UCC-RA, paper §3).

The driver implements the strategy of §3.2:

* identify changed/unchanged chunks of the new IR against the old IR
  (:mod:`repro.regalloc.chunks`),
* tag variables with the register the *old* binary assigned them
  (:mod:`repro.regalloc.preferences`),
* keep the old decisions for unchanged code, allocate changed code with
  preference for the old decisions, and
* insert inter-register ``mov`` instructions at chunk boundaries when —
  and only when — the energy model says re-encoding the downstream
  unchanged instructions would cost more than transmitting and
  executing the ``mov`` (paper Figure 4(c); §5.5's observation that a
  large execution count ``Cnt`` disables the insertion falls out of the
  same comparison).

The allocator scans definitions in program order but tracks conflicts
through the *interference graph*, not linear intervals: the old
records come from a graph-coloring baseline that freely shares a
register between values with disjoint lifetimes (live-range holes,
def-reuses-dying-use), and the preferred-register tags are only
honourable if the new allocator can reproduce such sharing.  On
unchanged IR this reproduces the old assignment exactly — pinned by
tests (a self-update yields a zero-instruction diff).

Two modes are provided:

* ``allocate_ucc_greedy`` — the linear-time preference-guided scan
  described above; the default used by the end-to-end update pipeline;
* the ILP mode in :mod:`repro.regalloc.ilp_ra` — the faithful §3.3/§3.4
  integer-programming formulation, applied per changed chunk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..energy.model import DEFAULT_ENERGY_MODEL, EnergyModel
from ..ir.cfg import static_frequencies
from ..ir.function import IRFunction
from ..ir.liveness import analyze, interference_pairs
from ..isa import registers as regs
from ..obs import metrics
from .base import AllocationRecord, MoveInsertion, Placement
from .chunks import Chunk, DEFAULT_K, IRMatch, build_chunks, match_ir
from .preferences import PreferenceMap, build_preferences


@dataclass
class UCCReport:
    """Diagnostics of one UCC-RA run (consumed by tests and benches)."""

    match: IRMatch = None
    chunks: list[Chunk] = field(default_factory=list)
    preferences: PreferenceMap = None
    moves_inserted: int = 0
    moves_rejected: int = 0
    tags_honoured: int = 0
    tags_broken: int = 0


def _publish(report: UCCReport, fallback: bool) -> None:
    """Publish one allocation's reuse accounting to :mod:`repro.obs`."""
    metrics.counter("regalloc.ucc.functions").inc()
    metrics.counter("regalloc.ucc.tags_honoured").inc(report.tags_honoured)
    metrics.counter("regalloc.ucc.tags_broken").inc(report.tags_broken)
    metrics.counter("regalloc.ucc.moves_inserted").inc(report.moves_inserted)
    metrics.counter("regalloc.ucc.moves_rejected").inc(report.moves_rejected)
    changed = sum(1 for chunk in report.chunks if chunk.changed)
    metrics.counter("regalloc.ucc.chunks_changed").inc(changed)
    metrics.counter("regalloc.ucc.chunks_unchanged").inc(
        len(report.chunks) - changed
    )
    if fallback:
        metrics.counter("regalloc.ucc.baseline_fallbacks").inc()


def allocate_ucc_greedy(
    new_fn: IRFunction,
    old_fn: IRFunction,
    old_record: AllocationRecord,
    energy: EnergyModel = DEFAULT_ENERGY_MODEL,
    k: int = DEFAULT_K,
    expected_runs: float = 1000.0,
    loop_weight: float = 10.0,
    old_profile: dict[int, float] | None = None,
) -> tuple[AllocationRecord, UCCReport]:
    """Allocate ``new_fn`` update-consciously against the old decisions.

    ``expected_runs`` is the paper's ``Cnt`` — how many times the code
    is projected to run before it retires; it weighs the execution cost
    of inserted moves against their transmission savings.

    ``old_profile`` optionally supplies *measured* per-IR-instruction
    execution counts of the old binary (paper §2.1: "we collect program
    execution profiles").  Matched instructions inherit the measured
    frequency; unmatched ones fall back to the static loop-nesting
    estimate.
    """
    match = match_ir(old_fn, new_fn)
    chunks = build_chunks(new_fn, match, k)
    prefs = build_preferences(old_fn, new_fn, old_record, match)

    if not prefs.tags and not prefs.was_spilled:
        # No usable hints at all (e.g. every statement changed, or every
        # variable renamed).  The deterministic baseline colorer then
        # reproduces the old encodings better than a guided scan with
        # nothing to guide it — this mirrors the paper's case 13, where
        # UCC-RA "only uses the preferred register tag as hint" and
        # otherwise matches GCC-RA's quality.
        from .graph_coloring import allocate_graph_coloring

        record = allocate_graph_coloring(new_fn)
        record.algorithm = "ucc-ra(baseline-fallback)"
        report = UCCReport(match=match, chunks=chunks, preferences=prefs)
        _publish(report, fallback=True)
        return record, report

    info = analyze(new_fn)
    freqs = static_frequencies(new_fn, loop_weight)
    if old_profile:
        # Per-run frequency = measured executions of the matched old
        # instruction; statically-estimated for new instructions.
        for new_index, old_index in match.new_to_old.items():
            if old_index in old_profile:
                freqs[new_index] = float(old_profile[old_index])

    report = UCCReport(match=match, chunks=chunks, preferences=prefs)
    record = AllocationRecord(function=new_fn.name, algorithm="ucc-ra")

    intervals = info.intervals
    count = len(new_fn.instrs)

    # Interference adjacency over vreg names.
    conflicts: dict[str, set[str]] = {name: set() for name in intervals}
    for a, b in interference_pairs(info):
        if a in conflicts and b in conflicts:
            conflicts[a].add(b)
            conflicts[b].add(a)

    # Scan state: a physical register may be shared by several
    # *non-interfering* vregs whose linear intervals overlap.
    holders: dict[int, set[str]] = {}  # physical register -> holder names
    current_base: dict[str, int] = {}  # live vreg -> base register
    piece_start: dict[str, int] = {}

    def usable(base: int, size: int, name: str) -> bool:
        """Can ``name`` take ``base`` without clashing with a live,
        interfering holder?"""
        mine = conflicts.get(name, set())
        for unit in regs.registers_of(base, size):
            for holder in holders.get(unit, ()):
                if holder in mine:
                    return False
        return True

    def claim(name: str, base: int, size: int, index: int) -> None:
        for unit in regs.registers_of(base, size):
            holders.setdefault(unit, set()).add(name)
        current_base[name] = base
        piece_start[name] = index

    def release(name: str) -> None:
        base = current_base.pop(name)
        size = intervals[name].vreg.size
        for unit in regs.registers_of(base, size):
            holders.get(unit, set()).discard(name)

    def close_piece(name: str, end: int) -> None:
        base = current_base[name]
        record.placements[name].add_piece(piece_start[name], end, base)

    # Per-vreg tagged occurrences, sorted by IR index.
    tags_by_name: dict[str, list[tuple[int, int]]] = {}
    for (name, idx), reg in prefs.tags.items():
        tags_by_name.setdefault(name, []).append((idx, reg))
    for occurrences in tags_by_name.values():
        occurrences.sort()

    # Registers that variables with *future* tagged (matched, unchanged)
    # occurrences still want; avoided when choosing fallback registers so
    # a changed-chunk def does not steal the register a downstream
    # unchanged instruction needs to stay byte-identical.  Only
    # *interfering* variables matter: a non-interfering one can share
    # the register and still receive its tag.
    def reserved_tags(except_vreg: str, at_index: int) -> set[int]:
        reserved = set()
        mine = conflicts.get(except_vreg, set())
        for name, occurrences in tags_by_name.items():
            if name == except_vreg or name not in mine:
                continue
            for idx, reg in occurrences:
                if idx > at_index:
                    reserved.add(reg)
                    break
        return reserved

    def tag_for(name: str, index: int) -> int | None:
        tag = prefs.at(name, index)
        if tag is None:
            tag = prefs.next_tag_at_or_after(name, index)
        if tag is None:
            tag = prefs.variable_preference(name)
        return tag

    def choose_register(name: str, index: int) -> int | None:
        interval = intervals[name]
        candidates = regs.candidates(
            interval.vreg.size, callee_saved_only=interval.crosses_call
        )
        tag = tag_for(name, index)
        if tag is not None and tag in candidates and usable(
            tag, interval.vreg.size, name
        ):
            report.tags_honoured += 1
            return tag
        if tag is not None:
            report.tags_broken += 1
        avoid = reserved_tags(name, index)
        for base in candidates:
            if base not in avoid and usable(base, interval.vreg.size, name):
                return base
        for base in candidates:
            if usable(base, interval.vreg.size, name):
                return base
        return None

    def touches_changed(name: str) -> bool:
        interval = intervals[name]
        for chunk in chunks:
            if not chunk.changed:
                continue
            if not (interval.end < chunk.start or chunk.end - 1 < interval.start):
                return True
        return False

    def allocate(name: str, index: int) -> None:
        interval = intervals[name]
        placement = Placement(vreg=name, size=interval.vreg.size)
        record.placements[name] = placement
        # Keep the old spill decision when the variable was spilled
        # before and its code is unchanged (zero transmission cost).
        if prefs.was_spilled.get(name) and not touches_changed(name):
            placement.spilled = True
            record.spill_order.append(name)
            return
        base = choose_register(name, index)
        if base is None:
            placement.spilled = True
            record.spill_order.append(name)
            return
        claim(name, base, interval.vreg.size, index)

    def consider_switch(name: str, chunk: Chunk) -> None:
        """Move ``name`` back to its old register at an unchanged-chunk
        boundary when the energy model favours it (paper Fig. 4(c))."""
        interval = intervals[name]
        base = current_base[name]
        tag = prefs.at(name, chunk.start)
        if tag is None:
            for idx in chunk.indices():
                tag = prefs.at(name, idx)
                if tag is not None:
                    break
        if tag is None or tag == base:
            return
        size = interval.vreg.size
        candidates = regs.candidates(size, callee_saved_only=interval.crosses_call)
        if tag not in candidates or not usable(tag, size, name):
            return

        # Benefit: matched instructions in this chunk that keep their
        # old encoding instead of being re-transmitted.
        saved_instrs = sum(
            1
            for idx in range(chunk.start, min(chunk.end, interval.end + 1))
            if prefs.at(name, idx) == tag
        )
        benefit = energy.e_trans * saved_instrs
        move_words = 1  # one MOV/MOVW instruction word
        cost = energy.e_trans_words(move_words) + (
            freqs.get(chunk.start, 1.0) * expected_runs * energy.e_exe
        )
        if benefit <= cost:
            report.moves_rejected += 1
            return

        close_piece(name, chunk.start - 1)
        release(name)
        claim(name, tag, size, chunk.start)
        record.moves.append(
            MoveInsertion(ir_index=chunk.start, vreg=name, src=base, dst=tag, size=size)
        )
        report.moves_inserted += 1

    unchanged_starts = {c.start: c for c in chunks if not c.changed}

    for index in range(count):
        # 1. retire vregs that died before this instruction
        for name in [n for n in list(current_base) if intervals[n].end < index]:
            close_piece(name, intervals[name].end)
            release(name)

        # 2. at the start of an unchanged chunk, consider switching live
        #    variables back to their old registers
        chunk = unchanged_starts.get(index)
        if chunk is not None and index > 0:
            for name in sorted(current_base):
                consider_switch(name, chunk)

        # 3. allocate vregs whose live interval starts here
        starting = sorted(
            name
            for name, interval in intervals.items()
            if interval.start == index and name not in record.placements
        )
        for name in starting:
            allocate(name, index)

    for name in list(current_base):
        close_piece(name, intervals[name].end)
        release(name)

    if report.tags_broken > report.tags_honoured:
        # The new liveness made most old decisions unreproducible (the
        # adversarial end of the paper's Figure 4 spectrum): a fresh
        # deterministic colouring then matches the old binary at least
        # as well as a half-honoured tag set.  Deterministic, so the
        # choice itself is stable across recompilations.
        from .graph_coloring import allocate_graph_coloring

        fallback = allocate_graph_coloring(new_fn)
        fallback.algorithm = "ucc-ra(baseline-fallback)"
        _publish(report, fallback=True)
        return fallback, report
    _publish(report, fallback=False)
    return record, report
