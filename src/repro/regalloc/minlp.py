"""MINLP reference solver (paper §5.6).

The exact UCC-RA model is a mixed integer *non-linear* program: the
update cost of an unchanged two-operand instruction is the product of
its operands' preferred-register indicators (eq. 12).  The paper solves
an ILP approximation (theta = 3/4) and reports that it produced *the
same allocation decisions* as the MINLP on every test case, while the
MINLP was orders of magnitude slower.

This module provides the ground-truth side of that comparison: an
exhaustive solver that enumerates whole-chunk register assignments for
the internal variables and evaluates the genuine non-linear objective
(:func:`repro.regalloc.ilp_model.nonlinear_objective`).  It is
deliberately brute-force — usable only on small chunks, which is
exactly the regime where a reference is checkable.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

from ..isa import registers as regs
from .ilp_model import ChunkSpec, greedy_incumbent, nonlinear_objective


@dataclass
class MINLPResult:
    """Outcome of the exhaustive non-linear solve."""

    assignment: dict[str, int]
    objective: float
    evaluated: int
    wall_time: float


def solve_chunk_minlp(
    spec: ChunkSpec, max_assignments: int = 2_000_000
) -> MINLPResult:
    """Enumerate feasible assignments of the chunk's free variables and
    minimise the non-linear objective.

    Feasibility = no two simultaneously-live variables on overlapping
    physical registers (the model's conflict constraints).  Fixed
    (boundary) variables keep their decided registers.
    """
    names = spec.variables()
    free = [a for a in names if a not in spec.fixed]
    fixed_assignment = {
        a: base for a, base in spec.fixed.items() if base is not None and base >= 0
    }

    # Interference restricted to the chunk: overlap of live point sets.
    live_points: dict[str, set[int]] = {
        a: {
            p
            for p in range(spec.hi - spec.lo + 1)
            if a in spec.live_at_point(p)
        }
        for a in names
    }

    def conflict(a: str, base_a: int, b: str, base_b: int) -> bool:
        if not (live_points[a] & live_points[b]):
            return False
        units_a = set(regs.registers_of(base_a, spec.size_of(a)))
        units_b = set(regs.registers_of(base_b, spec.size_of(b)))
        return bool(units_a & units_b)

    start = time.perf_counter()
    spaces = [spec.candidates[a] for a in free]
    total_space = 1
    for space in spaces:
        total_space *= max(1, len(space))
    if total_space > max_assignments:
        raise ValueError(
            f"MINLP enumeration space {total_space} exceeds {max_assignments}; "
            "use a smaller chunk or fewer candidates"
        )

    best: MINLPResult | None = None
    evaluated = 0
    for combo in itertools.product(*spaces):
        assignment = dict(fixed_assignment)
        assignment.update(dict(zip(free, combo)))
        feasible = True
        items = list(assignment.items())
        for i, (a, base_a) in enumerate(items):
            for b, base_b in items[i + 1 :]:
                if conflict(a, base_a, b, base_b):
                    feasible = False
                    break
            if not feasible:
                break
        if not feasible:
            continue
        evaluated += 1
        values = greedy_incumbent(spec, dict(assignment))
        objective = nonlinear_objective(spec, values)
        if best is None or objective < best.objective - 1e-9:
            best = MINLPResult(
                assignment=dict(assignment),
                objective=objective,
                evaluated=0,
                wall_time=0.0,
            )
    if best is None:
        raise ValueError("no feasible assignment found")
    best.evaluated = evaluated
    best.wall_time = time.perf_counter() - start
    return best
