"""Differential oracles: is an incremental update observably correct?

Given an update pair (old source, new source) the battery plans a UCC
incremental compile against the deployed old binary and cross-checks it
four independent ways:

* **patch**    — the sensor-side patcher applied to the old image must
  reproduce the incremental compile's new image word-for-word, and the
  data script must rebuild the new data segment byte-for-byte (paper
  Figure 2's round trip);
* **wire**     — the code and data scripts must survive
  serialise→parse→serialise unchanged, and the packet accounting must
  agree with the real wire bytes (§2.2);
* **trace**    — the patched image's simulated device trace (LED,
  radio, timer, ADC, halt status) must match a from-scratch compile of
  the new source: update-conscious reuse must never change behaviour;
* **analysis** — every :mod:`repro.analysis` verifier pass must come
  back clean, including the eq. 18 energy invariants (the run uses the
  cycles measured for the trace oracle, so the audit covers the full
  equation).

Failures are collected, not raised: the fuzz runner treats any
non-empty failure list as a finding to shrink and persist.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..config import UpdateConfig
from ..core.compiler import compile_source
from ..core.update import UpdatePlanner
from ..diff.data_diff import apply_data, DataScript
from ..diff.edit_script import EditScript
from ..diff.patcher import PatchError, patched_words
from ..sim.devices import DeviceBoard, Timer
from ..sim.executor import run_image, traces_equal


@dataclass(frozen=True)
class OracleFailure:
    """One oracle violation for an update pair."""

    oracle: str  # "plan" | "patch" | "wire" | "trace" | "analysis"
    message: str

    def render(self) -> str:
        return f"[{self.oracle}] {self.message}"


@dataclass
class PairVerdict:
    """Everything the oracle battery measured about one pair."""

    failures: list = field(default_factory=list)
    script_bytes: int = 0
    diff_inst: int = 0
    old_cycles: int | None = None
    new_cycles: int | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return "ok"
        return "; ".join(f.render() for f in self.failures)


#: Poll-driven timer period for oracle runs — both binaries see the
#: identical logical event schedule (see repro.sim.devices.Timer).
FIRE_EVERY_POLLS = 3

#: Cycle budget per simulated run; generated programs are bounded and
#: finish well under this, so hitting it indicates a real hang.
MAX_CYCLES = 4_000_000


def _board() -> DeviceBoard:
    return DeviceBoard(timer=Timer(fire_every_polls=FIRE_EVERY_POLLS))


def check_pair(
    old_source: str,
    new_source: str,
    ra: str = "ucc",
    da: str = "ucc",
    expected_runs: float = 1000.0,
    baseline_ra: str = "gcc",
    config: UpdateConfig | None = None,
) -> PairVerdict:
    """Run every oracle over one update pair.

    ``config`` carries the full planning configuration (cp, checked
    mode, knobs); when given it wins over the loose ``ra``/``da``
    strings.  Its ``verify`` flag is forced off — the planner's own
    assertions would raise, while the oracles below re-check those
    properties and *report* instead.
    """
    cfg = (
        config
        if config is not None
        else UpdateConfig(ra=ra, da=da, expected_runs=expected_runs)
    )
    cfg = replace(cfg, verify=False)
    verdict = PairVerdict()

    def fail(oracle: str, message: str) -> None:
        verdict.failures.append(OracleFailure(oracle=oracle, message=message))

    # -- plan the incremental update -----------------------------------
    try:
        old = compile_source(old_source, register_allocator=baseline_ra)
    except Exception as error:  # a generated program must always compile
        fail("plan", f"old source failed to compile: {error}")
        return verdict
    planner = UpdatePlanner(old, config=cfg)
    try:
        result = planner.plan(new_source)
    except Exception as error:
        fail("plan", f"update planning failed: {error}")
        return verdict
    verdict.script_bytes = result.script_bytes
    verdict.diff_inst = result.diff_inst

    # -- oracle: sensor-side patch reproduces the new image ------------
    try:
        rebuilt = patched_words(old.image, result.diff.script)
        expected = result.new.image.words()
        if rebuilt != expected:
            index = next(
                (
                    i
                    for i, (a, b) in enumerate(zip(rebuilt, expected))
                    if a != b
                ),
                min(len(rebuilt), len(expected)),
            )
            fail(
                "patch",
                f"patched image diverges from sink binary at word {index} "
                f"(rebuilt {len(rebuilt)} words, expected {len(expected)})",
            )
    except PatchError as error:
        fail("patch", f"script does not apply to the old image: {error}")
    try:
        patched_data = apply_data(old.image.data, result.data_script)
        if patched_data != result.new.image.data:
            fail("patch", "data script does not rebuild the new data segment")
    except Exception as error:
        fail("patch", f"data script failed to apply: {error}")

    # -- oracle: wire round-trips and packet accounting ----------------
    blob = result.diff.script.to_bytes()
    if len(blob) != result.diff.script.size_bytes:
        fail(
            "wire",
            f"script claims {result.diff.script.size_bytes} bytes but "
            f"serialises to {len(blob)}",
        )
    try:
        reparsed = EditScript.from_bytes(blob)
        if reparsed.to_bytes() != blob:
            fail("wire", "edit script does not round-trip through bytes")
    except Exception as error:
        fail("wire", f"serialised edit script does not parse: {error}")
    data_blob = result.data_script.to_bytes()
    try:
        data_reparsed = DataScript.from_bytes(data_blob)
        if data_reparsed.to_bytes() != data_blob:
            fail("wire", "data script does not round-trip through bytes")
    except Exception as error:
        fail("wire", f"serialised data script does not parse: {error}")
    packets = result.packets
    if packets.script_bytes != result.script_bytes:
        fail(
            "wire",
            f"packetisation covers {packets.script_bytes} bytes but the "
            f"update ships {result.script_bytes}",
        )
    if packets.bytes_on_air < packets.script_bytes:
        fail("wire", "bytes_on_air smaller than the script payload")

    # -- oracle: device-trace equivalence vs a from-scratch compile ----
    try:
        scratch = compile_source(new_source, register_allocator=baseline_ra)
    except Exception as error:
        fail("trace", f"from-scratch compile of the new source failed: {error}")
        return verdict
    try:
        old_run = run_image(old.image, devices=_board(), max_cycles=MAX_CYCLES)
        incr_run = run_image(
            result.new.image, devices=_board(), max_cycles=MAX_CYCLES
        )
        scratch_run = run_image(
            scratch.image, devices=_board(), max_cycles=MAX_CYCLES
        )
    except Exception as error:
        fail("trace", f"simulation crashed: {error}")
        return verdict
    for label, run in (("incremental", incr_run), ("scratch", scratch_run)):
        if not run.halted:
            fail("trace", f"{label} binary did not halt within {MAX_CYCLES} cycles")
    divergence = traces_equal(incr_run, scratch_run)
    if divergence is not None:
        fail(
            "trace",
            "incremental and from-scratch binaries diverge: "
            + divergence.render(),
        )
    verdict.old_cycles = old_run.cycles
    verdict.new_cycles = incr_run.cycles

    # -- oracle: the full static verification battery ------------------
    from ..analysis import verify_update

    result.old_cycles = old_run.cycles
    result.new_cycles = incr_run.cycles
    try:
        report = verify_update(result, cnt=cfg.expected_runs)
    except Exception as error:
        fail("analysis", f"verification crashed: {error}")
        return verdict
    for finding in report.findings:
        fail("analysis", finding.render())
    return verdict


__all__ = ["FIRE_EVERY_POLLS", "MAX_CYCLES", "OracleFailure", "PairVerdict", "check_pair"]
