"""End-to-end update fuzzing with differential oracles.

The subsystem generates random well-typed ucc-C programs
(:mod:`.progen`), derives realistic update pairs through semantic
edits mirroring the paper's Figure 9 taxonomy (:mod:`.mutator`), and
checks every pair with a battery of differential oracles
(:mod:`.oracles`): sensor-side patch reproduction, wire round-trips,
simulator device-trace equivalence against a from-scratch compile, and
the full :mod:`repro.analysis` verification battery including the
eq. 18 energy invariants.  Failing pairs are delta-debugged to minimal
reproducers and persisted to a corpus (:mod:`.shrinker`); the
:mod:`.runner` drives deterministic campaigns for ``repro fuzz`` and
CI.
"""

from .fault_fuzz import (
    FaultFinding,
    FaultFuzzReport,
    run_fault_fuzz,
    run_versioned_fuzz,
)
from .mutator import Edit, EditNotApplicable, Mutator, apply_edits, mutate
from .oracles import OracleFailure, PairVerdict, check_pair
from .progen import GenConfig, GenProgram, ProgramGenerator, generate_program
from .runner import FuzzFinding, FuzzReport, run_fuzz
from .shrinker import FuzzCase, persist_case, shrink

__all__ = [
    "Edit",
    "EditNotApplicable",
    "FaultFinding",
    "FaultFuzzReport",
    "FuzzCase",
    "FuzzFinding",
    "FuzzReport",
    "GenConfig",
    "GenProgram",
    "Mutator",
    "OracleFailure",
    "PairVerdict",
    "ProgramGenerator",
    "apply_edits",
    "check_pair",
    "generate_program",
    "mutate",
    "persist_case",
    "run_fault_fuzz",
    "run_fuzz",
    "run_versioned_fuzz",
    "shrink",
]
