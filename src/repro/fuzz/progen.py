"""Seeded generator of well-typed ucc-C programs.

The fuzzer does not mutate source *text* — it generates a structured
program model (:class:`GenProgram`) and renders it, so the semantic
edit mutator (:mod:`repro.fuzz.mutator`) can derive realistic update
pairs and the shrinker (:mod:`repro.fuzz.shrinker`) can delete whole
functions/statements/globals without ever producing syntax errors.

Generated programs are well-typed and terminating by construction:

* every loop is a ``for`` with a constant bound and a dedicated loop
  variable that the body never reassigns;
* every array access is provably in bounds (constant index, loop
  variable whose bound is the array length, or ``expr % length``);
* every local is initialised at its declaration (an uninitialised
  local could legally read different garbage under different register
  allocations, which would poison the differential trace oracle);
* user-function calls appear only at statement level and only target
  earlier-defined functions, so the call graph is acyclic;
* ``main`` is last and ends in ``halt()``.

Division/modulo only ever use non-zero constant divisors so constant
folding cannot fault, and shifts use constant amounts 0..7.

Everything is driven by a caller-supplied :class:`random.Random`, so
the same seed reproduces the same program on any platform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

# ---------------------------------------------------------------------------
# Expression model
# ---------------------------------------------------------------------------


@dataclass
class Const:
    value: int

    def render(self) -> str:
        return str(self.value)


@dataclass
class Var:
    name: str

    def render(self) -> str:
        return self.name


@dataclass
class Index:
    """``base[index]`` with an in-bounds-by-construction index."""

    base: str
    index: "Expr"

    def render(self) -> str:
        return f"{self.base}[{self.index.render()}]"


@dataclass
class Bin:
    op: str
    left: "Expr"
    right: "Expr"

    def render(self) -> str:
        return f"({self.left.render()} {self.op} {self.right.render()})"


@dataclass
class Un:
    op: str
    operand: "Expr"

    def render(self) -> str:
        return f"({self.op}{self.operand.render()})"


@dataclass
class CallE:
    """A value-producing *builtin* call usable inside expressions.

    User-defined functions are only ever called at statement level
    (:class:`CallStmt` / assignment sources), which keeps function
    removal edits purely structural.
    """

    name: str
    args: tuple["Expr", ...] = ()

    def render(self) -> str:
        return f"{self.name}({', '.join(a.render() for a in self.args)})"


Expr = object  # union of the node classes above; kept loose for py39

#: Binary operators safe with arbitrary operands.
SAFE_BIN_OPS = ("+", "-", "*", "&", "|", "^")
CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
#: Operators with constrained right operands.
SHIFT_OPS = ("<<", ">>")
DIV_OPS = ("/", "%")

#: Value-producing device builtins usable in expressions.
VALUE_BUILTINS = ("adc_read", "timer_fired", "led_get")


# ---------------------------------------------------------------------------
# Statement model (every statement carries a stable id for edits/shrinks)
# ---------------------------------------------------------------------------


@dataclass
class DeclStmt:
    sid: int
    name: str
    ctype: str  # "u8" | "u16"
    init: Expr

    def render(self, indent: str) -> list[str]:
        return [f"{indent}{self.ctype} {self.name} = {self.init.render()};"]


@dataclass
class AssignStmt:
    sid: int
    target: Expr  # Var or Index
    value: Expr

    def render(self, indent: str) -> list[str]:
        return [f"{indent}{self.target.render()} = {self.value.render()};"]


@dataclass
class CallStmt:
    """Statement-level call: user function or void/ignored builtin."""

    sid: int
    name: str
    args: tuple[Expr, ...] = ()
    #: assign the (non-void) result to this variable, or discard
    assign_to: str | None = None

    def render(self, indent: str) -> list[str]:
        call = f"{self.name}({', '.join(a.render() for a in self.args)})"
        if self.assign_to is not None:
            return [f"{indent}{self.assign_to} = {call};"]
        return [f"{indent}{call};"]


@dataclass
class IfStmt:
    sid: int
    cond: Expr
    then_body: list = field(default_factory=list)
    else_body: list | None = None

    def render(self, indent: str) -> list[str]:
        lines = [f"{indent}if ({self.cond.render()}) {{"]
        for stmt in self.then_body:
            lines.extend(stmt.render(indent + "    "))
        if self.else_body is not None:
            lines.append(f"{indent}}} else {{")
            for stmt in self.else_body:
                lines.extend(stmt.render(indent + "    "))
        lines.append(f"{indent}}}")
        return lines


@dataclass
class ForStmt:
    """``for (var = 0; var < bound; var++)`` over a dedicated local."""

    sid: int
    var: str
    bound: int
    body: list = field(default_factory=list)

    def render(self, indent: str) -> list[str]:
        lines = [
            f"{indent}for ({self.var} = 0; {self.var} < {self.bound}; "
            f"{self.var}++) {{"
        ]
        for stmt in self.body:
            lines.extend(stmt.render(indent + "    "))
        lines.append(f"{indent}}}")
        return lines


@dataclass
class ReturnStmt:
    sid: int
    value: Expr | None = None

    def render(self, indent: str) -> list[str]:
        if self.value is None:
            return [f"{indent}return;"]
        return [f"{indent}return {self.value.render()};"]


@dataclass
class HaltStmt:
    sid: int

    def render(self, indent: str) -> list[str]:
        return [f"{indent}halt();"]


# ---------------------------------------------------------------------------
# Top-level model
# ---------------------------------------------------------------------------


@dataclass
class GlobalVar:
    name: str
    ctype: str  # "u8" | "u16"
    length: int | None = None  # array length; None = scalar
    init: object = None  # int, tuple of ints, or None
    const: bool = False

    def max_value(self) -> int:
        return 0xFF if self.ctype == "u8" else 0xFFFF

    def render(self) -> str:
        prefix = "const " if self.const else ""
        if self.length is not None:
            decl = f"{prefix}{self.ctype} {self.name}[{self.length}]"
            if self.init is not None:
                items = ", ".join(str(v) for v in self.init)
                return f"{decl} = {{{items}}};"
            return f"{decl};"
        decl = f"{prefix}{self.ctype} {self.name}"
        if self.init is not None:
            return f"{decl} = {self.init};"
        return f"{decl};"


@dataclass
class FuncDef:
    name: str
    ret: str  # "void" | "u8" | "u16"
    params: list = field(default_factory=list)  # [(name, ctype)]
    body: list = field(default_factory=list)

    def render(self) -> list[str]:
        params = ", ".join(f"{ctype} {name}" for name, ctype in self.params)
        lines = [f"{self.ret} {self.name}({params}) {{"]
        for stmt in self.body:
            lines.extend(stmt.render("    "))
        lines.append("}")
        return lines


@dataclass
class GenProgram:
    """A generated translation unit; ``funcs[-1]`` is ``main``."""

    globals: list = field(default_factory=list)  # [GlobalVar]
    funcs: list = field(default_factory=list)  # [FuncDef]
    #: next fresh statement id (monotone; never reused)
    next_sid: int = 0

    def fresh_sid(self) -> int:
        sid = self.next_sid
        self.next_sid += 1
        return sid

    def func(self, name: str) -> FuncDef | None:
        for fn in self.funcs:
            if fn.name == name:
                return fn
        return None

    def global_var(self, name: str) -> GlobalVar | None:
        for g in self.globals:
            if g.name == name:
                return g
        return None

    def render(self) -> str:
        lines = ["// generated by repro.fuzz.progen"]
        for g in self.globals:
            lines.append(g.render())
        for fn in self.funcs:
            lines.append("")
            lines.extend(fn.render())
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Statement walking helpers (shared with the mutator and shrinker)
# ---------------------------------------------------------------------------

_BODY_FIELDS = {
    IfStmt: ("then_body", "else_body"),
    ForStmt: ("body",),
}


def iter_stmts(body: list, *, nested: bool = True):
    """Yield every statement in ``body`` (depth-first, pre-order)."""
    for stmt in body:
        yield stmt
        if not nested:
            continue
        for field_name in _BODY_FIELDS.get(type(stmt), ()):
            sub = getattr(stmt, field_name)
            if sub is not None:
                yield from iter_stmts(sub)


def iter_bodies(body: list):
    """Yield every statement list reachable from ``body`` (incl. itself)."""
    yield body
    for stmt in body:
        for field_name in _BODY_FIELDS.get(type(stmt), ()):
            sub = getattr(stmt, field_name)
            if sub is not None:
                yield from iter_bodies(sub)


def find_stmt(program: GenProgram, sid: int):
    """Locate statement ``sid``: returns (func, containing_body, index)."""
    for fn in program.funcs:
        for body in iter_bodies(fn.body):
            for index, stmt in enumerate(body):
                if stmt.sid == sid:
                    return fn, body, index
    return None


def stmt_exprs(stmt) -> list:
    """The expression slots of one statement (no recursion into bodies)."""
    if isinstance(stmt, DeclStmt):
        return [stmt.init]
    if isinstance(stmt, AssignStmt):
        return [stmt.target, stmt.value]
    if isinstance(stmt, CallStmt):
        return list(stmt.args)
    if isinstance(stmt, IfStmt):
        return [stmt.cond]
    if isinstance(stmt, ReturnStmt):
        return [stmt.value] if stmt.value is not None else []
    return []


def iter_exprs(expr):
    """Yield every node of one expression tree, pre-order."""
    yield expr
    if isinstance(expr, Bin):
        yield from iter_exprs(expr.left)
        yield from iter_exprs(expr.right)
    elif isinstance(expr, Un):
        yield from iter_exprs(expr.operand)
    elif isinstance(expr, Index):
        yield from iter_exprs(expr.index)
    elif isinstance(expr, CallE):
        for arg in expr.args:
            yield from iter_exprs(arg)


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GenConfig:
    """Size knobs of one generated program."""

    max_globals: int = 5
    max_arrays: int = 2
    max_array_len: int = 8
    max_funcs: int = 3  # helper functions besides main
    max_params: int = 2
    max_stmts: int = 5  # per body
    max_depth: int = 2  # expression depth
    max_nesting: int = 2  # statement nesting (if/for)
    max_loop_bound: int = 6
    scheduler_iters: int = 24  # main's bounded event loop


class _Scope:
    """Names visible while generating one function body."""

    def __init__(self, program: GenProgram, fn: FuncDef):
        self.program = program
        self.fn = fn
        #: scalar names readable here -> ctype
        self.scalars: dict[str, str] = {}
        #: scalar names writable here (excludes consts and params)
        self.writable: list[str] = []
        #: array name -> (length, writable)
        self.arrays: dict[str, tuple[int, bool]] = {}
        #: loop variables currently in scope -> bound
        self.loops: dict[str, int] = {}
        for g in program.globals:
            if g.length is None:
                self.scalars[g.name] = g.ctype
                if not g.const:
                    self.writable.append(g.name)
            else:
                self.arrays[g.name] = (g.length, not g.const)
        for name, ctype in fn.params:
            self.scalars[name] = ctype

    def declare_local(self, name: str, ctype: str) -> None:
        self.scalars[name] = ctype
        self.writable.append(name)

    def declare_loop_var(self, name: str, ctype: str = "u16") -> None:
        """Loop counters are readable but never assignment targets —
        a generated body that reset its own counter would not
        terminate."""
        self.scalars[name] = ctype


class ProgramGenerator:
    """Generates one :class:`GenProgram` from a seeded RNG."""

    def __init__(self, rng: random.Random, config: GenConfig | None = None):
        self.rng = rng
        self.config = config or GenConfig()

    # -- expressions -----------------------------------------------------

    def gen_expr(self, scope: _Scope, depth: int | None = None):
        rng = self.rng
        depth = self.config.max_depth if depth is None else depth
        if depth <= 0 or rng.random() < 0.3:
            return self._gen_leaf(scope)
        roll = rng.random()
        if roll < 0.55:
            op = rng.choice(SAFE_BIN_OPS)
            return Bin(op, self.gen_expr(scope, depth - 1), self.gen_expr(scope, depth - 1))
        if roll < 0.70:
            op = rng.choice(CMP_OPS)
            return Bin(op, self.gen_expr(scope, depth - 1), self.gen_expr(scope, depth - 1))
        if roll < 0.80:
            op = rng.choice(SHIFT_OPS)
            return Bin(op, self.gen_expr(scope, depth - 1), Const(rng.randrange(8)))
        if roll < 0.88:
            op = rng.choice(DIV_OPS)
            return Bin(op, self.gen_expr(scope, depth - 1), Const(rng.randrange(1, 16)))
        if roll < 0.96:
            return Un(rng.choice(("-", "~", "!")), self.gen_expr(scope, depth - 1))
        return CallE(rng.choice(VALUE_BUILTINS))

    def _gen_leaf(self, scope: _Scope):
        rng = self.rng
        choices = ["const"]
        if scope.scalars:
            choices += ["scalar"] * 3
        if scope.loops:
            choices += ["loop"] * 2
        if scope.arrays:
            choices.append("array")
        kind = rng.choice(choices)
        if kind == "scalar":
            return Var(rng.choice(sorted(scope.scalars)))
        if kind == "loop":
            return Var(rng.choice(sorted(scope.loops)))
        if kind == "array":
            name = rng.choice(sorted(scope.arrays))
            length, _ = scope.arrays[name]
            return Index(name, self._gen_index(scope, length))
        return Const(rng.randrange(0, 256))

    def _gen_index(self, scope: _Scope, length: int):
        """An index expression guaranteed to land inside ``length``."""
        rng = self.rng
        fitting = [v for v, bound in scope.loops.items() if bound <= length]
        roll = rng.random()
        if fitting and roll < 0.5:
            return Var(rng.choice(sorted(fitting)))
        if roll < 0.8:
            return Const(rng.randrange(length))
        return Bin("%", self.gen_expr(scope, 1), Const(length))

    # -- statements ------------------------------------------------------

    def gen_stmt(self, program: GenProgram, scope: _Scope, nesting: int):
        rng = self.rng
        choices = ["assign"] * 3 + ["device"] * 2
        if scope.writable:
            choices += ["assign"]
        if nesting > 0:
            choices += ["if", "for"]
        callees = [
            fn
            for fn in program.funcs[: program.funcs.index(scope.fn)]
            if fn is not scope.fn
        ]
        if callees:
            choices += ["call"] * 2
        kind = rng.choice(choices)
        if kind == "assign" and (scope.writable or scope.arrays):
            return self._gen_assign(program, scope)
        if kind == "device":
            return self._gen_device(program, scope)
        if kind == "if":
            return self._gen_if(program, scope, nesting)
        if kind == "for":
            return self._gen_for(program, scope, nesting)
        if kind == "call":
            return self._gen_call(program, scope, rng.choice(callees))
        return self._gen_device(program, scope)

    def _gen_assign(self, program: GenProgram, scope: _Scope):
        rng = self.rng
        writable_arrays = [n for n, (_, w) in scope.arrays.items() if w]
        if writable_arrays and (not scope.writable or rng.random() < 0.3):
            name = rng.choice(sorted(writable_arrays))
            length, _ = scope.arrays[name]
            target = Index(name, self._gen_index(scope, length))
        elif scope.writable:
            target = Var(rng.choice(sorted(set(scope.writable))))
        else:
            return self._gen_device(program, scope)
        return AssignStmt(program.fresh_sid(), target, self.gen_expr(scope))

    def _gen_device(self, program: GenProgram, scope: _Scope):
        rng = self.rng
        if rng.random() < 0.5:
            return CallStmt(
                program.fresh_sid(), "led_set", (self.gen_expr(scope, 1),)
            )
        return CallStmt(
            program.fresh_sid(), "radio_send", (self.gen_expr(scope, 1),)
        )

    def _gen_if(self, program: GenProgram, scope: _Scope, nesting: int):
        rng = self.rng
        cond = self.gen_expr(scope)
        if rng.random() < 0.3:
            cond = CallE("timer_fired")
        then_body = self._gen_body(program, scope, nesting - 1)
        else_body = (
            self._gen_body(program, scope, nesting - 1)
            if rng.random() < 0.35
            else None
        )
        return IfStmt(program.fresh_sid(), cond, then_body, else_body)

    def _gen_for(self, program: GenProgram, scope: _Scope, nesting: int):
        rng = self.rng
        # The loop variable is a dedicated local declared at the top of
        # the function; _gen_function pre-declares i0..i(max_nesting-1).
        # Count only the active i-loops: main's scheduler loop also sits
        # in scope.loops but owns its own counter.
        var = f"i{sum(1 for name in scope.loops if name.startswith('i'))}"
        bound = rng.randrange(2, self.config.max_loop_bound + 1)
        scope.loops[var] = bound
        body = self._gen_body(program, scope, nesting - 1)
        del scope.loops[var]
        return ForStmt(program.fresh_sid(), var, bound, body)

    def _gen_call(self, program: GenProgram, scope: _Scope, callee: FuncDef):
        rng = self.rng
        args = tuple(self.gen_expr(scope, 1) for _ in callee.params)
        assign_to = None
        if callee.ret != "void" and scope.writable and rng.random() < 0.6:
            assign_to = rng.choice(sorted(set(scope.writable)))
        return CallStmt(program.fresh_sid(), callee.name, args, assign_to)

    def _gen_body(self, program: GenProgram, scope: _Scope, nesting: int):
        count = self.rng.randrange(1, self.config.max_stmts + 1)
        return [self.gen_stmt(program, scope, nesting) for _ in range(count)]

    # -- top level -------------------------------------------------------

    def _gen_globals(self, program: GenProgram) -> None:
        rng = self.rng
        n_scalars = rng.randrange(1, self.config.max_globals + 1)
        for index in range(n_scalars):
            ctype = rng.choice(("u8", "u16"))
            limit = 256 if ctype == "u8" else 65536
            program.globals.append(
                GlobalVar(
                    name=f"g{index}",
                    ctype=ctype,
                    init=rng.randrange(limit) if rng.random() < 0.8 else None,
                )
            )
        n_arrays = rng.randrange(0, self.config.max_arrays + 1)
        for index in range(n_arrays):
            length = rng.randrange(2, self.config.max_array_len + 1)
            const = rng.random() < 0.3
            init = None
            if const or rng.random() < 0.5:
                init = tuple(rng.randrange(256) for _ in range(length))
            program.globals.append(
                GlobalVar(
                    name=f"arr{index}",
                    ctype="u8",
                    length=length,
                    init=init,
                    const=const,
                )
            )

    def _gen_function(
        self, program: GenProgram, name: str, *, is_main: bool
    ) -> FuncDef:
        rng = self.rng
        if is_main:
            fn = FuncDef(name="main", ret="void")
        else:
            ret = rng.choice(("void", "u8", "u16"))
            params = [
                (f"p{i}", rng.choice(("u8", "u16")))
                for i in range(rng.randrange(0, self.config.max_params + 1))
            ]
            fn = FuncDef(name=name, ret=ret, params=params)
        program.funcs.append(fn)
        scope = _Scope(program, fn)
        # A couple of initialised scalar locals plus the loop variables.
        for index in range(rng.randrange(0, 3)):
            lname = f"t{index}"
            ctype = rng.choice(("u8", "u16"))
            fn.body.append(
                DeclStmt(
                    program.fresh_sid(),
                    lname,
                    ctype,
                    Const(rng.randrange(256)),
                )
            )
            scope.declare_local(lname, ctype)
        for index in range(self.config.max_nesting):
            lname = f"i{index}"
            fn.body.append(
                DeclStmt(program.fresh_sid(), lname, "u16", Const(0))
            )
            scope.declare_loop_var(lname)
        fn.body.extend(self._gen_body(program, scope, self.config.max_nesting))
        if is_main:
            # The TinyOS-style bounded scheduler loop, then halt.
            var = "sched"
            fn.body.append(DeclStmt(program.fresh_sid(), var, "u16", Const(0)))
            scope.declare_loop_var(var)
            scope.loops[var] = self.config.scheduler_iters
            loop_body = self._gen_body(program, scope, 1)
            del scope.loops[var]
            fn.body.append(
                ForStmt(
                    program.fresh_sid(),
                    var,
                    self.config.scheduler_iters,
                    loop_body,
                )
            )
            fn.body.append(HaltStmt(program.fresh_sid()))
        elif fn.ret != "void":
            fn.body.append(
                ReturnStmt(program.fresh_sid(), self.gen_expr(scope))
            )
        return fn

    def generate(self) -> GenProgram:
        program = GenProgram()
        self._gen_globals(program)
        n_helpers = self.rng.randrange(1, self.config.max_funcs + 1)
        for index in range(n_helpers):
            self._gen_function(program, f"fn{index}", is_main=False)
        self._gen_function(program, "main", is_main=True)
        return program


def generate_program(
    seed_rng: random.Random, config: GenConfig | None = None
) -> GenProgram:
    """One-call generation with validation.

    The rendered program is run through the real front end; a semantic
    rejection here is a generator bug, so it raises immediately rather
    than being silently skipped (the fuzzer's coverage claim depends on
    every generated program actually compiling).
    """
    program = ProgramGenerator(seed_rng, config).generate()
    validate(program)
    return program


def validate(program: GenProgram) -> None:
    """Run the real front end over the rendered model (raises on error)."""
    from ..lang import frontend

    frontend(program.render(), "<fuzz>")


def clone(program: GenProgram) -> GenProgram:
    """Deep copy (edits and shrinks never mutate the original)."""
    import copy

    return copy.deepcopy(program)


__all__ = [
    "AssignStmt",
    "Bin",
    "CallE",
    "CallStmt",
    "CMP_OPS",
    "Const",
    "DeclStmt",
    "ForStmt",
    "FuncDef",
    "GenConfig",
    "GenProgram",
    "GlobalVar",
    "HaltStmt",
    "IfStmt",
    "Index",
    "ProgramGenerator",
    "ReturnStmt",
    "SAFE_BIN_OPS",
    "Un",
    "Var",
    "clone",
    "find_stmt",
    "generate_program",
    "iter_bodies",
    "iter_exprs",
    "iter_stmts",
    "stmt_exprs",
    "validate",
    "replace",
]
