"""Fault-plan fuzzing: the campaign controller under random adversity.

A second fuzz dimension alongside the update-pair battery in
:mod:`.runner`: instead of mutating *programs*, each iteration mutates
the *deployment* — a random topology, link loss, and a randomly drawn
:class:`~repro.net.faults.FaultPlan` (crashes, reboots, partitions,
corruption, duplicates) — and drives a real compiled update through
:func:`~repro.net.campaign.run_campaign`.

:func:`run_versioned_fuzz` adds a third dimension on top: a random
*release history* (a generated program mutated into a short chain of
versions) and a **version-heterogeneous fleet** — every sensor node
starts at a randomly drawn release — planned through the version
graph (:mod:`repro.versioning`) and driven to convergence cohort by
cohort, optionally over the LT-coded transfer.  The oracle battery is
the versioned analogue of convergence-or-quarantine: every cohort
terminates, quarantined nodes stay within their cohort, every planned
path rebuilds the byte-identical target image (the replay-identity
oracle), a fault-free connected fleet must fully converge, and the
identical seed replays to a byte-identical report.

The oracle is **convergence-or-quarantine**: whatever the faults, the
campaign must terminate with a structured report in which every
non-quarantined node runs the fully verified new version, every
quarantined node still runs the resident golden version (never a torn
image), replaying the identical seed reproduces the byte-identical
report, and both final images behave like their from-scratch compiles
under the simulator's device-trace comparison (the crash-consistency
differential oracle).

Program pairs are expensive (compile + plan + three simulator runs) and
campaigns are cheap, so one pair is shared by :data:`PAIR_EVERY`
consecutive iterations — the sweep spends its time where the variance
is, in the fault space.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import random
from dataclasses import dataclass, field

from ..config import UpdateConfig
from ..core.compiler import compile_source
from ..core.update import UpdatePlanner
from ..diff.patcher import patched_words
from ..net.campaign import CampaignReport, run_campaign
from ..net.faults import FaultPlan, generate_fault_plan, generate_power_traces
from ..net.profiles import DeviceProfile, get_profile
from ..net.topology import Topology, grid, line, random_geometric
from ..obs import metrics, trace
from .oracles import MAX_CYCLES, _board

#: Iterations that share one compiled update pair (the fault space is
#: where the variance is; the program pair just has to be real).
PAIR_EVERY = 10

#: Campaign round budget per fuzz iteration.
FUZZ_MAX_ROUNDS = 120

#: Releases per generated version history in the versioned sweep.
VERSIONED_RELEASES = 4


@dataclass
class FaultFinding:
    """One campaign that violated the convergence-or-quarantine oracle."""

    iteration: int
    plan: str
    topology: str
    messages: list = field(default_factory=list)

    def render(self) -> str:
        what = "; ".join(self.messages)
        return (
            f"iteration {self.iteration} [{self.topology}; {self.plan}]: {what}"
        )


@dataclass
class FaultFuzzReport:
    """Outcome of one fault-plan sweep."""

    seed: int
    iterations: int
    findings: list = field(default_factory=list)
    converged: int = 0
    partial: int = 0
    quarantined_total: int = 0
    crashes_injected: int = 0
    partitions_injected: int = 0
    digest: str = ""
    profile: str | None = None
    power_traces_injected: int = 0
    brownouts_observed: int = 0
    resumed_applies_observed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"fault fuzz seed={self.seed} iterations={self.iterations} "
            f"findings={len(self.findings)}",
            f"digest   : {self.digest}",
            f"outcomes : {self.converged} converged, {self.partial} partial "
            f"({self.quarantined_total} nodes quarantined)",
            f"injected : {self.crashes_injected} crashes, "
            f"{self.partitions_injected} partitions",
        ]
        if self.profile is not None:
            lines.append(
                f"profile  : {self.profile} — "
                f"{self.power_traces_injected} power traces injected, "
                f"{self.brownouts_observed} brownouts, "
                f"{self.resumed_applies_observed} resumed applies"
            )
        for finding in self.findings:
            lines.append("FAIL " + finding.render())
        return "\n".join(lines)


def _topology(rng: random.Random) -> tuple[str, Topology]:
    """Draw a deployment shape; deterministic in the RNG stream."""
    pick = rng.randrange(4)
    if pick == 0:
        return "grid3x3", grid(3, 3)
    if pick == 1:
        return "line6", line(6)
    if pick == 2:
        return "grid4x3", grid(4, 3)
    seed = rng.randrange(1 << 16)
    return f"geo10:{seed}", random_geometric(10, radio_range=0.45, seed=seed)


@dataclass
class _Pair:
    """One compiled update pair shared across consecutive iterations."""

    blob: bytes
    payload: int
    overhead: int
    sim_failures: list


def _build_pair(rng: random.Random, config: UpdateConfig) -> _Pair:
    """Compile a real update pair and run the crash-consistency
    differential oracle: the golden image and the patched image must
    both behave like their from-scratch compiles in the simulator —
    the two (and only two) binaries any campaign node may boot."""
    from ..sim.executor import run_image, traces_equal
    from .mutator import mutate
    from .progen import generate_program

    program = generate_program(rng)
    mutated, _edits = mutate(program, rng, rng.randrange(1, 3))
    old = compile_source(program.render(), register_allocator="gcc")
    planner = UpdatePlanner(old, config=config)
    result = planner.plan(mutated.render())
    blob = result.diff.script.to_bytes() + result.data_script.to_bytes()

    failures: list = []
    rebuilt = patched_words(old.image, result.diff.script)
    if rebuilt != result.new.image.words():
        failures.append("patched image diverges from the sink binary")
    scratch = compile_source(mutated.render(), register_allocator="gcc")
    golden_run = run_image(old.image, devices=_board(), max_cycles=MAX_CYCLES)
    new_run = run_image(
        result.new.image, devices=_board(), max_cycles=MAX_CYCLES
    )
    scratch_run = run_image(
        scratch.image, devices=_board(), max_cycles=MAX_CYCLES
    )
    if not golden_run.halted:
        failures.append("golden image did not halt in the simulator")
    if not new_run.halted:
        failures.append("patched image did not halt in the simulator")
    divergence = traces_equal(new_run, scratch_run)
    if divergence is not None:
        failures.append(
            "patched image diverges from the from-scratch compile: "
            + divergence.render()
        )
    return _Pair(
        blob=blob,
        payload=result.packets.payload_per_packet,
        overhead=result.packets.overhead_per_packet,
        sim_failures=failures,
    )


def _check_report(
    report: CampaignReport,
    replay: CampaignReport,
    plan: FaultPlan,
    profile: DeviceProfile | None = None,
) -> list:
    """The convergence-or-quarantine oracle over one campaign run.

    With an active device ``profile`` the golden-image invariant is the
    same check sharpened: under any power trace every node must end
    converged, resuming (quarantined at the golden version, checkpoint
    intact), or quarantined — never on a torn image — and the airtime
    budget is enforced in the kernel, so the violation counter must be
    pinned at zero.
    """
    messages = []
    allowed = ("converged", "partial")
    if profile is not None and profile.is_airtime_limited:
        allowed = ("converged", "partial", "stalled-budget")
    if report.outcome not in allowed:
        messages.append(f"unknown outcome {report.outcome!r}")
    stats = report.profile_stats
    if profile is not None and not profile.is_neutral:
        if stats is None:
            messages.append("profile campaign returned no profile stats")
        elif stats["airtime_violations"]:
            messages.append(
                f"{stats['airtime_violations']} airtime violations under a "
                "kernel-enforced duty-cycle budget"
            )
    if report.converged and report.quarantined:
        messages.append(
            f"converged outcome but quarantined nodes {report.quarantined}"
        )
    if not report.converged and not report.quarantined:
        messages.append("partial outcome but no quarantined nodes")
    quarantined = set(report.quarantined)
    for node, version in sorted(report.node_versions.items()):
        if node == 0:
            continue
        if node in quarantined and version != report.old_version:
            messages.append(
                f"quarantined node {node} reports v{version}, not the "
                f"golden v{report.old_version} — possible torn image"
            )
        if node not in quarantined and version != report.new_version:
            messages.append(
                f"converged node {node} reports v{version}, not "
                f"v{report.new_version}"
            )
    if not set(report.unreachable) <= quarantined:
        messages.append(
            f"unreachable nodes {report.unreachable} not all quarantined"
        )
    if plan.is_empty and not report.unreachable and report.outcome != "converged":
        messages.append("fault-free campaign over a connected fleet stalled")
    if any(ledger.total_j < 0.0 for ledger in report.ledgers.values()):
        messages.append("negative energy ledger")
    if report.to_json() != replay.to_json():
        messages.append(
            "replay with the identical seed and plan produced a different "
            f"report ({report.digest()[:12]} vs {replay.digest()[:12]})"
        )
    return messages


def run_fault_fuzz(
    seed: int = 0,
    iters: int = 50,
    intensity: float = 1.0,
    update_config: UpdateConfig | None = None,
    on_progress=None,
    profile: "DeviceProfile | str | None" = None,
) -> FaultFuzzReport:
    """Run one deterministic fault-plan sweep.

    Every iteration draws its own RNG from ``(seed, iteration)`` so any
    single case replays in isolation, exactly like :func:`.runner.run_fuzz`.

    ``profile`` pins a :class:`~repro.net.profiles.DeviceProfile` (or
    its name) on every campaign.  An energy-limited profile turns the
    sweep into the **intermittent-power oracle**: each iteration also
    draws seeded power traces (scripted brownout thresholds and harvest
    scales) that fire between individual flash page writes, and the
    oracle asserts the golden-image invariant — every node ends
    converged, resuming, or quarantined, never on a torn image — plus
    replay identity and a zero airtime-violation counter.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    config = (
        update_config if update_config is not None else UpdateConfig()
    )
    report = FaultFuzzReport(
        seed=seed,
        iterations=iters,
        profile=None if profile is None else profile.name,
    )
    hasher = hashlib.sha256()
    pair: _Pair | None = None
    for iteration in range(iters):
        with trace.span("fuzz.fault.iteration", iteration=iteration) as span:
            rng = random.Random(f"repro-fault-fuzz:{seed}:{iteration}")
            if pair is None or iteration % PAIR_EVERY == 0:
                pair_rng = random.Random(
                    f"repro-fault-fuzz-pair:{seed}:{iteration // PAIR_EVERY}"
                )
                pair = _build_pair(pair_rng, config)
            shape, topology = _topology(rng)
            plan = generate_fault_plan(
                rng,
                topology.node_count,
                max_rounds=FUZZ_MAX_ROUNDS,
                intensity=intensity,
            )
            if profile is not None and profile.is_energy_limited:
                # Scale the scripted cuts to the blob's flash-write
                # cost so they land *between* individual page writes
                # of the apply, not past the campaign's total spend.
                scale_j = None
                if profile.is_paged:
                    scale_j = (
                        profile.pages_for(len(pair.blob))
                        * profile.flash_write_j_per_page
                    )
                plan = dataclasses.replace(
                    plan,
                    power_traces=generate_power_traces(
                        rng,
                        topology.node_count,
                        storage_j=profile.storage_j,
                        intensity=intensity,
                        scale_j=scale_j,
                    ),
                )
            loss = round(rng.uniform(0.0, 0.25), 3)
            link_seed = rng.randrange(1 << 31)

            # partial over the loop-carried values rather than a
            # closure: a closure would capture the *variables* (ruff
            # B023) and re-read whatever the loop last assigned.
            campaign = functools.partial(
                run_campaign,
                topology,
                pair.blob,
                plan,
                loss=loss,
                seed=link_seed,
                max_rounds=FUZZ_MAX_ROUNDS,
                payload_per_packet=pair.payload,
                overhead_per_packet=pair.overhead,
                profile=profile,
            )

            outcome = campaign()
            replay = campaign()
            messages = list(pair.sim_failures)
            messages += _check_report(outcome, replay, plan, profile=profile)
            span.set(ok=not messages, outcome=outcome.outcome)
        metrics.counter("fuzz.fault.campaigns").inc()
        if outcome.converged:
            report.converged += 1
        else:
            report.partial += 1
        report.quarantined_total += len(outcome.quarantined)
        report.crashes_injected += len(plan.crashes)
        report.partitions_injected += len(plan.partitions)
        report.power_traces_injected += len(plan.power_traces)
        if outcome.profile_stats is not None:
            report.brownouts_observed += outcome.profile_stats["brownouts"]
            report.resumed_applies_observed += outcome.profile_stats[
                "resumed_applies"
            ]
        hasher.update(plan.digest().encode())
        hasher.update(outcome.digest().encode())
        if messages:
            metrics.counter("fuzz.fault.findings").inc()
            report.findings.append(
                FaultFinding(
                    iteration=iteration,
                    plan=plan.describe(),
                    topology=shape,
                    messages=messages,
                )
            )
        if on_progress is not None:
            on_progress(iteration, outcome)
    report.digest = hasher.hexdigest()
    return report


def _build_version_history(rng: random.Random, config: UpdateConfig):
    """A generated release chain compiled into a version graph.

    The base program comes from the fuzzer's generator; each later
    release is a semantic mutation of its predecessor, so the chain's
    step edges are real update-conscious plans over real edits.
    """
    from ..versioning import build_version_graph
    from .mutator import mutate
    from .progen import generate_program

    program = generate_program(rng)
    releases = {1: program.render()}
    current = program
    for label in range(2, VERSIONED_RELEASES + 1):
        current, _edits = mutate(current, rng, rng.randrange(1, 3))
        releases[label] = current.render()
    return build_version_graph(releases, update_config=config)


def _check_versioned_report(report, replay, plan: FaultPlan, plans) -> list:
    """Convergence-or-quarantine, versioned edition."""
    messages = []
    if report.outcome not in ("converged", "partial"):
        messages.append(f"unknown outcome {report.outcome!r}")
    if not report.replay_identical:
        messages.append(
            "replay-identity violated: a cohort's path rebuilt an image "
            f"other than the canonical v{report.target_version}"
        )
    for cohort in report.cohorts:
        if cohort.outcome not in ("converged", "partial"):
            messages.append(
                f"cohort v{cohort.plan.from_version}: unknown outcome "
                f"{cohort.outcome!r}"
            )
        stray = set(cohort.quarantined) - set(cohort.plan.nodes)
        if stray:
            messages.append(
                f"cohort v{cohort.plan.from_version}: quarantined nodes "
                f"{sorted(stray)} outside the cohort"
            )
        if cohort.energy_j < 0.0:
            messages.append(
                f"cohort v{cohort.plan.from_version}: negative wave energy"
            )
    if plan.is_empty and not report.converged:
        messages.append(
            "fault-free versioned campaign over a connected fleet stalled"
        )
    if report.to_json() != replay.to_json():
        messages.append(
            "replay with the identical seed and plans produced a different "
            f"report ({report.digest()[:12]} vs {replay.digest()[:12]})"
        )
    if len(report.cohorts) != len(plans):
        messages.append(
            f"{len(plans)} cohort plans but {len(report.cohorts)} waves ran"
        )
    return messages


def run_versioned_fuzz(
    seed: int = 0,
    iters: int = 50,
    intensity: float = 1.0,
    update_config: UpdateConfig | None = None,
    on_progress=None,
) -> FaultFuzzReport:
    """Fuzz version-heterogeneous fleets through the versioned campaign.

    Iterations share one generated release history per
    :data:`PAIR_EVERY` draws (graphs are expensive, fleets are cheap);
    each iteration then draws a topology, a per-node version
    assignment, a fault plan, link loss, and — one draw in three — the
    LT-coded transfer, and checks the whole run against the versioned
    convergence-or-quarantine oracle.
    """
    from ..net.coding import CodedTransferParams
    from ..versioning import plan_cohorts, run_versioned_campaign

    config = (
        update_config if update_config is not None else UpdateConfig()
    )
    report = FaultFuzzReport(seed=seed, iterations=iters)
    hasher = hashlib.sha256()
    graph = None
    for iteration in range(iters):
        with trace.span("fuzz.versioned.iteration", iteration=iteration) as span:
            rng = random.Random(f"repro-versioned-fuzz:{seed}:{iteration}")
            if graph is None or iteration % PAIR_EVERY == 0:
                history_rng = random.Random(
                    f"repro-versioned-fuzz-history:{seed}:"
                    f"{iteration // PAIR_EVERY}"
                )
                graph = _build_version_history(history_rng, config)
            shape, topology = _topology(rng)
            versions = graph.versions
            fleet = {0: graph.target}
            for node in range(1, topology.node_count):
                fleet[node] = versions[rng.randrange(len(versions))]
            plans = plan_cohorts(graph, fleet)
            plan = generate_fault_plan(
                rng,
                topology.node_count,
                max_rounds=FUZZ_MAX_ROUNDS,
                intensity=intensity,
            )
            loss = round(rng.uniform(0.0, 0.25), 3)
            link_seed = rng.randrange(1 << 31)
            coding = (
                CodedTransferParams(burst=8)
                if rng.randrange(3) == 0
                else None
            )

            campaign = functools.partial(
                run_versioned_campaign,
                graph,
                plans,
                topology,
                loss=loss,
                seed=link_seed,
                coding=coding,
                fault_plan=plan,
                max_rounds=FUZZ_MAX_ROUNDS,
            )
            outcome = campaign()
            replay = campaign()
            messages = _check_versioned_report(outcome, replay, plan, plans)
            span.set(ok=not messages, outcome=outcome.outcome, cohorts=len(plans))
        metrics.counter("fuzz.versioned.campaigns").inc()
        if outcome.converged:
            report.converged += 1
        else:
            report.partial += 1
        report.quarantined_total += sum(
            len(c.quarantined) for c in outcome.cohorts
        )
        report.crashes_injected += len(plan.crashes)
        report.partitions_injected += len(plan.partitions)
        hasher.update(plan.digest().encode())
        hasher.update(outcome.digest().encode())
        if messages:
            metrics.counter("fuzz.versioned.findings").inc()
            report.findings.append(
                FaultFinding(
                    iteration=iteration,
                    plan=plan.describe(),
                    topology=shape,
                    messages=messages,
                )
            )
        if on_progress is not None:
            on_progress(iteration, outcome)
    report.digest = hasher.hexdigest()
    return report


__all__ = [
    "FUZZ_MAX_ROUNDS",
    "FaultFinding",
    "FaultFuzzReport",
    "PAIR_EVERY",
    "VERSIONED_RELEASES",
    "run_fault_fuzz",
    "run_versioned_fuzz",
]
