"""Delta-debugging shrinker: reduce a failing edit to a minimal repro.

A fuzz finding is a pair ``(base program, edit list)`` whose rendered
sources fail at least one oracle.  The shrinker minimises both halves
while preserving failure:

1. **edit reduction** — greedily drop edits one at a time (for the
   short edit lists the fuzzer produces this is ddmin's fixpoint);
2. **program reduction** — repeatedly try structural deletions on the
   *base* program (drop a statement, a whole function, or a global,
   folding uses the same way the corresponding mutator edits do) and
   re-apply the surviving edits.  A reduction is kept only when the
   reduced pair still compiles and still fails.

Because edits address their targets by stable identity (statement ids,
names), re-application after a deletion either works or raises
:class:`~repro.fuzz.mutator.EditNotApplicable`, which simply rejects
that reduction.

Minimal reproducers are persisted to a corpus directory as rendered
``old.c``/``new.c`` plus a ``meta.json`` describing the seed, the edit
list, and the oracle failures — enough to replay the case without the
fuzzer.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from ..lang.errors import CompileError
from .mutator import EditNotApplicable, RemoveFunction, RemoveGlobal, apply_edits
from .progen import GenProgram, clone, iter_bodies, validate


@dataclass
class FuzzCase:
    """One failing finding, before or after shrinking."""

    program: GenProgram
    edits: list
    seed: int = 0
    iteration: int = 0
    failures: list = field(default_factory=list)

    def sources(self) -> tuple[str, str]:
        """Rendered (old, new) sources of the pair."""
        old_source = self.program.render()
        new_source = apply_edits(self.program, self.edits).render()
        return old_source, new_source

    def digest(self) -> str:
        old_source, new_source = self.sources()
        payload = (old_source + "\x00" + new_source).encode()
        return hashlib.sha256(payload).hexdigest()[:12]


def _pair_is_valid(program: GenProgram, edits: list) -> bool:
    """Both halves of the reduced pair must still compile."""
    try:
        validate(program)
        validate(apply_edits(program, edits))
    except (EditNotApplicable, CompileError):
        return False
    return True


def _stmt_count(program: GenProgram) -> int:
    from .progen import iter_stmts

    return sum(1 for fn in program.funcs for _ in iter_stmts(fn.body))


def _program_reductions(program: GenProgram):
    """Candidate structural deletions, coarsest first.

    Yields ``(label, reduced_program)``; each candidate is built on a
    fresh clone so rejected reductions leave no trace.
    """
    # whole functions (never main)
    for fn in program.funcs[:-1]:
        reduced = clone(program)
        try:
            RemoveFunction(name=fn.name).apply(reduced)
        except EditNotApplicable:  # pragma: no cover - main is excluded
            continue
        yield f"drop function {fn.name}", reduced
    # whole globals
    for gvar in program.globals:
        reduced = clone(program)
        try:
            RemoveGlobal(name=gvar.name).apply(reduced)
        except EditNotApplicable:  # pragma: no cover
            continue
        yield f"drop global {gvar.name}", reduced
    # individual statements (every nesting level)
    sids = [
        stmt.sid
        for fn in program.funcs
        for body in iter_bodies(fn.body)
        for stmt in body
    ]
    for sid in sids:
        reduced = clone(program)
        for fn in reduced.funcs:
            for body in iter_bodies(fn.body):
                for index, stmt in enumerate(body):
                    if stmt.sid == sid:
                        del body[index]
                        break
        yield f"drop stmt #{sid}", reduced


def shrink(case: FuzzCase, still_fails, max_rounds: int = 12) -> FuzzCase:
    """Minimise ``case`` under the ``still_fails(program, edits) -> bool``
    predicate (which must re-run the oracles on the rendered pair).

    The predicate is only consulted on pairs that compile; everything
    else is rejected outright.
    """

    def check(program: GenProgram, edits: list) -> bool:
        return _pair_is_valid(program, edits) and still_fails(program, edits)

    program, edits = case.program, list(case.edits)

    # 1. drop edits (greedy one-at-a-time to fixpoint; lists are short)
    changed = True
    while changed and len(edits) > 1:
        changed = False
        for index in range(len(edits)):
            candidate = edits[:index] + edits[index + 1 :]
            if check(program, candidate):
                edits = candidate
                changed = True
                break

    # 2. structural program reductions to fixpoint
    for _ in range(max_rounds):
        for label, reduced in _program_reductions(program):
            if check(reduced, edits):
                program = reduced
                break
        else:
            break

    return FuzzCase(
        program=program,
        edits=edits,
        seed=case.seed,
        iteration=case.iteration,
        failures=list(case.failures),
    )


def persist_case(corpus_dir, case: FuzzCase) -> Path:
    """Write a reproducer directory; returns its path."""
    corpus = Path(corpus_dir)
    case_dir = corpus / f"case-{case.digest()}"
    case_dir.mkdir(parents=True, exist_ok=True)
    old_source, new_source = case.sources()
    (case_dir / "old.c").write_text(old_source, encoding="utf-8")
    (case_dir / "new.c").write_text(new_source, encoding="utf-8")
    meta = {
        "seed": case.seed,
        "iteration": case.iteration,
        "edits": [edit.describe() for edit in case.edits],
        "failures": [f.render() for f in case.failures],
        "statements": _stmt_count(case.program),
        "replay": "python -m repro update old.c new.c  # or: repro verify old.c new.c",
    }
    (case_dir / "meta.json").write_text(
        json.dumps(meta, indent=2) + "\n", encoding="utf-8"
    )
    return case_dir


__all__ = ["FuzzCase", "persist_case", "shrink"]
