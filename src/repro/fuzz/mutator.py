"""Semantic edit mutator: derive realistic update pairs from a program.

Edits mirror the paper's Figure 9 update taxonomy:

* small  — constant tweaks, operator swaps, loop-bound changes
  (cases 1-5);
* medium — statement insertion/deletion, new globals used in new
  statements, new parameters, new functions, removed globals/functions
  (cases 6-11);
* data   — global reorderings and renamings (cases D1/D2).

Every edit is a small dataclass addressing its target by *stable
identity* (function name, global name, statement id) rather than by
position, so the shrinker can delete unrelated parts of the base
program and re-apply the surviving edits: an edit whose anchor is gone
raises :class:`EditNotApplicable` and the reduction is rejected.

:func:`mutate` composes 1..N edits, validating the rendered program
through the real front end after each one — an edit that produces an
ill-typed program is discarded and another is drawn, so every emitted
update pair compiles by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .progen import (
    AssignStmt,
    Bin,
    CallE,
    CallStmt,
    CMP_OPS,
    Const,
    DeclStmt,
    ForStmt,
    FuncDef,
    GenProgram,
    GlobalVar,
    HaltStmt,
    IfStmt,
    Index,
    ReturnStmt,
    SAFE_BIN_OPS,
    Un,
    Var,
    clone,
    find_stmt,
    iter_bodies,
    iter_stmts,
    stmt_exprs,
)
from ..lang.errors import CompileError


class EditNotApplicable(Exception):
    """The edit's anchor no longer exists in the (shrunk) program."""


# ---------------------------------------------------------------------------
# Expression rewriting helpers
# ---------------------------------------------------------------------------


def _rewrite_expr(expr, fn):
    """Bottom-up rewrite of one expression tree via ``fn(node) -> node``."""
    if isinstance(expr, Bin):
        expr = Bin(expr.op, _rewrite_expr(expr.left, fn), _rewrite_expr(expr.right, fn))
    elif isinstance(expr, Un):
        expr = Un(expr.op, _rewrite_expr(expr.operand, fn))
    elif isinstance(expr, Index):
        expr = Index(expr.base, _rewrite_expr(expr.index, fn))
    elif isinstance(expr, CallE):
        expr = CallE(expr.name, tuple(_rewrite_expr(a, fn) for a in expr.args))
    return fn(expr)


def _rewrite_stmt_exprs(stmt, fn) -> None:
    """Rewrite the expression slots of ``stmt`` in place (no recursion
    into nested statement bodies)."""
    if isinstance(stmt, DeclStmt):
        stmt.init = _rewrite_expr(stmt.init, fn)
    elif isinstance(stmt, AssignStmt):
        stmt.target = _rewrite_expr(stmt.target, fn)
        stmt.value = _rewrite_expr(stmt.value, fn)
    elif isinstance(stmt, CallStmt):
        stmt.args = tuple(_rewrite_expr(a, fn) for a in stmt.args)
    elif isinstance(stmt, IfStmt):
        stmt.cond = _rewrite_expr(stmt.cond, fn)
    elif isinstance(stmt, ReturnStmt) and stmt.value is not None:
        stmt.value = _rewrite_expr(stmt.value, fn)


def _rewrite_program_exprs(program: GenProgram, fn) -> None:
    for func in program.funcs:
        for stmt in iter_stmts(func.body):
            _rewrite_stmt_exprs(stmt, fn)


#: Operators whose right operand must not be tweaked: divisors (a 0
#: would fault constant folding) and shift amounts / modulus guards
#: (the generator relies on ``% length`` for array bounds).
_CONSTRAINED_RHS_OPS = ("%", "/", "<<", ">>")


def _stmt_consts(stmt) -> list[Const]:
    """The *freely tweakable* Const nodes of one statement, in order.

    Constants inside array-index subtrees, divisors, moduli, and shift
    amounts are excluded: changing those could break the generator's
    in-bounds / non-zero-divisor guarantees, and an out-of-bounds
    access behaves differently under different data layouts — exactly
    the false positive the differential oracle must never see.
    """
    out: list[Const] = []

    def walk(expr, constrained: bool):
        if isinstance(expr, Const):
            if not constrained:
                out.append(expr)
        elif isinstance(expr, Bin):
            walk(expr.left, constrained)
            walk(
                expr.right,
                constrained or expr.op in _CONSTRAINED_RHS_OPS,
            )
        elif isinstance(expr, Un):
            walk(expr.operand, constrained)
        elif isinstance(expr, Index):
            walk(expr.index, True)
        elif isinstance(expr, CallE):
            for arg in expr.args:
                walk(arg, constrained)

    for expr in stmt_exprs(stmt):
        walk(expr, False)
    return out


def _stmt_bins(stmt) -> list[Bin]:
    out: list[Bin] = []

    def walk(expr):
        if isinstance(expr, Bin):
            out.append(expr)
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, Un):
            walk(expr.operand)
        elif isinstance(expr, Index):
            walk(expr.index)
        elif isinstance(expr, CallE):
            for arg in expr.args:
                walk(arg)

    for expr in stmt_exprs(stmt):
        walk(expr)
    return out


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise EditNotApplicable(what)


def _find_stmt(program: GenProgram, sid: int):
    located = find_stmt(program, sid)
    _require(located is not None, f"statement {sid} is gone")
    return located


def _insert(body: list, after_sid: int | None, stmt) -> None:
    if after_sid is None:
        body.insert(0, stmt)
        return
    for index, existing in enumerate(body):
        if existing.sid == after_sid:
            body.insert(index + 1, stmt)
            return
    raise EditNotApplicable(f"anchor statement {after_sid} is gone")


# ---------------------------------------------------------------------------
# The edit taxonomy
# ---------------------------------------------------------------------------


@dataclass
class Edit:
    """Base class: one semantic edit, applied in place to a clone."""

    kind = "edit"

    def apply(self, program: GenProgram) -> None:  # pragma: no cover
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.kind}"


@dataclass
class TweakGlobalInit(Edit):
    """Case 1/2-style constant change in a global initialiser."""

    name: str
    value: int
    element: int | None = None
    kind = "const_tweak"

    def apply(self, program: GenProgram) -> None:
        gvar = program.global_var(self.name)
        _require(gvar is not None, f"global {self.name} is gone")
        if self.element is None:
            _require(gvar.length is None, f"{self.name} became an array")
            gvar.init = self.value
        else:
            _require(
                gvar.length is not None and gvar.init is not None
                and self.element < len(gvar.init),
                f"{self.name}[{self.element}] is gone",
            )
            items = list(gvar.init)
            items[self.element] = self.value
            gvar.init = tuple(items)

    def describe(self) -> str:
        at = f"[{self.element}]" if self.element is not None else ""
        return f"const_tweak {self.name}{at} = {self.value}"


@dataclass
class TweakConst(Edit):
    """Case 3-style instruction change: a literal inside a statement."""

    sid: int
    occurrence: int
    value: int
    kind = "const_tweak"

    def apply(self, program: GenProgram) -> None:
        _, body, index = _find_stmt(program, self.sid)
        consts = _stmt_consts(body[index])
        _require(self.occurrence < len(consts), "constant slot is gone")
        consts[self.occurrence].value = self.value

    def describe(self) -> str:
        return f"const_tweak stmt#{self.sid}.{self.occurrence} = {self.value}"


@dataclass
class SwapBinOp(Edit):
    """Case 3/5-style instruction change: replace one operator."""

    sid: int
    occurrence: int
    new_op: str
    kind = "op_swap"

    def apply(self, program: GenProgram) -> None:
        _, body, index = _find_stmt(program, self.sid)
        bins = [
            b
            for b in _stmt_bins(body[index])
            if b.op in SAFE_BIN_OPS or b.op in CMP_OPS
        ]
        _require(self.occurrence < len(bins), "operator slot is gone")
        target = bins[self.occurrence]
        same_family = (
            target.op in SAFE_BIN_OPS and self.new_op in SAFE_BIN_OPS
        ) or (target.op in CMP_OPS and self.new_op in CMP_OPS)
        _require(same_family, "operator family changed")
        target.op = self.new_op

    def describe(self) -> str:
        return f"op_swap stmt#{self.sid}.{self.occurrence} -> {self.new_op}"


@dataclass
class TweakLoopBound(Edit):
    """Control-flow change: shrink a loop's constant trip count.

    Only decreases are generated — an increased bound could push a
    loop-variable array index out of range.
    """

    sid: int
    bound: int
    kind = "loop_bound"

    def apply(self, program: GenProgram) -> None:
        _, body, index = _find_stmt(program, self.sid)
        stmt = body[index]
        _require(isinstance(stmt, ForStmt), "loop is gone")
        _require(1 <= self.bound <= stmt.bound, "bound would grow")
        stmt.bound = self.bound

    def describe(self) -> str:
        return f"loop_bound stmt#{self.sid} -> {self.bound}"


@dataclass
class InsertStmt(Edit):
    """Case 6/10-style change: a new statement in an existing body."""

    func: str
    after_sid: int | None
    stmt: object
    kind = "insert_stmt"

    def apply(self, program: GenProgram) -> None:
        fn = program.func(self.func)
        _require(fn is not None, f"function {self.func} is gone")
        callee = _callee_of(self.stmt)
        if callee is not None and callee not in _BUILTIN_STMT_CALLS:
            names = [f.name for f in program.funcs]
            _require(
                callee in names and names.index(callee) < names.index(self.func),
                f"callee {callee} unavailable",
            )
        if self.after_sid is None:
            fn.body.insert(0, self.stmt)
            return
        for body in iter_bodies(fn.body):
            for index, existing in enumerate(body):
                if existing.sid == self.after_sid:
                    body.insert(index + 1, self.stmt)
                    return
        raise EditNotApplicable(f"anchor statement {self.after_sid} is gone")

    def describe(self) -> str:
        return f"insert_stmt in {self.func} after #{self.after_sid}"


@dataclass
class DeleteStmt(Edit):
    """Case 6-style deletion of one statement (and its nested body)."""

    sid: int
    kind = "delete_stmt"

    def apply(self, program: GenProgram) -> None:
        _, body, index = _find_stmt(program, self.sid)
        del body[index]

    def describe(self) -> str:
        return f"delete_stmt #{self.sid}"


@dataclass
class AddGlobal(Edit):
    """Case 6: insert a global variable and use it in a new statement."""

    gvar: GlobalVar
    func: str
    after_sid: int | None
    use_stmt: object
    kind = "add_global"

    def apply(self, program: GenProgram) -> None:
        _require(
            program.global_var(self.gvar.name) is None,
            f"global {self.gvar.name} already exists",
        )
        fn = program.func(self.func)
        _require(fn is not None, f"function {self.func} is gone")
        program.globals.append(self.gvar)
        _insert(fn.body, self.after_sid, self.use_stmt)

    def describe(self) -> str:
        return f"add_global {self.gvar.name} used in {self.func}"


@dataclass
class RemoveGlobal(Edit):
    """Remove a global: reads fold to its old value, writes vanish."""

    name: str
    kind = "remove_global"

    def apply(self, program: GenProgram) -> None:
        gvar = program.global_var(self.name)
        _require(gvar is not None, f"global {self.name} is gone")
        program.globals.remove(gvar)
        fold = Const(
            gvar.init if isinstance(gvar.init, int) and gvar.length is None else 0
        )

        def rewrite(expr):
            if isinstance(expr, Var) and expr.name == self.name:
                return Const(fold.value)
            if isinstance(expr, Index) and expr.base == self.name:
                return Const(0)
            return expr

        for func in program.funcs:
            for body in iter_bodies(func.body):
                body[:] = [
                    stmt for stmt in body if not self._writes_target(stmt)
                ]
            for stmt in iter_stmts(func.body):
                if isinstance(stmt, CallStmt) and stmt.assign_to == self.name:
                    stmt.assign_to = None
                _rewrite_stmt_exprs(stmt, rewrite)

    def _writes_target(self, stmt) -> bool:
        if not isinstance(stmt, AssignStmt):
            return False
        target = stmt.target
        if isinstance(target, Var):
            return target.name == self.name
        return isinstance(target, Index) and target.base == self.name

    def describe(self) -> str:
        return f"remove_global {self.name}"


@dataclass
class AddFunction(Edit):
    """Case 9: add a new function and a call to it."""

    func: FuncDef
    call_from: str
    after_sid: int | None
    call_stmt: CallStmt
    kind = "add_function"

    def apply(self, program: GenProgram) -> None:
        _require(
            program.func(self.func.name) is None,
            f"function {self.func.name} already exists",
        )
        caller = program.func(self.call_from)
        _require(caller is not None, f"caller {self.call_from} is gone")
        program.funcs.insert(program.funcs.index(caller), self.func)
        _insert(caller.body, self.after_sid, self.call_stmt)

    def describe(self) -> str:
        return f"add_function {self.func.name} called from {self.call_from}"


@dataclass
class RemoveFunction(Edit):
    """Large change: delete a function; calls fold to constants."""

    name: str
    kind = "remove_function"

    def apply(self, program: GenProgram) -> None:
        fn = program.func(self.name)
        _require(fn is not None and fn.name != "main", f"{self.name} is gone")
        program.funcs.remove(fn)
        for func in program.funcs:
            for body in iter_bodies(func.body):
                replacement: list = []
                for stmt in body:
                    if isinstance(stmt, CallStmt) and stmt.name == self.name:
                        if stmt.assign_to is not None:
                            replacement.append(
                                AssignStmt(
                                    stmt.sid, Var(stmt.assign_to), Const(0)
                                )
                            )
                        continue
                    replacement.append(stmt)
                body[:] = replacement

    def describe(self) -> str:
        return f"remove_function {self.name}"


@dataclass
class AddParam(Edit):
    """Case 8: a new parameter, threaded through every call site."""

    func: str
    pname: str
    ctype: str
    arg_value: int
    kind = "add_param"

    def apply(self, program: GenProgram) -> None:
        fn = program.func(self.func)
        _require(fn is not None and fn.name != "main", f"{self.func} is gone")
        _require(
            all(name != self.pname for name, _ in fn.params),
            f"parameter {self.pname} already exists",
        )
        fn.params.append((self.pname, self.ctype))
        for func in program.funcs:
            for stmt in iter_stmts(func.body):
                if isinstance(stmt, CallStmt) and stmt.name == self.func:
                    stmt.args = tuple(stmt.args) + (Const(self.arg_value),)

    def describe(self) -> str:
        return f"add_param {self.func}({self.ctype} {self.pname})"


@dataclass
class ReorderGlobals(Edit):
    """Case D2: shuffle the declaration order of the globals."""

    order: tuple[str, ...]
    kind = "reorder_globals"

    def apply(self, program: GenProgram) -> None:
        by_name = {g.name: g for g in program.globals}
        reordered = [by_name[n] for n in self.order if n in by_name]
        _require(len(reordered) >= 2, "too few surviving globals")
        rest = [g for g in program.globals if g.name not in self.order]
        program.globals = reordered + rest

    def describe(self) -> str:
        return f"reorder_globals {', '.join(self.order)}"


@dataclass
class RenameGlobal(Edit):
    """Case D2: rename a global everywhere it appears."""

    old: str
    new: str
    kind = "rename_global"

    def apply(self, program: GenProgram) -> None:
        gvar = program.global_var(self.old)
        _require(gvar is not None, f"global {self.old} is gone")
        _require(
            program.global_var(self.new) is None,
            f"global {self.new} already exists",
        )
        gvar.name = self.new

        def rewrite(expr):
            if isinstance(expr, Var) and expr.name == self.old:
                return Var(self.new)
            if isinstance(expr, Index) and expr.base == self.old:
                return Index(self.new, expr.index)
            return expr

        for func in program.funcs:
            for stmt in iter_stmts(func.body):
                if isinstance(stmt, CallStmt) and stmt.assign_to == self.old:
                    stmt.assign_to = self.new
                _rewrite_stmt_exprs(stmt, rewrite)

    def describe(self) -> str:
        return f"rename_global {self.old} -> {self.new}"


_BUILTIN_STMT_CALLS = ("led_set", "radio_send", "halt")


def _callee_of(stmt) -> str | None:
    if isinstance(stmt, CallStmt):
        return stmt.name
    return None


def apply_edits(program: GenProgram, edits: list) -> GenProgram:
    """Apply ``edits`` in order to a clone of ``program``.

    Raises :class:`EditNotApplicable` when an anchor is missing — the
    shrinker uses this to reject reductions that break an edit.
    """
    out = clone(program)
    for edit in edits:
        edit.apply(out)
    return out


# ---------------------------------------------------------------------------
# Edit proposal
# ---------------------------------------------------------------------------


@dataclass
class Mutator:
    """Draws random applicable edits for one base program."""

    rng: random.Random
    #: relative weight of each edit kind (name -> weight)
    weights: dict = field(default_factory=lambda: dict(_DEFAULT_WEIGHTS))

    # every proposer returns an Edit or None when not applicable

    def _editable_stmts(self, program: GenProgram, predicate):
        return [
            stmt
            for func in program.funcs
            for stmt in iter_stmts(func.body)
            if predicate(stmt)
        ]

    def _propose_tweak_global(self, program: GenProgram):
        scalars = [
            g
            for g in program.globals
            if g.length is None and isinstance(g.init, int)
        ]
        arrays = [
            g for g in program.globals if g.length is not None and g.init
        ]
        if arrays and (not scalars or self.rng.random() < 0.3):
            gvar = self.rng.choice(arrays)
            element = self.rng.randrange(len(gvar.init))
            return TweakGlobalInit(
                name=gvar.name, value=self.rng.randrange(256), element=element
            )
        if not scalars:
            return None
        gvar = self.rng.choice(scalars)
        return TweakGlobalInit(
            name=gvar.name, value=self.rng.randrange(gvar.max_value() + 1)
        )

    def _propose_tweak_const(self, program: GenProgram):
        candidates = []
        for stmt in self._editable_stmts(program, lambda s: True):
            consts = _stmt_consts(stmt)
            for occurrence, node in enumerate(consts):
                candidates.append((stmt.sid, occurrence))
        if not candidates:
            return None
        sid, occurrence = self.rng.choice(candidates)
        return TweakConst(
            sid=sid, occurrence=occurrence, value=self.rng.randrange(256)
        )

    def _propose_op_swap(self, program: GenProgram):
        candidates = []
        for stmt in self._editable_stmts(program, lambda s: True):
            bins = [
                b
                for b in _stmt_bins(stmt)
                if b.op in SAFE_BIN_OPS or b.op in CMP_OPS
            ]
            for occurrence, node in enumerate(bins):
                candidates.append((stmt.sid, occurrence, node.op))
        if not candidates:
            return None
        sid, occurrence, op = self.rng.choice(candidates)
        family = SAFE_BIN_OPS if op in SAFE_BIN_OPS else CMP_OPS
        alternatives = [o for o in family if o != op]
        return SwapBinOp(
            sid=sid, occurrence=occurrence, new_op=self.rng.choice(alternatives)
        )

    def _propose_loop_bound(self, program: GenProgram):
        loops = self._editable_stmts(
            program, lambda s: isinstance(s, ForStmt) and s.bound > 1
        )
        if not loops:
            return None
        loop = self.rng.choice(loops)
        return TweakLoopBound(
            sid=loop.sid, bound=self.rng.randrange(1, loop.bound)
        )

    def _anchor_in(self, fn: FuncDef) -> int | None:
        anchors = [stmt.sid for stmt in fn.body if not isinstance(stmt, HaltStmt)]
        if not anchors or self.rng.random() < 0.15:
            return None
        return self.rng.choice(anchors)

    def _new_use_stmt(self, program: GenProgram, fn: FuncDef, extra=None):
        """A fresh statement over globals/params only (always in scope)."""
        rng = self.rng
        scalars = [
            g.name
            for g in program.globals
            if g.length is None and not g.const
        ]
        readable = list(scalars) + [name for name, _ in fn.params]
        if extra is not None:
            readable.append(extra)
            scalars = scalars + [extra]

        def operand():
            if readable and rng.random() < 0.7:
                return Var(rng.choice(readable))
            return Const(rng.randrange(256))

        value = Bin(rng.choice(SAFE_BIN_OPS), operand(), operand())
        roll = rng.random()
        if scalars and roll < 0.5:
            return AssignStmt(program.fresh_sid(), Var(rng.choice(scalars)), value)
        if roll < 0.75:
            return CallStmt(program.fresh_sid(), "led_set", (value,))
        return CallStmt(program.fresh_sid(), "radio_send", (value,))

    def _propose_insert_stmt(self, program: GenProgram):
        fn = self.rng.choice(program.funcs)
        stmt = self._new_use_stmt(program, fn)
        if self.rng.random() < 0.3:
            stmt = IfStmt(
                program.fresh_sid(),
                CallE("timer_fired"),
                [self._new_use_stmt(program, fn)],
            )
        return InsertStmt(func=fn.name, after_sid=self._anchor_in(fn), stmt=stmt)

    def _propose_delete_stmt(self, program: GenProgram):
        def deletable(stmt):
            return not isinstance(stmt, (DeclStmt, HaltStmt, ReturnStmt))

        candidates = self._editable_stmts(program, deletable)
        if not candidates:
            return None
        return DeleteStmt(sid=self.rng.choice(candidates).sid)

    def _propose_add_global(self, program: GenProgram):
        index = 0
        while program.global_var(f"ng{index}") is not None:
            index += 1
        name = f"ng{index}"
        ctype = self.rng.choice(("u8", "u16"))
        gvar = GlobalVar(
            name=name,
            ctype=ctype,
            init=self.rng.randrange(256 if ctype == "u8" else 65536),
        )
        fn = self.rng.choice(program.funcs)
        use = self._new_use_stmt(program, fn, extra=name)
        return AddGlobal(
            gvar=gvar, func=fn.name, after_sid=self._anchor_in(fn), use_stmt=use
        )

    def _propose_remove_global(self, program: GenProgram):
        if len(program.globals) <= 1:
            return None
        return RemoveGlobal(name=self.rng.choice(program.globals).name)

    def _propose_add_function(self, program: GenProgram):
        index = 0
        while program.func(f"nf{index}") is not None:
            index += 1
        name = f"nf{index}"
        ret = self.rng.choice(("void", "u8"))
        new_fn = FuncDef(name=name, ret=ret)
        body_len = self.rng.randrange(1, 4)
        for _ in range(body_len):
            new_fn.body.append(self._new_use_stmt(program, new_fn))
        if ret != "void":
            new_fn.body.append(
                ReturnStmt(program.fresh_sid(), Const(self.rng.randrange(256)))
            )
        caller = self.rng.choice(program.funcs)
        call = CallStmt(program.fresh_sid(), name)
        return AddFunction(
            func=new_fn,
            call_from=caller.name,
            after_sid=self._anchor_in(caller),
            call_stmt=call,
        )

    def _propose_remove_function(self, program: GenProgram):
        removable = [f for f in program.funcs if f.name != "main"]
        if len(removable) <= 1:
            return None
        return RemoveFunction(name=self.rng.choice(removable).name)

    def _propose_add_param(self, program: GenProgram):
        candidates = [
            f
            for f in program.funcs
            if f.name != "main" and len(f.params) < 4
        ]
        if not candidates:
            return None
        fn = self.rng.choice(candidates)
        return AddParam(
            func=fn.name,
            pname=f"q{len(fn.params)}",
            ctype=self.rng.choice(("u8", "u16")),
            arg_value=self.rng.randrange(256),
        )

    def _propose_reorder_globals(self, program: GenProgram):
        if len(program.globals) < 2:
            return None
        names = [g.name for g in program.globals]
        shuffled = list(names)
        self.rng.shuffle(shuffled)
        if shuffled == names:
            shuffled.reverse()
        return ReorderGlobals(order=tuple(shuffled))

    def _propose_rename_global(self, program: GenProgram):
        if not program.globals:
            return None
        gvar = self.rng.choice(program.globals)
        index = 0
        while program.global_var(f"rn{index}") is not None:
            index += 1
        return RenameGlobal(old=gvar.name, new=f"rn{index}")

    def propose(self, program: GenProgram):
        """Draw one applicable edit (or None when nothing fits)."""
        kinds = sorted(self.weights)
        weights = [self.weights[k] for k in kinds]
        for _ in range(8):
            kind = self.rng.choices(kinds, weights=weights)[0]
            edit = getattr(self, f"_propose_{kind}")(program)
            if edit is not None:
                return edit
        return None


_DEFAULT_WEIGHTS = {
    "tweak_global": 3,
    "tweak_const": 4,
    "op_swap": 3,
    "loop_bound": 2,
    "insert_stmt": 4,
    "delete_stmt": 3,
    "add_global": 2,
    "remove_global": 1,
    "add_function": 2,
    "remove_function": 1,
    "add_param": 2,
    "reorder_globals": 1,
    "rename_global": 1,
}


def mutate(
    program: GenProgram,
    rng: random.Random,
    n_edits: int,
    max_attempts: int = 12,
):
    """Derive an update pair: returns ``(new_program, applied_edits)``.

    Each candidate edit is applied to a running clone and validated
    through the front end; invalid results are discarded (this guards
    against edits like statement deletion removing a declaration that a
    later statement still uses).
    """
    from ..lang import frontend

    mutator = Mutator(rng=rng)
    current = clone(program)
    applied: list[Edit] = []
    attempts = 0
    while len(applied) < n_edits and attempts < max_attempts:
        attempts += 1
        edit = mutator.propose(current)
        if edit is None:
            continue
        candidate = clone(current)
        try:
            edit.apply(candidate)
            frontend(candidate.render(), "<fuzz-edit>")
        except (EditNotApplicable, CompileError):
            continue
        current = candidate
        applied.append(edit)
    return current, applied


__all__ = [
    "AddFunction",
    "AddGlobal",
    "AddParam",
    "DeleteStmt",
    "Edit",
    "EditNotApplicable",
    "InsertStmt",
    "Mutator",
    "RemoveFunction",
    "RemoveGlobal",
    "RenameGlobal",
    "ReorderGlobals",
    "SwapBinOp",
    "TweakConst",
    "TweakGlobalInit",
    "TweakLoopBound",
    "apply_edits",
    "mutate",
]
