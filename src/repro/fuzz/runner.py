"""The fuzz campaign driver behind ``repro fuzz``.

Each iteration derives its own RNG from ``(seed, iteration)``, so a
campaign is fully deterministic and any single iteration can be
replayed in isolation: generate a program, derive an update pair with
1..N semantic edits, run the differential oracle battery, and — on
failure — shrink to a minimal reproducer and persist it to the corpus
directory.

The report carries a SHA-256 digest over every iteration's sources and
verdicts; two runs with the same seed and configuration must produce
the same digest (pinned by tests), which is what makes nightly-run
findings replayable locally.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

from ..config import UpdateConfig
from ..obs import metrics, trace
from ..obs.metrics import REGISTRY
from .mutator import apply_edits, mutate
from .oracles import check_pair
from .progen import GenConfig, generate_program
from .shrinker import FuzzCase, persist_case, shrink


@dataclass
class FuzzFinding:
    """One failing iteration, after shrinking."""

    iteration: int
    failures: list
    case_dir: str | None = None
    shrunk_edits: int = 0
    shrunk_statements: int = 0

    def render(self) -> str:
        where = f" -> {self.case_dir}" if self.case_dir else ""
        messages = "; ".join(f.render() for f in self.failures)
        return f"iteration {self.iteration}: {messages}{where}"


@dataclass
class FuzzReport:
    """Outcome of one campaign."""

    seed: int
    iterations: int
    findings: list = field(default_factory=list)
    edit_counts: dict = field(default_factory=dict)
    script_bytes_total: int = 0
    diff_inst_total: int = 0
    digest: str = ""
    #: per-campaign ``fuzz.*`` metric deltas from :mod:`repro.obs`;
    #: excluded from the digest so telemetry cannot change replay identity
    metrics: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def render(self) -> str:
        lines = [
            f"fuzz seed={self.seed} iterations={self.iterations} "
            f"findings={len(self.findings)}",
            f"digest  : {self.digest}",
            f"shipped : {self.script_bytes_total} script bytes, "
            f"{self.diff_inst_total} Diff_inst total",
        ]
        if self.edit_counts:
            parts = ", ".join(
                f"{kind}:{count}"
                for kind, count in sorted(self.edit_counts.items())
            )
            lines.append(f"edits   : {parts}")
        if self.metrics:
            parts = ", ".join(
                f"{name.split('fuzz.', 1)[-1]}:{value:g}"
                for name, value in sorted(self.metrics.items())
                if value
            )
            if parts:
                lines.append(f"metrics : {parts}")
        for finding in self.findings:
            lines.append("FAIL " + finding.render())
        return "\n".join(lines)


def _iteration_rng(seed: int, iteration: int) -> random.Random:
    # String seeding hashes with SHA-512 internally — deterministic
    # across platforms and Python builds, unlike hash(tuple).
    return random.Random(f"repro-fuzz:{seed}:{iteration}")


def run_fuzz(
    seed: int = 0,
    iters: int = 100,
    max_edits: int = 3,
    corpus_dir: str | None = None,
    ra: str = "ucc",
    da: str = "ucc",
    config: GenConfig | None = None,
    on_progress=None,
    shrink_findings: bool = True,
    update_config: UpdateConfig | None = None,
) -> FuzzReport:
    """Run one deterministic fuzz campaign.

    ``update_config`` carries the full planning configuration (cp,
    checked mode, knobs) for the oracle battery; when given it wins
    over the loose ``ra``/``da`` strings.
    """
    plan_cfg = (
        update_config if update_config is not None else UpdateConfig(ra=ra, da=da)
    )
    report = FuzzReport(seed=seed, iterations=iters)
    hasher = hashlib.sha256()
    before = REGISTRY.values("fuzz.")
    for iteration in range(iters):
        with trace.span("fuzz.iteration", iteration=iteration) as span:
            rng = _iteration_rng(seed, iteration)
            program = generate_program(rng, config)
            n_edits = rng.randrange(1, max_edits + 1)
            mutated, edits = mutate(program, rng, n_edits)
            for edit in edits:
                report.edit_counts[edit.kind] = (
                    report.edit_counts.get(edit.kind, 0) + 1
                )
            old_source = program.render()
            new_source = mutated.render()
            verdict = check_pair(old_source, new_source, config=plan_cfg)
            span.set(ok=verdict.ok)
        metrics.counter("fuzz.iterations").inc()
        _publish_verdict(verdict)
        report.script_bytes_total += verdict.script_bytes
        report.diff_inst_total += verdict.diff_inst
        hasher.update(old_source.encode())
        hasher.update(new_source.encode())
        hasher.update(verdict.summary().encode())
        if not verdict.ok:
            metrics.counter("fuzz.findings").inc()
            finding = _handle_failure(
                iteration,
                program,
                edits,
                verdict,
                seed=seed,
                corpus_dir=corpus_dir,
                plan_cfg=plan_cfg,
                shrink_findings=shrink_findings,
            )
            report.findings.append(finding)
        if on_progress is not None:
            on_progress(iteration, verdict)
    report.digest = hasher.hexdigest()
    report.metrics = REGISTRY.delta(before, "fuzz.")
    return report


def _publish_verdict(verdict) -> None:
    """Count each oracle violation under its own literal metric name
    (literal so ``tools/check_docs.py`` can see them)."""
    for failure in verdict.failures:
        if failure.oracle == "plan":
            metrics.counter("fuzz.oracle_failures.plan").inc()
        elif failure.oracle == "patch":
            metrics.counter("fuzz.oracle_failures.patch").inc()
        elif failure.oracle == "wire":
            metrics.counter("fuzz.oracle_failures.wire").inc()
        elif failure.oracle == "trace":
            metrics.counter("fuzz.oracle_failures.trace").inc()
        elif failure.oracle == "analysis":
            metrics.counter("fuzz.oracle_failures.analysis").inc()
        else:
            metrics.counter("fuzz.oracle_failures.other").inc()


def _handle_failure(
    iteration: int,
    program,
    edits,
    verdict,
    *,
    seed: int,
    corpus_dir: str | None,
    plan_cfg: UpdateConfig,
    shrink_findings: bool,
) -> FuzzFinding:
    case = FuzzCase(
        program=program,
        edits=list(edits),
        seed=seed,
        iteration=iteration,
        failures=list(verdict.failures),
    )

    def still_fails(reduced_program, reduced_edits) -> bool:
        old_source = reduced_program.render()
        new_source = apply_edits(reduced_program, reduced_edits).render()
        return not check_pair(old_source, new_source, config=plan_cfg).ok

    if shrink_findings and edits:
        case = shrink(case, still_fails)
        # Re-run the oracles on the shrunk pair so the persisted
        # failure messages describe the minimal reproducer.
        old_source, new_source = case.sources()
        case.failures = check_pair(old_source, new_source, config=plan_cfg).failures
    finding = FuzzFinding(
        iteration=iteration,
        failures=list(case.failures),
        shrunk_edits=len(case.edits),
        shrunk_statements=sum(
            1
            for fn in case.program.funcs
            for _ in _iter_stmts(fn.body)
        ),
    )
    if corpus_dir is not None:
        finding.case_dir = str(persist_case(corpus_dir, case))
    return finding


def _iter_stmts(body):
    from .progen import iter_stmts

    return iter_stmts(body)


__all__ = ["FuzzFinding", "FuzzReport", "run_fuzz"]
