"""Scratch-register pool for instruction selection.

Spilled operands and immediates are materialised in reserved scratch
registers so the selector never perturbs the allocator's assignment.
The pool hands out bytes from the reserved set {r0, r26..r29} (r1 stays
the zero register, r30:r31 stay the Z pointer) and is reset per IR
instruction; the lowering patterns are written so the pool never
overflows — an overflow raises, it does not silently corrupt.
"""

from __future__ import annotations

_POOL_UNITS = (0, 26, 27, 28, 29)
_PAIR_BASES = (26, 28)


class ScratchOverflow(Exception):
    """An IR instruction needed more scratch registers than exist."""


class ScratchPool:
    """Allocates scratch bytes/pairs within one IR instruction."""

    def __init__(self):
        self._in_use: set[int] = set()

    def reset(self) -> None:
        self._in_use.clear()

    def take(self, size: int) -> int:
        """Reserve a scratch base register for a value of ``size`` bytes."""
        if size == 1:
            for unit in _POOL_UNITS:
                if unit not in self._in_use:
                    self._in_use.add(unit)
                    return unit
            raise ScratchOverflow("out of u8 scratch registers")
        if size == 2:
            for base in _PAIR_BASES:
                if base not in self._in_use and base + 1 not in self._in_use:
                    self._in_use.update((base, base + 1))
                    return base
            raise ScratchOverflow("out of u16 scratch register pairs")
        raise ValueError(f"unsupported scratch size {size}")

    def release(self, base: int, size: int) -> None:
        for unit in range(base, base + size):
            self._in_use.discard(unit)
