"""Code placement: where each function's code lives in program flash.

The paper defers update-conscious *code placement* to future work
("we will investigate the code placement problem in our future work",
§3) but the phenomenon is fully present in this reproduction: our
``CALL``/``JMP`` instructions embed absolute word addresses, so when an
early function grows or shrinks, every later function shifts and every
call site that targets a shifted function re-encodes — update noise
with no semantic cause, exactly analogous to the register/layout
cascades of §3/§4 (and the subject of Feedback Linking [26], which the
paper cites).

Two placement strategies:

* :func:`baseline_placement` — functions packed back-to-back in
  definition order (what a conventional toolchain does);
* :func:`ucc_placement` — update-conscious: every function that still
  fits its old *slot* keeps its old start address, with NOP padding
  filling any shrinkage; a function that outgrows its slot expands in
  place (shifting only its successors); new functions append at the
  end; ``headroom`` optionally pre-pads slots at first deployment so
  future growth does not shift successors (the slop-space idea of
  FlexCup-era systems).

The trade is the familiar one: padding NOPs are transmitted once (and
occupy flash), in exchange for keeping every call site to every stable
function byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instructions import MachineInstr


@dataclass(frozen=True)
class FunctionSlot:
    """One function's flash slot: ``[start, start + slot_words)``."""

    name: str
    start: int
    code_words: int
    slot_words: int

    @property
    def padding_words(self) -> int:
        return self.slot_words - self.code_words


@dataclass(frozen=True)
class Tombstone:
    """A dead flash region left behind by a relocated function.

    The region keeps its *old bytes* verbatim: nothing jumps there any
    more, and byte-identical content costs nothing to disseminate (the
    differ emits a single ``copy``).  This is how Deluge-era protocols
    behave too — only changed pages are rewritten."""

    start: int
    words: tuple[int, ...]

    @property
    def size_words(self) -> int:
        return len(self.words)


@dataclass
class PlacementPlan:
    """The full flash layout of a program's functions."""

    slots: list[FunctionSlot] = field(default_factory=list)
    tombstones: list[Tombstone] = field(default_factory=list)
    algorithm: str = "baseline"

    def slot(self, name: str) -> FunctionSlot:
        for slot in self.slots:
            if slot.name == name:
                return slot
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(slot.name == name for slot in self.slots)

    @property
    def total_words(self) -> int:
        ends = [slot.start + slot.slot_words for slot in self.slots]
        ends += [tomb.start + tomb.size_words for tomb in self.tombstones]
        return max(ends) if ends else 0

    @property
    def total_padding(self) -> int:
        return sum(slot.padding_words for slot in self.slots)

    def stable_functions(self, old: "PlacementPlan") -> list[str]:
        """Functions that kept their start address versus ``old``."""
        return [
            slot.name
            for slot in self.slots
            if slot.name in old and old.slot(slot.name).start == slot.start
        ]


def baseline_placement(
    sizes: dict[str, int], order: list[str], headroom: int = 0
) -> PlacementPlan:
    """Pack functions back-to-back in ``order``.

    ``headroom`` adds slack words to every slot (useful when the first
    deployment anticipates maintenance).
    """
    plan = PlacementPlan(algorithm="baseline")
    cursor = 0
    for name in order:
        code = sizes[name]
        slot = FunctionSlot(
            name=name, start=cursor, code_words=code, slot_words=code + headroom
        )
        plan.slots.append(slot)
        cursor += slot.slot_words
    return plan


def ucc_placement(
    sizes: dict[str, int],
    order: list[str],
    old_plan: PlacementPlan,
    headroom: int = 0,
    old_slot_words: dict[str, tuple[int, ...]] | None = None,
    relocate_growers: bool = False,
) -> PlacementPlan:
    """Update-conscious placement against ``old_plan``.

    * A survivor that fits its old slot keeps it (address-stable; NOP
      padding fills any shrinkage).
    * A survivor that *outgrew* its slot expands in place by default:
      the differ matches the function's unchanged instructions against
      the old body, so only the genuinely changed instructions (plus
      the shifted successors' call sites) transmit.  With
      ``relocate_growers=True`` (and ``old_slot_words`` supplying the
      old image's raw words) the grower instead moves to the end and
      its old slot becomes a :class:`Tombstone` — successors stay put,
      but the whole new body transmits; only worth it for
      heavily-rewritten functions with many downstream call sites.
    * Deleted functions' regions are compacted away (successors shift
      down) — their call sites are gone anyway.
    * New functions append at the end.
    """
    plan = PlacementPlan(algorithm="ucc")
    old_slot_words = old_slot_words or {}
    newcomers = [name for name in order if name not in old_plan]

    # Walk the old image's regions (function slots and tombstones alike)
    # in address order.
    regions: list[tuple[int, object]] = [
        (slot.start, slot) for slot in old_plan.slots
    ] + [(tomb.start, tomb) for tomb in old_plan.tombstones]
    regions.sort(key=lambda r: r[0])

    cursor = 0
    relocated: list[str] = []
    for start, payload in regions:
        if isinstance(payload, Tombstone):
            # Dead region from an earlier update: carry it forward if it
            # is still in place, otherwise compact it away.
            if start >= cursor:
                plan.tombstones.append(payload)
                cursor = start + payload.size_words
            continue
        name = payload.name
        if name not in sizes:
            continue  # deleted function: compact (its callers are gone)
        code = sizes[name]
        if code <= payload.slot_words and start >= cursor:
            # Address-stable: keep the slot, pad any shrinkage.
            plan.slots.append(
                FunctionSlot(
                    name=name,
                    start=start,
                    code_words=code,
                    slot_words=payload.slot_words,
                )
            )
            cursor = start + payload.slot_words
            continue
        raw = old_slot_words.get(name)
        if relocate_growers and raw is not None and start >= cursor:
            # Relocate to the end; keep the old bytes as a tombstone so
            # every successor stays put.
            plan.tombstones.append(Tombstone(start=start, words=raw))
            relocated.append(name)
            cursor = start + len(raw)
        else:
            # No raw bytes available (or already displaced): expand in
            # place and let successors shift.
            plan.slots.append(
                FunctionSlot(
                    name=name,
                    start=cursor,
                    code_words=code,
                    slot_words=code + headroom,
                )
            )
            cursor += code + headroom

    for name in relocated + newcomers:
        code = sizes[name]
        plan.slots.append(
            FunctionSlot(
                name=name, start=cursor, code_words=code, slot_words=code + headroom
            )
        )
        cursor += code + headroom
    return plan


def apply_placement(
    function_code: dict[str, list[MachineInstr]], plan: PlacementPlan
) -> list[MachineInstr]:
    """Emit functions and tombstones in address order with NOP padding.

    Inter-slot gaps (e.g. a survivor holding its old address after a
    predecessor shrank) and intra-slot tails become NOPs tagged
    ``<pad>``; tombstone regions re-emit the old image's instructions
    verbatim (tagged ``<tomb>``).  The assembler's address assignment
    then reproduces the plan exactly (checked by the compiler).
    """
    from ..isa.assembler import disassemble_words

    regions: list[tuple[int, int, object]] = []  # (start, span, payload)
    for slot in plan.slots:
        regions.append((slot.start, slot.slot_words, slot))
    for tomb in plan.tombstones:
        regions.append((tomb.start, tomb.size_words, tomb))
    regions.sort(key=lambda r: r[0])

    out: list[MachineInstr] = []
    cursor = 0
    for start, span, payload in regions:
        gap = start - cursor
        if gap < 0:  # pragma: no cover - plans are constructed gap-free
            raise ValueError(f"placement overlap at {payload}")
        out.extend(MachineInstr("nop", comment="<pad>") for _ in range(gap))
        if isinstance(payload, Tombstone):
            for instr in disassemble_words(list(payload.words)):
                instr.comment = "<tomb>"
                out.append(instr)
        else:
            out.extend(function_code[payload.name])
            out.extend(
                MachineInstr("nop", comment="<pad>")
                for _ in range(payload.padding_words)
            )
        cursor = start + span
    return out


def code_size_words(instrs: list[MachineInstr]) -> int:
    """Total encoded size of a function's instruction list."""
    return sum(ins.size_words for ins in instrs)
