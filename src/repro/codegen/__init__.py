"""Code generation: instruction selection and data-image building."""

from .scratch import ScratchOverflow, ScratchPool
from .selector import (
    FunctionSelector,
    SelectionError,
    select_function,
    select_module,
)

__all__ = [
    "FunctionSelector",
    "ScratchOverflow",
    "ScratchPool",
    "SelectionError",
    "select_function",
    "select_module",
]

from .placement import (
    FunctionSlot,
    PlacementPlan,
    apply_placement,
    baseline_placement,
    code_size_words,
    ucc_placement,
)

__all__ += [
    "FunctionSlot",
    "PlacementPlan",
    "apply_placement",
    "baseline_placement",
    "code_size_words",
    "ucc_placement",
]
