"""Instruction selection: IR + allocation record + data layout → machine code.

The selector is deliberately *deterministic and local*: each IR
instruction lowers to a fixed machine pattern given (a) the physical
registers the allocation record assigns its operands at that IR index
and (b) the addresses the data layout assigns the memory objects it
touches.  Consequently an IR instruction whose allocation decisions and
addresses are unchanged between two compiles produces byte-identical
machine code — the property every UCC measurement rests on.

Conventions (see :mod:`repro.isa.registers`):

* ``r1`` is kept zero (cleared in the prologue);
* spilled values and immediates pass through the reserved scratch set;
* arguments are stored into the callee's static frame slots before
  ``CALL``; return values travel in ``r24``/``r24:r25``;
* callee-saved registers the function writes are pushed/popped.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datalayout.layout import DataLayout, spill_uid
from ..ir.function import IRFunction, IRModule
from ..ir.instructions import COMPARISONS, IRInstr, IROp, Imm, MemRef, VReg
from ..isa import devices
from ..isa import registers as regs
from ..isa.instructions import MachineInstr, label as mk_label
from ..regalloc.base import AllocationRecord
from .scratch import ScratchPool


class SelectionError(Exception):
    """Raised when the selector cannot lower an instruction."""


_COMMUTATIVE = {IROp.ADD, IROp.AND, IROp.OR, IROp.XOR, IROp.MUL}

#: IR op -> u8 machine mnemonic (register-register form)
_RR_MNEMONIC = {
    IROp.ADD: "add",
    IROp.SUB: "sub",
    IROp.AND: "and",
    IROp.OR: "or",
    IROp.XOR: "eor",
    IROp.MUL: "mul",
    IROp.DIV: "div",
    IROp.MOD: "mod",
}

#: IR op -> immediate mnemonic where one exists
_IMM_MNEMONIC = {
    IROp.SUB: "subi",
    IROp.AND: "andi",
    IROp.OR: "ori",
    IROp.XOR: "eori",
}

#: comparison -> (branch-if-true, swap_operands)
_CMP_BRANCH = {
    IROp.CMPEQ: ("breq", False),
    IROp.CMPNE: ("brne", False),
    IROp.CMPLT: ("brlo", False),
    IROp.CMPGE: ("brsh", False),
    IROp.CMPGT: ("brlo", True),  # a > b  ==  b < a
    IROp.CMPLE: ("brsh", True),  # a <= b ==  b >= a
}


@dataclass
class _Value:
    """A materialised operand: physical base register + size + whether
    the base came from the scratch pool (so it can be released)."""

    base: int
    size: int
    scratch: bool = False


class FunctionSelector:
    """Lowers one IR function to machine instructions."""

    def __init__(
        self,
        fn: IRFunction,
        record: AllocationRecord,
        layout: DataLayout,
        module: IRModule,
    ):
        self.fn = fn
        self.record = record
        self.layout = layout
        self.module = module
        self.out: list[MachineInstr] = []
        self.pool = ScratchPool()
        self.index = -1
        self._gen_labels = 0
        self._fused: dict[int, int] = {}  # cmp index -> cbr index

    # -- small helpers -----------------------------------------------------

    def emit(self, mnemonic: str, **fields) -> MachineInstr:
        # ``comment`` carries the owning function name so execution
        # profiles can be attributed back to (function, IR index).
        instr = MachineInstr(
            mnemonic=mnemonic, ir_index=self.index, comment=self.fn.name, **fields
        )
        self.out.append(instr)
        return instr

    def local_label(self, name: str) -> str:
        return f"{self.fn.name}.{name}"

    def gen_label(self) -> str:
        self._gen_labels += 1
        return f"{self.fn.name}.__g{self.index}_{self._gen_labels}"

    def addr_of(self, uid: str) -> int:
        try:
            return self.layout.address_of(uid)
        except KeyError:
            raise SelectionError(f"no address for data object {uid!r}") from None

    def spill_addr(self, vreg_name: str) -> int:
        return self.addr_of(spill_uid(self.fn.name, vreg_name))

    def reg_of(self, name: str) -> int | None:
        placement = self.record.placements.get(name)
        if placement is None or placement.spilled:
            return None
        base = placement.reg_at(self.index)
        if base is None and not placement.spilled:
            # Live-range piece gap should not happen at a real occurrence.
            raise SelectionError(
                f"{self.fn.name}: vreg {name} has no register at IR {self.index}"
            )
        return base

    # -- operand materialisation ------------------------------------------------

    def load_value(self, operand) -> _Value:
        """Bring an operand into registers (placed reg, or scratch)."""
        if isinstance(operand, Imm):
            size = operand.ctype.element_size
            base = self.pool.take(size)
            self.emit("ldi", rd=base, imm=operand.value & 0xFF)
            if size == 2:
                self.emit("ldi", rd=base + 1, imm=(operand.value >> 8) & 0xFF)
            return _Value(base, size, scratch=True)
        if isinstance(operand, VReg):
            base = self.reg_of(operand.name)
            if base is not None:
                return _Value(base, operand.size)
            # Spilled: load from the frame slot.
            addr = self.spill_addr(operand.name)
            scratch = self.pool.take(operand.size)
            self.emit("lds", rd=scratch, addr=addr)
            if operand.size == 2:
                self.emit("lds", rd=scratch + 1, addr=addr + 1)
            return _Value(scratch, operand.size, scratch=True)
        raise SelectionError(f"cannot materialise operand {operand!r}")

    def release(self, value: _Value) -> None:
        if value.scratch:
            self.pool.release(value.base, value.size)

    def dest(self, dst: VReg) -> tuple[_Value, int | None]:
        """Target registers for a definition; returns (value, writeback
        address or None)."""
        base = self.reg_of(dst.name)
        if base is not None:
            return _Value(base, dst.size), None
        addr = self.spill_addr(dst.name)
        scratch = self.pool.take(dst.size)
        return _Value(scratch, dst.size, scratch=True), addr

    def writeback(self, value: _Value, addr: int | None) -> None:
        if addr is None:
            return
        self.emit("sts", rd=value.base, addr=addr)
        if value.size == 2:
            self.emit("sts", rd=value.base + 1, addr=addr + 1)
        self.release(value)

    def move_regs(self, dst: int, src: int, size: int) -> None:
        if dst == src:
            return
        if size == 2:
            self.emit("movw", rd=dst, rr=src)
        else:
            self.emit("mov", rd=dst, rr=src)

    def load_imm_into(self, base: int, size: int, imm: int) -> None:
        self.emit("ldi", rd=base, imm=imm & 0xFF)
        if size == 2:
            self.emit("ldi", rd=base + 1, imm=(imm >> 8) & 0xFF)

    # -- driver ---------------------------------------------------------------

    def select(self) -> list[MachineInstr]:
        self._find_fusions()
        self.out.append(mk_label(self.fn.name))
        self._prologue_marker = len(self.out)
        self.index = -1
        self.emit("clr", rd=regs.ZERO)
        self._load_params()

        for index, ins in enumerate(self.fn.instrs):
            self.index = index
            self.pool.reset()
            for move in self.record.moves_before(index):
                self.move_regs(move.dst, move.src, move.size)
            self._select_instr(index, ins)

        machine = self.out
        self._insert_saves(machine)
        return machine

    def _load_params(self) -> None:
        for reg in self.fn.param_vregs:
            placement = self.record.placements.get(reg.name)
            if placement is None or placement.spilled or not placement.pieces:
                continue  # spilled param lives in its slot
            base = placement.pieces[0].base
            addr = self.addr_of(reg.name)
            self.emit("lds", rd=base, addr=addr)
            if reg.size == 2:
                self.emit("lds", rd=base + 1, addr=addr + 1)

    def _callee_saved_used(self) -> list[int]:
        used: set[int] = set()
        for placement in self.record.placements.values():
            for piece in placement.pieces:
                used.update(regs.registers_of(piece.base, placement.size))
        for move in self.record.moves:
            used.update(regs.registers_of(move.dst, move.size))
        return sorted(u for u in used if u in regs.CALLEE_SAVED)

    def _insert_saves(self, machine: list[MachineInstr]) -> None:
        """Push/pop used callee-saved registers (prologue + each RET)."""
        saved = self._callee_saved_used()
        if not saved:
            return
        name = self.fn.name
        pushes = [
            MachineInstr("push", rd=r, ir_index=-1, comment=name) for r in saved
        ]
        pops = [
            MachineInstr("pop", rd=r, ir_index=-1, comment=name)
            for r in reversed(saved)
        ]
        rebuilt: list[MachineInstr] = []
        for pos, instr in enumerate(machine):
            if pos == self._prologue_marker:
                rebuilt.extend(pushes)
            if instr.mnemonic == "ret":
                rebuilt.extend(
                    MachineInstr(
                        "pop", rd=p.rd, ir_index=instr.ir_index, comment=name
                    )
                    for p in pops
                )
            rebuilt.append(instr)
        machine[:] = rebuilt

    # -- fusion pre-pass -----------------------------------------------------------

    def _find_fusions(self) -> None:
        """Fuse ``t = cmp...; cbr t`` pairs into compare-and-branch."""
        instrs = self.fn.instrs
        for index in range(len(instrs) - 1):
            first, second = instrs[index], instrs[index + 1]
            if (
                first.op in COMPARISONS
                and second.op is IROp.CBR
                and isinstance(second.args[0], VReg)
                and first.dst is not None
                and second.args[0].name == first.dst.name
                and first.dst.is_temp
                and not self._used_elsewhere(first.dst.name, index, index + 1)
                # A boundary move at the CBR could clobber a register the
                # deferred compare still reads — don't fuse across moves.
                and not self.record.moves_before(index + 1)
            ):
                self._fused[index] = index + 1

    def _used_elsewhere(self, name: str, def_index: int, use_index: int) -> bool:
        for idx, ins in enumerate(self.fn.instrs):
            if idx in (def_index, use_index):
                continue
            if any(r.name == name for r in ins.vregs()):
                return True
        return False

    # -- instruction dispatch --------------------------------------------------------

    def _select_instr(self, index: int, ins: IRInstr) -> None:
        op = ins.op
        if op is IROp.LABEL:
            self.out.append(mk_label(self.local_label(ins.label_name)))
            return
        if index in self._fused:
            return  # emitted by the CBR
        if op is IROp.MOV:
            self._sel_mov(ins)
        elif op in _RR_MNEMONIC or op in (IROp.SHL, IROp.SHR):
            self._sel_binary(ins)
        elif op in (IROp.NEG, IROp.NOT):
            self._sel_unary(ins)
        elif op is IROp.CAST:
            self._sel_cast(ins)
        elif op in COMPARISONS:
            self._sel_compare_value(ins)
        elif op is IROp.LOADG:
            self._sel_loadg(ins)
        elif op is IROp.STOREG:
            self._sel_storeg(ins)
        elif op is IROp.LOADIDX:
            self._sel_loadidx(ins)
        elif op is IROp.STOREIDX:
            self._sel_storeidx(ins)
        elif op is IROp.JUMP:
            self._sel_jump(ins)
        elif op is IROp.CBR:
            self._sel_cbr(ins)
        elif op is IROp.CALL:
            self._sel_call(ins)
        elif op is IROp.RET:
            self._sel_ret(ins)
        elif op is IROp.IOREAD:
            self._sel_ioread(ins)
        elif op is IROp.IOWRITE:
            self._sel_iowrite(ins)
        elif op is IROp.HALT:
            self.emit("halt")
        else:  # pragma: no cover
            raise SelectionError(f"cannot select {ins}")

    # -- moves / casts -----------------------------------------------------------------

    def _sel_mov(self, ins: IRInstr) -> None:
        dst, writeback = self.dest(ins.dst)
        src = ins.args[0]
        if isinstance(src, Imm):
            self.load_imm_into(dst.base, dst.size, src.value)
        else:
            value = self.load_value(src)
            self.move_regs(dst.base, value.base, dst.size)
            self.release(value)
        self.writeback(dst, writeback)

    def _sel_cast(self, ins: IRInstr) -> None:
        dst, writeback = self.dest(ins.dst)
        value = self.load_value(ins.args[0])
        if dst.size == 2 and value.size == 1:
            self.emit("mov", rd=dst.base, rr=value.base)
            self.emit("clr", rd=dst.base + 1)
        else:  # narrowing or same width: take the low byte(s)
            self.emit("mov", rd=dst.base, rr=value.base)
            if dst.size == 2:
                self.emit("mov", rd=dst.base + 1, rr=value.base + 1)
        self.release(value)
        self.writeback(dst, writeback)

    def _sel_unary(self, ins: IRInstr) -> None:
        dst, writeback = self.dest(ins.dst)
        value = self.load_value(ins.args[0])
        self.move_regs(dst.base, value.base, dst.size)
        self.release(value)
        if ins.op is IROp.NOT:
            self.emit("com", rd=dst.base)
            if dst.size == 2:
                self.emit("com", rd=dst.base + 1)
        else:  # NEG: two's complement
            if dst.size == 1:
                self.emit("neg", rd=dst.base)
            else:
                self.emit("com", rd=dst.base)
                self.emit("com", rd=dst.base + 1)
                self.emit("subi", rd=dst.base, imm=0xFF)  # += 1
                self.emit("sbci", rd=dst.base + 1, imm=0xFF)  # += carry
        self.writeback(dst, writeback)

    # -- ALU -------------------------------------------------------------------------------

    def _sel_binary(self, ins: IRInstr) -> None:
        if ins.op in (IROp.SHL, IROp.SHR):
            self._sel_shift(ins)
            return
        dst, writeback = self.dest(ins.dst)
        a, b = ins.args

        # Immediate forms: dst == a (after move) and an imm mnemonic exists.
        if isinstance(b, Imm) and dst.size == 1 and ins.op in _IMM_MNEMONIC:
            value_a = self.load_value(a)
            self.move_regs(dst.base, value_a.base, 1)
            self.release(value_a)
            self.emit(_IMM_MNEMONIC[ins.op], rd=dst.base, imm=b.value & 0xFF)
            self.writeback(dst, writeback)
            return
        if isinstance(b, Imm) and dst.size == 1 and ins.op is IROp.ADD:
            value_a = self.load_value(a)
            self.move_regs(dst.base, value_a.base, 1)
            self.release(value_a)
            # AVR has no ADDI: add is SUBI with the negated immediate.
            self.emit("subi", rd=dst.base, imm=(-b.value) & 0xFF)
            self.writeback(dst, writeback)
            return
        if isinstance(b, Imm) and dst.size == 2 and ins.op in (IROp.ADD, IROp.SUB):
            value_a = self.load_value(a)
            self.move_regs(dst.base, value_a.base, 2)
            self.release(value_a)
            imm = b.value if ins.op is IROp.SUB else -b.value
            self.emit("subi", rd=dst.base, imm=imm & 0xFF)
            self.emit("sbci", rd=dst.base + 1, imm=(imm >> 8) & 0xFF)
            self.writeback(dst, writeback)
            return

        value_a = self.load_value(a)
        value_b = self.load_value(b)
        self._binary_regs(ins.op, dst, value_a, value_b)
        self.release(value_a)
        self.release(value_b)
        self.writeback(dst, writeback)

    def _binary_regs(self, op: IROp, dst: _Value, a: _Value, b: _Value) -> None:
        """dst = a <op> b, all in registers, two-address safe."""
        overlap_b = set(range(dst.base, dst.base + dst.size)) & set(
            range(b.base, b.base + b.size)
        )
        if overlap_b and dst.base != a.base:
            if op in _COMMUTATIVE:
                a, b = b, a
            else:
                # Save b before dst is overwritten by a.
                saved = self.pool.take(b.size)
                self.move_regs(saved, b.base, b.size)
                b = _Value(saved, b.size, scratch=True)
        self.move_regs(dst.base, a.base, dst.size)
        if dst.size == 1:
            self.emit(_RR_MNEMONIC[op], rd=dst.base, rr=b.base)
            return
        if op is IROp.ADD:
            self.emit("add", rd=dst.base, rr=b.base)
            self.emit("adc", rd=dst.base + 1, rr=b.base + 1)
        elif op is IROp.SUB:
            self.emit("sub", rd=dst.base, rr=b.base)
            self.emit("sbc", rd=dst.base + 1, rr=b.base + 1)
        elif op in (IROp.AND, IROp.OR, IROp.XOR):
            mnem = _RR_MNEMONIC[op]
            self.emit(mnem, rd=dst.base, rr=b.base)
            self.emit(mnem, rd=dst.base + 1, rr=b.base + 1)
        elif op in (IROp.MUL, IROp.DIV, IROp.MOD):
            # 16-bit pseudo ops standing in for the libgcc helpers.
            mnem = {"mul": "mul16", "div": "div16", "mod": "mod16"}[
                _RR_MNEMONIC[op]
            ]
            self.emit(mnem, rd=dst.base, rr=b.base)
        else:  # pragma: no cover
            raise SelectionError(f"no 16-bit lowering for {op}")

    def _sel_shift(self, ins: IRInstr) -> None:
        dst, writeback = self.dest(ins.dst)
        a, b = ins.args

        # Capture a run-time shift count *before* dst is written: the
        # allocator may legally give the (dying) count and the defined
        # destination the same register.
        counter = None
        if not isinstance(b, Imm):
            count = self.load_value(b)
            counter = self.pool.take(1)
            self.emit("mov", rd=counter, rr=count.base)
            self.release(count)

        value_a = self.load_value(a)
        self.move_regs(dst.base, value_a.base, dst.size)
        self.release(value_a)

        def emit_one() -> None:
            if ins.op is IROp.SHL:
                self.emit("lsl", rd=dst.base)
                if dst.size == 2:
                    self.emit("rol", rd=dst.base + 1)
            else:
                if dst.size == 2:
                    self.emit("lsr", rd=dst.base + 1)
                    self.emit("ror", rd=dst.base)
                else:
                    self.emit("lsr", rd=dst.base)

        if isinstance(b, Imm):
            for _ in range(min(b.value, 8 * dst.size)):
                emit_one()
        else:
            loop = self.gen_label()
            done = self.gen_label()
            self.out.append(mk_label(loop))
            self.emit("cp", rd=counter, rr=regs.ZERO)
            self.emit("breq", target=done)
            emit_one()
            self.emit("dec", rd=counter)
            self.emit("rjmp", target=loop)
            self.out.append(mk_label(done))
            self.pool.release(counter, 1)
        self.writeback(dst, writeback)

    # -- comparisons -----------------------------------------------------------------------

    def _emit_compare(self, op: IROp, a, b) -> str:
        """Emit CP/CPI/CPC for ``a <op> b``; returns branch-if-true mnemonic."""
        branch, swap = _CMP_BRANCH[op]
        if swap:
            a, b = b, a
        value_a = self.load_value(a)
        if isinstance(b, Imm) and value_a.size == 1:
            self.emit("cpi", rd=value_a.base, imm=b.value & 0xFF)
        else:
            value_b = self.load_value(b)
            self.emit("cp", rd=value_a.base, rr=value_b.base)
            if value_a.size == 2:
                self.emit("cpc", rd=value_a.base + 1, rr=value_b.base + 1)
            self.release(value_b)
        self.release(value_a)
        return branch

    def _sel_compare_value(self, ins: IRInstr) -> None:
        dst, writeback = self.dest(ins.dst)
        # Compute into a register not aliased by the operands.
        operand_units: set[int] = set()
        for arg in ins.args:
            if isinstance(arg, VReg):
                base = self.reg_of(arg.name)
                if base is not None:
                    operand_units.update(range(base, base + arg.size))
        target = dst.base
        temp = None
        if target in operand_units:
            temp = self.pool.take(1)
            target = temp
        true_label = self.gen_label()
        self.emit("ldi", rd=target, imm=1)
        branch = self._emit_compare(ins.op, *ins.args)
        self.emit(branch, target=true_label)
        self.emit("clr", rd=target)
        self.out.append(mk_label(true_label))
        if temp is not None:
            self.emit("mov", rd=dst.base, rr=temp)
            self.pool.release(temp, 1)
        self.writeback(dst, writeback)

    # -- control flow -------------------------------------------------------------------------

    def _next_label_is(self, index: int, label_name: str) -> bool:
        nxt = index + 1
        instrs = self.fn.instrs
        while nxt < len(instrs) and instrs[nxt].op is IROp.LABEL:
            if instrs[nxt].label_name == label_name:
                return True
            nxt += 1
        return False

    def _sel_jump(self, ins: IRInstr) -> None:
        target = ins.args[0].name
        if self._next_label_is(self.index, target):
            return
        self.emit("rjmp", target=self.local_label(target))

    def _sel_cbr(self, ins: IRInstr) -> None:
        cond, true_label, false_label = ins.args
        fused_cmp = None
        fused_index = -1
        for cmp_index, cbr_index in self._fused.items():
            if cbr_index == self.index:
                fused_cmp = self.fn.instrs[cmp_index]
                fused_index = cmp_index
                break
        if fused_cmp is not None:
            # Evaluate operand registers at the compare's own IR index:
            # its operands may die there.  (A boundary move between the
            # two indices only *copies* the value, so the source
            # register still holds it, and moves do not touch flags.)
            cbr_index = self.index
            self.index = fused_index
            branch = self._emit_compare(fused_cmp.op, *fused_cmp.args)
            self.index = cbr_index
        else:
            value = self.load_value(cond)
            self.emit("cp", rd=value.base, rr=regs.ZERO)
            if value.size == 2:
                self.emit("cpc", rd=value.base + 1, rr=regs.ZERO)
            self.release(value)
            branch = "brne"
        self.emit(branch, target=self.local_label(true_label.name))
        if not self._next_label_is(self.index, false_label.name):
            self.emit("rjmp", target=self.local_label(false_label.name))

    def _sel_call(self, ins: IRInstr) -> None:
        callee_name = ins.args[0]
        args = ins.args[1:]
        callee = self.module.functions[callee_name]
        if len(args) != len(callee.param_vregs):
            raise SelectionError(
                f"call to {callee_name} with {len(args)} args, "
                f"expected {len(callee.param_vregs)}"
            )
        for arg, param in zip(args, callee.param_vregs):
            addr = self.addr_of(param.name)
            value = self.load_value(arg)
            self.emit("sts", rd=value.base, addr=addr)
            if param.size == 2:
                if value.size == 2:
                    self.emit("sts", rd=value.base + 1, addr=addr + 1)
                else:
                    self.emit("sts", rd=regs.ZERO, addr=addr + 1)
            self.release(value)
        self.emit("call", target=callee_name)
        if ins.dst is not None:
            dst, writeback = self.dest(ins.dst)
            self.move_regs(dst.base, regs.RET_LO, dst.size)
            self.writeback(dst, writeback)

    def _sel_ret(self, ins: IRInstr) -> None:
        if ins.args:
            value_op = ins.args[0]
            if isinstance(value_op, Imm):
                size = self.fn.return_type.element_size
                self.load_imm_into(regs.RET_LO, size, value_op.value)
            else:
                value = self.load_value(value_op)
                self.move_regs(regs.RET_LO, value.base, value.size)
                self.release(value)
        self.emit("ret")

    # -- memory ------------------------------------------------------------------------------------

    def _sel_loadg(self, ins: IRInstr) -> None:
        ref: MemRef = ins.args[0]
        addr = self.addr_of(ref.symbol)
        dst, writeback = self.dest(ins.dst)
        self.emit("lds", rd=dst.base, addr=addr)
        if dst.size == 2:
            self.emit("lds", rd=dst.base + 1, addr=addr + 1)
        self.writeback(dst, writeback)

    def _sel_storeg(self, ins: IRInstr) -> None:
        ref: MemRef = ins.args[0]
        addr = self.addr_of(ref.symbol)
        value = self.load_value(ins.args[1])
        self.emit("sts", rd=value.base, addr=addr)
        if ref.ctype.element_size == 2:
            if value.size == 2:
                self.emit("sts", rd=value.base + 1, addr=addr + 1)
            else:
                self.emit("sts", rd=regs.ZERO, addr=addr + 1)
        self.release(value)

    def _form_z(self, ref: MemRef, index_op) -> None:
        """Z := &ref[index] for a run-time index."""
        base_addr = self.addr_of(ref.symbol)
        element = ref.ctype.element_size
        self.emit("ldi", rd=regs.Z_LO, imm=base_addr & 0xFF)
        self.emit("ldi", rd=regs.Z_HI, imm=(base_addr >> 8) & 0xFF)
        value = self.load_value(index_op)
        hi = value.base + 1 if value.size == 2 else regs.ZERO
        for _ in range(element):  # add the index once per element byte
            self.emit("add", rd=regs.Z_LO, rr=value.base)
            self.emit("adc", rd=regs.Z_HI, rr=hi)
        self.release(value)

    def _sel_loadidx(self, ins: IRInstr) -> None:
        ref, index_op = ins.args
        element = ref.ctype.element_size
        dst, writeback = self.dest(ins.dst)
        if isinstance(index_op, Imm):
            addr = self.addr_of(ref.symbol) + index_op.value * element
            self.emit("lds", rd=dst.base, addr=addr)
            if element == 2:
                self.emit("lds", rd=dst.base + 1, addr=addr + 1)
        else:
            self._form_z(ref, index_op)
            if element == 2:
                self.emit("ld_zp", rd=dst.base)  # post-increment (PIA mode)
                self.emit("ld_z", rd=dst.base + 1)
            else:
                self.emit("ld_z", rd=dst.base)
        self.writeback(dst, writeback)

    def _sel_storeidx(self, ins: IRInstr) -> None:
        ref, index_op, value_op = ins.args
        element = ref.ctype.element_size
        if isinstance(index_op, Imm):
            addr = self.addr_of(ref.symbol) + index_op.value * element
            value = self.load_value(value_op)
            self.emit("sts", rd=value.base, addr=addr)
            if element == 2:
                src_hi = value.base + 1 if value.size == 2 else regs.ZERO
                self.emit("sts", rd=src_hi, addr=addr + 1)
            self.release(value)
        else:
            self._form_z(ref, index_op)
            value = self.load_value(value_op)
            if element == 2:
                self.emit("st_zp", rd=value.base)
                src_hi = value.base + 1 if value.size == 2 else regs.ZERO
                self.emit("st_z", rd=src_hi)
            else:
                self.emit("st_z", rd=value.base)
            self.release(value)

    # -- devices ---------------------------------------------------------------------------------------

    def _sel_ioread(self, ins: IRInstr) -> None:
        port_name = ins.args[0]
        dst, writeback = self.dest(ins.dst)
        if port_name == "adc":
            self.emit("in", rd=dst.base, rr=devices.PORT_ADC_LO)
            if dst.size == 2:
                self.emit("in", rd=dst.base + 1, rr=devices.PORT_ADC_HI)
        elif port_name == "timer":
            self.emit("in", rd=dst.base, rr=devices.PORT_TIMER)
        elif port_name == "led":
            self.emit("in", rd=dst.base, rr=devices.PORT_LED)
        else:  # pragma: no cover
            raise SelectionError(f"cannot read port {port_name!r}")
        self.writeback(dst, writeback)

    def _sel_iowrite(self, ins: IRInstr) -> None:
        port_name, value_op = ins.args
        value = self.load_value(value_op)
        if port_name == "led":
            self.emit("out", rd=value.base, rr=devices.PORT_LED)
        elif port_name == "radio":
            self.emit("out", rd=value.base, rr=devices.PORT_RADIO_LO)
            hi = value.base + 1 if value.size == 2 else regs.ZERO
            self.emit("out", rd=hi, rr=devices.PORT_RADIO_HI)
        else:  # pragma: no cover
            raise SelectionError(f"cannot write port {port_name!r}")
        self.release(value)


def select_function(
    fn: IRFunction,
    record: AllocationRecord,
    layout: DataLayout,
    module: IRModule,
) -> list[MachineInstr]:
    """Lower one function; the first element is its entry label."""
    return FunctionSelector(fn, record, layout, module).select()


def select_module(
    module: IRModule,
    records: dict[str, AllocationRecord],
    layout: DataLayout,
) -> list[MachineInstr]:
    """Lower a whole module, functions in definition order."""
    out: list[MachineInstr] = []
    for name, fn in module.functions.items():
        out.extend(select_function(fn, records[name], layout, module))
    return out
