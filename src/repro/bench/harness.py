"""Benchmark harness: run pinned workloads, emit ``BENCH_<area>.json``.

Measurement protocol, per workload:

1. ``setup()`` builds the payload once (untimed, mode-independent);
2. ``reps`` rounds alternate the fast path and the reference path
   (:mod:`repro.fastpath`) back to back, so machine noise — frequency
   scaling, a neighbour stealing the core — hits both paths alike;
3. every single run's digest is checked against every other run's:
   a fast/reference divergence aborts the bench with
   :class:`DigestMismatch` rather than producing a report.

The report is schema-versioned JSON (``repro-bench/1``): per-workload
median/p90/min wall milliseconds for both paths, the answer digest,
workload metrics (constraint counts, iterations, script sizes), the
median speedup, and process peak RSS.  ``tools/check_bench.py``
compares a fresh report against the committed baseline in
``benchmarks/baselines/``.
"""

from __future__ import annotations

import json
import math
import platform
import resource
import time
from pathlib import Path

from ..fastpath import reference_mode
from .workloads import AREAS, EQUAL_METRICS, Workload, workloads_for

SCHEMA = "repro-bench/1"

#: (full, quick) measurement rounds per area.  Quick mode runs the
#: *same* workloads — digests stay comparable with the baseline — just
#: fewer times.
DEFAULT_REPS = {
    "compile": (5, 2),
    "ilp": (5, 2),
    "diff": (5, 2),
    "campaign": (3, 1),
    "dissemination": (3, 1),
    "versioning": (3, 1),
    "profiles": (3, 1),
}


class DigestMismatch(AssertionError):
    """The fast path and the reference path disagreed on an answer."""


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _p90(values: list[float]) -> float:
    ordered = sorted(values)
    index = max(0, math.ceil(0.9 * len(ordered)) - 1)
    return ordered[index]


def _stats_ms(samples: list[float]) -> dict:
    return {
        "median_ms": round(_median(samples) * 1000.0, 3),
        "p90_ms": round(_p90(samples) * 1000.0, 3),
        "min_ms": round(min(samples) * 1000.0, 3),
    }


def _timed(workload: Workload, payload: object) -> "tuple[float, str, dict]":
    start = time.perf_counter()
    digest, metrics = workload.job(payload)
    return time.perf_counter() - start, digest, metrics


def run_workload(workload: Workload, reps: int) -> dict:
    """Measure one workload; raise :class:`DigestMismatch` if the two
    paths ever disagree on the digest or a pinned-equal metric."""
    payload = workload.setup()
    fast_times: list[float] = []
    ref_times: list[float] = []
    digest = None
    fast_metrics: dict = {}
    ref_metrics: dict = {}
    # One untimed warm-up round per path: the first execution pays
    # allocator growth and cold caches that would skew the first rep.
    workload.job(payload)
    with reference_mode(True):
        workload.job(payload)
    for _ in range(reps):
        elapsed, fast_digest, fast_metrics = _timed(workload, payload)
        fast_times.append(elapsed)
        with reference_mode(True):
            elapsed, ref_digest, ref_metrics = _timed(workload, payload)
        ref_times.append(elapsed)
        if fast_digest != ref_digest:
            raise DigestMismatch(
                f"{workload.name}: fast digest {fast_digest[:16]}… != "
                f"reference digest {ref_digest[:16]}…"
            )
        if digest is not None and fast_digest != digest:
            raise DigestMismatch(
                f"{workload.name}: digest changed between reps "
                f"({digest[:16]}… → {fast_digest[:16]}…)"
            )
        digest = fast_digest
        for key in EQUAL_METRICS:
            if key in fast_metrics and fast_metrics[key] != ref_metrics.get(key):
                raise DigestMismatch(
                    f"{workload.name}: metric {key!r} diverged "
                    f"(fast={fast_metrics[key]!r}, reference={ref_metrics.get(key)!r})"
                )
    fast = _stats_ms(fast_times)
    reference = _stats_ms(ref_times)
    speedup = reference["median_ms"] / fast["median_ms"] if fast["median_ms"] else 1.0
    return {
        "name": workload.name,
        "digest": digest,
        "metrics": {
            key: value
            for key, value in fast_metrics.items()
            if key in EQUAL_METRICS or not key.startswith("time_")
        },
        "fast": fast,
        "reference": reference,
        "speedup_median": round(speedup, 3),
    }


def run_area(area: str, reps: int | None = None, quick: bool = False) -> dict:
    """Run every pinned workload of ``area`` and build its report."""
    if area not in AREAS:
        raise ValueError(f"unknown bench area {area!r}; expected one of {AREAS}")
    if reps is None:
        full, fast_reps = DEFAULT_REPS[area]
        reps = fast_reps if quick else full
    rows = [run_workload(workload, reps) for workload in workloads_for(area)]
    speedups = [row["speedup_median"] for row in rows]
    return {
        "schema": SCHEMA,
        "area": area,
        "reps": reps,
        "quick": quick,
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "workloads": rows,
        "summary": {
            "workloads": len(rows),
            "median_speedup": round(_median(speedups), 3),
            "min_speedup": round(min(speedups), 3),
        },
    }


def report_path(area: str, out_dir: "str | Path") -> Path:
    return Path(out_dir) / f"BENCH_{area}.json"


def write_report(report: dict, out_dir: "str | Path") -> Path:
    """Write ``BENCH_<area>.json`` under ``out_dir`` (created if needed)."""
    path = report_path(report["area"], out_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path
