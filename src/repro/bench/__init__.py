"""Machine-readable benchmark harness (``repro bench``).

Runs pinned workloads from the paper's experiments — the Figure 8
programs, the Figure 13-15 ILP jobs, the Figure 9 update cases, and the
Figure 10 fleet batch — on both the fast path and the reference path
(:mod:`repro.fastpath`), certifies the answers digest-identical, and
emits schema-versioned ``BENCH_<area>.json`` reports that
``tools/check_bench.py`` compares against the committed baselines in
``benchmarks/baselines/``.
"""

from .harness import (
    DEFAULT_REPS,
    SCHEMA,
    DigestMismatch,
    report_path,
    run_area,
    run_workload,
    write_report,
)
from .workloads import AREAS, EQUAL_METRICS, Workload, workloads_for

__all__ = [
    "AREAS",
    "DEFAULT_REPS",
    "DigestMismatch",
    "EQUAL_METRICS",
    "SCHEMA",
    "Workload",
    "report_path",
    "run_area",
    "run_workload",
    "workloads_for",
    "write_report",
]
