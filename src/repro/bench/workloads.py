"""Pinned benchmark workloads, one list per area.

Each workload is a named, deterministic unit of work drawn from the
paper's experiments:

* ``compile`` — the Figure 8 benchmark programs, compiled end to end
  (front end, register allocation, selection, assembly);
* ``ilp``     — the Figure 13-15 ILP jobs: build the chunk model for a
  synthetic straight-line function of pinned size, lower it, and solve
  it with the instrumented branch & bound;
* ``diff``    — the Figure 9 update cases, planned end to end to an
  edit script;
* ``campaign`` — the Figure 10 / acceptance 16-job fleet batch through
  :class:`~repro.service.FleetUpdateService`, cold and warm;
* ``dissemination`` — the event-kernel protocols
  (``docs/SIMULATOR.md``): the pinned lossy 1k-node flood-vs-Trickle
  comparison whose committed baseline records the transmission ratio,
  a 5k-node Trickle convergence (the CI smoke workload), and a flood
  campaign run whose fast path is the kernel driver and whose
  reference path is the legacy round loop — the harness's digest
  cross-check *is* the kernel-vs-legacy identity certification;
* ``versioning`` — the version-graph planner (``docs/VERSIONING.md``):
  the pinned lossy 1k-node fleet with cohorts at v3/v5/v6 converging
  to v7, run once with the planner's plans and once with forced full
  images (the committed baseline pins the planner's modeled energy
  advantage), plus the coded-vs-NACK transfer comparison whose
  baseline pins the fountain code's transmission advantage;
* ``profiles`` — the adversarial device profiles
  (``docs/SIMULATOR.md``): the Mica2 neutrality check (a profiled
  campaign byte-identical to an unprofiled one), the LoRaWAN DR3
  duty-cycle campaign whose baseline pins the deferral count and zero
  airtime violations, and the battery-less harvest campaign whose
  baseline pins brownout/resume counts and the fleet lifetime
  metrics.  Every workload runs through both the kernel driver and
  the legacy round loop, so the digest cross-check certifies the two
  profile implementations identical.

A workload's ``job`` callable returns ``(digest, metrics)``.  The
digest must be a pure function of the answer (never of wall time), so
the harness can run the same job on the fast and the reference path
(:mod:`repro.fastpath`) and certify the answers bit-identical while it
measures the speedup.  ``metrics`` entries named in
``EQUAL_METRICS`` are asserted equal between the two paths as well
(iteration counts are guaranteed equal by the kernel contract).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable

from ..config import CompileConfig, FleetJob, UpdateConfig
from ..core import compile_source, plan_update
from ..core.compiler import Compiler, CompilerOptions
from ..energy import DEFAULT_ENERGY_MODEL
from ..ilp.branch_bound import solve_branch_bound
from ..ilp.canonical import SOLVE_CACHE
from ..ir import analyze, static_frequencies
from ..regalloc import allocate_ucc_greedy, build_chunk_model
from ..regalloc.chunks import changed_indices
from ..regalloc.ilp_ra import build_spec_for_chunk
from ..workloads import CASES
from ..workloads.programs import PROGRAMS

AREAS = (
    "compile",
    "ilp",
    "diff",
    "campaign",
    "dissemination",
    "versioning",
    "profiles",
)

#: Metric keys that must be equal between the fast and reference runs
#: of one workload (on top of the digest, which always must).
EQUAL_METRICS = ("constraints", "variables", "simplex_iterations", "lp_solves")


@dataclass(frozen=True)
class Workload:
    """One pinned unit of work.

    ``setup`` builds the (mode-independent) payload once; ``job`` runs
    the measured work and returns ``(digest, metrics)``.
    """

    name: str
    setup: Callable[[], object]
    job: Callable[[object], "tuple[str, dict]"]


def _sha(payload: object) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# ilp: Figure 13-15 jobs
# ---------------------------------------------------------------------------

#: Statement counts of the pinned Figure 13-15 sweep.
ILP_SIZES = (8, 12, 16, 20, 24, 32)


def synthetic_chunk_source(n_stmts: int, n_vars: int = 3) -> str:
    """A straight-line function of ``n_stmts`` statements over
    ``n_vars`` u8 locals — the same shape the Figure 13-15 benchmarks
    sweep (``benchmarks/conftest.py``)."""
    decls = "\n    ".join(f"u8 v{i} = {i + 1};" for i in range(n_vars))
    ops = ["+", "^", "|", "&", "-"]
    lines = []
    for s in range(n_stmts):
        dst = s % n_vars
        lhs = (s + 1) % n_vars
        rhs = (s + 2) % n_vars
        op = ops[s % len(ops)]
        lines.append(f"v{dst} = v{lhs} {op} v{rhs};")
    body = "\n    ".join(lines)
    uses = " ^ ".join(f"v{i}" for i in range(n_vars))
    return f"""
void f() {{
    {decls}
    {body}
    led_set({uses});
}}
void main() {{ f(); halt(); }}
"""


def ilp_spec(n_stmts: int, candidates: int = 3):
    """The chunk-allocation ILP spec for a synthetic function of
    ``n_stmts`` statements."""
    source = synthetic_chunk_source(n_stmts)
    old = compile_source(source)
    module = Compiler(CompilerOptions()).front_and_middle(source)
    fn = module.functions["f"]
    record, report = allocate_ucc_greedy(
        fn, old.module.functions["f"], old.records["f"]
    )
    info = analyze(fn)
    freqs = static_frequencies(fn)
    changed = changed_indices(fn, report.match)
    return build_spec_for_chunk(
        fn,
        info,
        record,
        report,
        0,
        len(fn.instrs),
        changed,
        freqs,
        DEFAULT_ENERGY_MODEL,
        1000.0,
        candidates,
    )


def _ilp_job(spec) -> "tuple[str, dict]":
    program = build_chunk_model(spec)
    result = solve_branch_bound(program)
    digest = _sha(
        {
            "status": result.status,
            "values": sorted(result.values.items()),
            "objective": repr(result.objective),
        }
    )
    return digest, {
        "variables": program.num_variables,
        "constraints": program.num_constraints,
        "simplex_iterations": result.stats.simplex_iterations,
        "lp_solves": result.stats.lp_solves,
        "time_per_iteration_us": round(result.stats.time_per_iteration * 1e6, 3),
    }


def _ilp_workloads() -> list[Workload]:
    return [
        Workload(
            name=f"fig13_15_n{size:02d}",
            setup=(lambda size=size: ilp_spec(size)),
            job=_ilp_job,
        )
        for size in ILP_SIZES
    ]


# ---------------------------------------------------------------------------
# compile: Figure 8 programs
# ---------------------------------------------------------------------------


def _compile_job(source: str) -> "tuple[str, dict]":
    program = compile_source(source)
    image = program.image
    digest = _sha(
        {
            "code": hashlib.sha256(image.to_bytes()).hexdigest(),
            "data": hashlib.sha256(image.data).hexdigest(),
            "entry": image.entry,
        }
    )
    return digest, {
        "instructions": image.instruction_count(),
        "size_bytes": image.size_bytes,
    }


def _compile_workloads() -> list[Workload]:
    return [
        Workload(
            name=f"fig08_{name}",
            setup=(lambda name=name: PROGRAMS[name]),
            job=_compile_job,
        )
        for name in sorted(PROGRAMS)
    ]


# ---------------------------------------------------------------------------
# diff: Figure 9 update cases
# ---------------------------------------------------------------------------

#: Update cases of the Figure 9 grid the diff area re-plans (the full
#: grid lives in ``benchmarks/test_fig09_update_cases.py``; these six
#: span data-only, code-only, and mixed edits).
DIFF_CASE_IDS = ("1", "3", "6", "9", "12", "13")


def _diff_job(payload) -> "tuple[str, dict]":
    old, new_source = payload
    # The process-wide solve memo would let later reps skip the work
    # earlier reps already paid for; start every rep cold.
    SOLVE_CACHE.clear()
    result = plan_update(old, new_source, config=UpdateConfig(ra="ucc", da="ucc"))
    script = result.diff.script
    blob = script.to_bytes()
    digest = _sha(
        {
            "script": hashlib.sha256(blob).hexdigest(),
            "data": hashlib.sha256(result.data_script.to_bytes()).hexdigest(),
        }
    )
    return digest, {
        "script_bytes": len(blob),
        "diff_inst": result.diff.diff_inst,
    }


def _diff_workloads() -> list[Workload]:
    def make_setup(case_id):
        def setup():
            case = CASES[case_id]
            return compile_source(case.old_source), case.new_source

        return setup

    return [
        Workload(name=f"fig09_case{case_id}", setup=make_setup(case_id), job=_diff_job)
        for case_id in DIFF_CASE_IDS
    ]


# ---------------------------------------------------------------------------
# campaign: the 16-job fleet batch, cold and warm
# ---------------------------------------------------------------------------

#: (case_id, ra, da) grid of the acceptance batch — 16 jobs over the
#: Figure 9 cases, mirroring ``tests/test_service.py``.
CAMPAIGN_GRID = tuple(
    (case_id, ra, da)
    for case_id in ("1", "3", "6", "9")
    for ra, da in (("ucc", "ucc"), ("ucc-ilp", "ucc"), ("gcc", "gcc"), ("linear", "ucc"))
)


def _campaign_jobs() -> list[FleetJob]:
    jobs = []
    for case_id, ra, da in CAMPAIGN_GRID:
        case = CASES[case_id]
        jobs.append(
            FleetJob(
                old_source=case.old_source,
                new_source=case.new_source,
                compile=CompileConfig(),
                update=UpdateConfig(ra=ra, da=da),
                topology=None,
                job_id=f"case{case_id}/{ra}/{da}",
            )
        )
    return jobs


def _campaign_job(jobs) -> "tuple[str, dict]":
    # A fresh service per run: the measured unit is the cold batch plus
    # the warm-cache replay (the paper's fleet re-acceptance pattern).
    # Clear the process-wide solve memo so every rep pays the same
    # cold-batch ILP work.
    from ..service import FleetUpdateService

    SOLVE_CACHE.clear()
    service = FleetUpdateService(workers=1)
    cold = service.run(jobs)
    warm = service.run(jobs)
    cold_metrics = [outcome.key_metrics() for outcome in cold.outcomes]
    warm_metrics = [outcome.key_metrics() for outcome in warm.outcomes]
    digest = _sha({"cold": cold_metrics, "warm": warm_metrics})
    return digest, {
        "jobs": len(jobs),
        "ok": int(cold.ok and warm.ok),
        "job_cache_hits": warm.job_cache_hits,
    }


def _campaign_workloads() -> list[Workload]:
    return [
        Workload(name="fig10_batch16", setup=_campaign_jobs, job=_campaign_job)
    ]


# ---------------------------------------------------------------------------
# dissemination: event-kernel protocols (docs/SIMULATOR.md)
# ---------------------------------------------------------------------------

#: The pinned 600-byte script blob every dissemination workload pushes
#: (28 packets at the default 22-byte payload).
DISSEMINATION_BLOB = bytes(range(256)) * 2 + bytes(88)


def _flood_vs_trickle_payload():
    from ..diff.packets import DEFAULT_OVERHEAD, DEFAULT_PAYLOAD, Packetisation
    from ..net.topology import random_geometric

    topology = random_geometric(1000, radio_range=0.1, seed=3)
    packets = Packetisation(
        len(DISSEMINATION_BLOB), DEFAULT_PAYLOAD, DEFAULT_OVERHEAD
    )
    return topology, packets


def _flood_vs_trickle_job(payload) -> "tuple[str, dict]":
    from ..net.lossy import disseminate_lossy
    from ..net.trickle import run_trickle

    topology, packets = payload
    flood = disseminate_lossy(topology, packets, loss=0.15, seed=3)
    trickle = run_trickle(
        topology, DISSEMINATION_BLOB, loss=0.15, seed=3, max_time=600.0
    )
    digest = _sha(
        {
            "flood": {
                "broadcasts": flood.broadcasts,
                "nacks": flood.nacks,
                "rounds": flood.rounds,
                "complete": flood.complete,
            },
            "trickle": trickle.digest(),
        }
    )
    return digest, {
        "flood_broadcasts": flood.broadcasts,
        "trickle_transmissions": trickle.transmissions,
        "trickle_beacons": trickle.beacons,
        "tx_ratio": round(flood.broadcasts / trickle.transmissions, 2),
    }


def _trickle_5k_payload():
    from ..net.topology import grid

    return grid(72, 70)


def _trickle_5k_job(topology) -> "tuple[str, dict]":
    from ..net.kernel import rounds_equivalent
    from ..net.trickle import run_trickle

    report = run_trickle(
        topology, DISSEMINATION_BLOB, loss=0.05, seed=5, max_time=600.0
    )
    return report.digest(), {
        "converged": int(report.converged),
        "transmissions": report.transmissions,
        "beacons": report.beacons,
        "events": report.events,
        "rounds_equivalent": rounds_equivalent(report.time_s, 1.0),
    }


def _campaign_parity_payload():
    from ..net.faults import FaultPlan, NodeCrash, PartitionWindow
    from ..net.topology import grid

    plan = FaultPlan(
        crashes=(NodeCrash(7, 2, reboot_round=5), NodeCrash(23, 4, reboot_round=9)),
        partitions=(PartitionWindow(3, 7, (40, 41, 42, 52, 53, 54)),),
        corrupt_prob=0.01,
        duplicate_prob=0.02,
        seed=11,
    )
    return grid(12, 12), plan


def _campaign_parity_job(payload) -> "tuple[str, dict]":
    # The fast path drives the rounds through the event kernel, the
    # reference path through the legacy while-loop: the harness's
    # digest cross-check certifies them byte-identical every rep.
    from ..net.campaign import run_campaign

    topology, plan = payload
    report = run_campaign(topology, DISSEMINATION_BLOB, plan, loss=0.1, seed=7)
    return report.digest(), {
        "converged": int(report.converged),
        "rounds": report.rounds,
        "quarantined": len(report.quarantined),
    }


def _dissemination_workloads() -> list[Workload]:
    return [
        Workload(
            name="lossy1k_flood_vs_trickle",
            setup=_flood_vs_trickle_payload,
            job=_flood_vs_trickle_job,
        ),
        Workload(
            name="grid5k_trickle",
            setup=_trickle_5k_payload,
            job=_trickle_5k_job,
        ),
        Workload(
            name="campaign_kernel_parity",
            setup=_campaign_parity_payload,
            job=_campaign_parity_job,
        ),
    ]


# ---------------------------------------------------------------------------
# versioning: cohort planner + coded transfer (docs/VERSIONING.md)
# ---------------------------------------------------------------------------

#: Version labels of the pinned release history (AES-128, the largest
#: paper workload at ~1.2 kB of image — full images are expensive, the
#: edits between releases are a handful of bytes).
VERSIONING_LABELS = (3, 5, 6, 7)


def _versioning_releases() -> dict:
    case = CASES["10"]
    v3, v5 = case.old_source, case.new_source
    v6 = v5.replace("u16 blocks_done = 0;", "u16 blocks_done = 1;")
    v7 = v5.replace("u16 blocks_done = 0;", "u16 blocks_done = 2;").replace(
        "blocks_done = blocks_done + 1;", "blocks_done = blocks_done + 2;"
    )
    return {3: v3, 5: v5, 6: v6, 7: v7}


def _cohort_planner_payload():
    from ..config import CohortPlan, VersionGraphConfig
    from ..net.topology import random_geometric
    from ..versioning import build_version_graph, plan_cohorts
    from ..versioning.planner import predicted_wave_energy_j

    topology = random_geometric(1000, radio_range=0.1, seed=3)
    graph = build_version_graph(
        _versioning_releases(), config=VersionGraphConfig(loss=0.15)
    )
    fleet = {0: 7}
    for node in range(1, 1000):
        fleet[node] = (3, 5, 6)[node % 3]
    plans = plan_cohorts(graph, fleet)
    full_plans = tuple(
        CohortPlan(
            from_version=plan.from_version,
            to_version=plan.to_version,
            nodes=plan.nodes,
            strategy="full",
            path=(plan.from_version, plan.to_version),
            script_bytes=graph.full_edge(
                plan.from_version, plan.to_version
            ).script_bytes,
            predicted_energy_j=predicted_wave_energy_j(
                graph.full_edge(plan.from_version, plan.to_version).script_bytes,
                node_count=1000,
                mean_degree=4.0,
                config=graph.config,
            ),
        )
        for plan in plans
    )
    return topology, graph, plans, full_plans


def _cohort_planner_job(payload) -> "tuple[str, dict]":
    from ..versioning import run_versioned_campaign

    topology, graph, plans, full_plans = payload
    planned = run_versioned_campaign(graph, plans, topology, loss=0.15, seed=3)
    full = run_versioned_campaign(graph, full_plans, topology, loss=0.15, seed=3)
    digest = _sha({"planned": planned.digest(), "full": full.digest()})
    return digest, {
        "planned_energy_j": round(planned.total_energy_j, 4),
        "full_energy_j": round(full.total_energy_j, 4),
        "energy_ratio": round(full.total_energy_j / planned.total_energy_j, 2),
        "converged": int(planned.converged and full.converged),
        "replay_identical": int(planned.replay_identical and full.replay_identical),
    }


def _coded_vs_nack_payload():
    from ..diff.packets import DEFAULT_OVERHEAD, DEFAULT_PAYLOAD, Packetisation
    from ..net.topology import random_geometric

    topology = random_geometric(1000, radio_range=0.1, seed=3)
    packets = Packetisation(
        len(DISSEMINATION_BLOB), DEFAULT_PAYLOAD, DEFAULT_OVERHEAD
    )
    return topology, packets


def _coded_vs_nack_job(payload) -> "tuple[str, dict]":
    from ..net.coding import CodedTransferParams, run_coded_campaign
    from ..net.lossy import disseminate_lossy

    topology, packets = payload
    nack = disseminate_lossy(topology, packets, loss=0.15, seed=3)
    coded = run_coded_campaign(
        topology,
        DISSEMINATION_BLOB,
        params=CodedTransferParams(burst=16),
        loss=0.15,
        seed=3,
    )
    digest = _sha(
        {
            "nack": {
                "broadcasts": nack.broadcasts,
                "nacks": nack.nacks,
                "rounds": nack.rounds,
                "complete": nack.complete,
            },
            "coded": coded.digest(),
        }
    )
    nack_tx = nack.broadcasts + nack.nacks
    return digest, {
        "nack_tx": nack_tx,
        "coded_tx": coded.broadcasts,
        "tx_ratio": round(nack_tx / coded.broadcasts, 2),
        "coded_converged": int(coded.converged),
    }


# ---------------------------------------------------------------------------
# profiles: adversarial device profiles (docs/SIMULATOR.md)
# ---------------------------------------------------------------------------

#: The 2048-byte blob every profiles workload pushes — 32 flash pages
#: at the battery-less profile's 64-byte page, heavy enough that the
#: 0.05 J capacitor browns out mid-apply.
PROFILES_BLOB = bytes(range(256)) * 8


def _profiles_payload():
    from ..net.topology import grid

    return grid(6, 6)


def _mica2_parity_job(topology) -> "tuple[str, dict]":
    from ..net.campaign import run_campaign
    from ..net.profiles import MICA2_PROFILE

    profiled = run_campaign(
        topology, PROFILES_BLOB, loss=0.1, seed=7, profile=MICA2_PROFILE
    )
    plain = run_campaign(topology, PROFILES_BLOB, loss=0.1, seed=7)
    parity = int(profiled.to_json() == plain.to_json())
    digest = _sha({"report": profiled.digest(), "parity": parity})
    return digest, {
        "parity": parity,
        "converged": int(profiled.converged),
        "rounds": profiled.rounds,
    }


def _lorawan_budget_job(topology) -> "tuple[str, dict]":
    from ..net.campaign import run_campaign
    from ..net.profiles import LORAWAN_DR3

    report = run_campaign(
        topology,
        PROFILES_BLOB,
        loss=0.1,
        seed=7,
        max_rounds=3000,
        profile=LORAWAN_DR3,
    )
    stats = report.profile_stats or {}
    return report.digest(), {
        "converged": int(report.converged),
        "rounds": report.rounds,
        "airtime_deferrals": stats.get("airtime_deferrals"),
        "airtime_violations": stats.get("airtime_violations"),
    }


def _batteryless_job(topology) -> "tuple[str, dict]":
    from ..net.campaign import run_campaign
    from ..net.profiles import BATTERYLESS_HARVEST

    report = run_campaign(
        topology,
        PROFILES_BLOB,
        loss=0.1,
        seed=7,
        max_rounds=3000,
        profile=BATTERYLESS_HARVEST,
    )
    stats = report.profile_stats or {}
    return report.digest(), {
        "converged": int(report.converged),
        "rounds": report.rounds,
        "brownouts": stats.get("brownouts"),
        "resumed_applies": stats.get("resumed_applies"),
        "first_node_death_s": stats.get("first_node_death_s"),
    }


def _profiles_workloads() -> list[Workload]:
    return [
        Workload(
            name="mica2_profile_parity",
            setup=_profiles_payload,
            job=_mica2_parity_job,
        ),
        Workload(
            name="lorawan_dr3_budget",
            setup=_profiles_payload,
            job=_lorawan_budget_job,
        ),
        Workload(
            name="batteryless_brownout_resume",
            setup=_profiles_payload,
            job=_batteryless_job,
        ),
    ]


def _versioning_workloads() -> list[Workload]:
    return [
        Workload(
            name="lossy1k_cohorts",
            setup=_cohort_planner_payload,
            job=_cohort_planner_job,
        ),
        Workload(
            name="lossy1k_coded_vs_nack",
            setup=_coded_vs_nack_payload,
            job=_coded_vs_nack_job,
        ),
    ]


def workloads_for(area: str) -> list[Workload]:
    """The pinned workload list of one area."""
    if area == "compile":
        return _compile_workloads()
    if area == "ilp":
        return _ilp_workloads()
    if area == "diff":
        return _diff_workloads()
    if area == "campaign":
        return _campaign_workloads()
    if area == "dissemination":
        return _dissemination_workloads()
    if area == "versioning":
        return _versioning_workloads()
    if area == "profiles":
        return _profiles_workloads()
    raise ValueError(f"unknown bench area {area!r}; expected one of {AREAS}")
