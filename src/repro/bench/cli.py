"""``repro bench`` — run the pinned benchmark areas and write reports.

Mirrors the ``repro lint`` wiring: :func:`add_arguments` attaches the
flags to the subparser in :mod:`repro.cli`, :func:`run` is the
``func`` default.
"""

from __future__ import annotations

import argparse
import sys

from .harness import DigestMismatch, run_area, write_report
from .workloads import AREAS

DEFAULT_OUT = "benchmarks/out"


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--area",
        choices=AREAS + ("all",),
        default="all",
        help="benchmark area to run (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer measurement rounds per workload (same workloads, "
             "so digests stay comparable with the committed baseline)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=None,
        help="override the measurement rounds per workload",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        metavar="DIR",
        help=f"directory for BENCH_<area>.json (default: {DEFAULT_OUT})",
    )


def run(args: argparse.Namespace) -> int:
    areas = AREAS if args.area == "all" else (args.area,)
    for area in areas:
        try:
            report = run_area(area, reps=args.reps, quick=args.quick)
        except DigestMismatch as exc:
            print(f"bench {area}: DIGEST MISMATCH — {exc}", file=sys.stderr)
            return 1
        path = write_report(report, args.out)
        summary = report["summary"]
        print(
            f"bench {area}: {summary['workloads']} workloads, "
            f"median speedup {summary['median_speedup']:.2f}x "
            f"(min {summary['min_speedup']:.2f}x) -> {path}"
        )
    return 0
