"""UCC-DA: threshold-based update-conscious data allocation (paper §4).

The algorithm:

1. Variables present in both versions keep their old address — no
   instruction that addresses them needs re-encoding.
2. Deleted variables are not compacted away; their bytes become *holes*.
3. New variables first fill holes (so a rename — deletion plus
   insertion — naturally lands the new name in the old slot, the
   property §5.7 highlights), then extend the segment.
4. If holes remain, the wasted runtime memory is
   ``sum(Extra_i * Depth_i)`` over owning functions (eq. 16).  While it
   exceeds the threshold ``SpaceT``, relocate the *last* variable of the
   function maximising ``Depth_j / Usage_j(last)`` (eq. 17) into a hole
   — the victim that frees the most runtime memory per re-encoded
   instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .layout import DataLayout, Hole, LayoutObject


@dataclass
class UCCDAReport:
    """Diagnostics: what the algorithm did, for tests and benches."""

    reused_holes: list[str] = field(default_factory=list)
    appended: list[str] = field(default_factory=list)
    relocated: list[str] = field(default_factory=list)
    wasted_before: int = 0
    wasted_after: int = 0


def allocate_ucc_da(
    objects: list[LayoutObject],
    old_layout: DataLayout,
    space_threshold: int = 0,
) -> tuple[DataLayout, UCCDAReport]:
    """Lay out ``objects`` update-consciously against ``old_layout``.

    ``space_threshold`` is the paper's ``SpaceT`` in bytes of projected
    runtime waste; 0 demands full reclamation (the paper's Figure 7
    walk-through uses ``SpaceT = 0``).
    """
    report = UCCDAReport()
    layout = DataLayout(algorithm="ucc-da")
    layout.segment_base = old_layout.segment_base
    by_uid = {obj.uid: obj for obj in objects}

    # 1. Survivors keep their addresses.
    survivors = [uid for uid in old_layout.addresses if uid in by_uid]
    for uid in survivors:
        obj = by_uid[uid]
        layout.objects[uid] = obj
        layout.addresses[uid] = old_layout.addresses[uid]

    # 2. Deleted variables leave holes.  Each hole remembers its former
    #    owner (for eq. 16) and the deleted variable's static reference
    #    count, which guides role matching below.
    holes: list[tuple[int, int, str | None, int]] = []
    for uid, address in old_layout.addresses.items():
        if uid in by_uid:
            continue
        old_obj = old_layout.objects.get(uid)
        size = old_obj.size if old_obj else 1
        owner = old_obj.function if old_obj else None
        usage = old_obj.usage if old_obj else 0
        holes.append((address, size, owner, usage))
    holes.sort()

    segment_end = max(
        [old_layout.segment_end]
        + [layout.addresses[uid] + by_uid[uid].size for uid in survivors]
    )

    def take_hole(size: int, usage: int = -1) -> int | None:
        """Hole selection with role matching.

        Preference order: exact size with matching reference count (a
        renamed variable naturally reclaims its old slot, maximising
        code similarity — §5.7), then exact size, then first fit
        (splitting the hole).
        """
        exact = [i for i, h in enumerate(holes) if h[1] == size]
        same_role = [i for i in exact if holes[i][3] == usage]
        fitting = same_role or exact or [
            i for i, h in enumerate(holes) if h[1] > size
        ]
        if not fitting:
            return None
        index = fitting[0]
        address, hole_size, owner, hole_usage = holes.pop(index)
        if hole_size > size:
            holes.insert(index, (address + size, hole_size - size, owner, hole_usage))
        return address

    # 3. New variables: fill holes first, then extend the segment.
    new_objects = [obj for obj in objects if obj.uid not in layout.addresses]
    for obj in new_objects:
        layout.objects[obj.uid] = obj
        address = take_hole(obj.size, obj.usage)
        if address is not None:
            layout.addresses[obj.uid] = address
            report.reused_holes.append(obj.uid)
        else:
            layout.addresses[obj.uid] = segment_end
            segment_end += obj.size
            report.appended.append(obj.uid)

    # Holes at the very tail are not waste: the segment just shrinks.
    holes, segment_end = _trim_tail(holes, segment_end)

    # 4. Threshold-based relocation (eqs. 16-17).
    report.wasted_before = sum(h[1] for h in holes)

    def wasted_weighted() -> int:
        return sum(h[1] * _depth_of(h[2], objects) for h in holes)

    # Progress guarantee: a victim only ever moves *down* (into a hole
    # below its current address), so the sum of addresses strictly
    # decreases and the loop terminates; a belt-and-braces cap bounds it
    # regardless.
    max_relocations = 4 * max(1, len(objects))
    while holes and wasted_weighted() > space_threshold:
        if len(report.relocated) >= max_relocations:
            break
        victim = _pick_relocation_victim(layout, holes, objects)
        if victim is None:
            break
        old_address = layout.addresses[victim.uid]
        address = take_hole_below(holes, victim.size, old_address)
        if address is None:
            break
        layout.addresses[victim.uid] = address
        report.relocated.append(victim.uid)
        assert address < old_address  # movement is strictly downward
        # The vacated range at the segment tail becomes reclaimable; if
        # the victim was the last object, the segment shrinks, otherwise
        # its bytes become a hole like any other.
        if old_address + victim.size == segment_end:
            segment_end = old_address
        else:
            holes.append((old_address, victim.size, victim.function, victim.usage))
            holes.sort()

    holes, segment_end = _trim_tail(holes, segment_end)
    report.wasted_after = sum(h[1] for h in holes)
    layout.holes = [Hole(h[0], h[1]) for h in holes]
    layout.segment_end = segment_end
    layout.check()
    return layout, report


def _trim_tail(holes: list[tuple], segment_end: int) -> tuple[list[tuple], int]:
    """Reclaim holes reaching the segment tail: the segment shrinks
    instead of recording waste.  Iterates because reclaiming one hole
    can expose the next."""
    holes = sorted(holes)
    while holes and holes[-1][0] + holes[-1][1] >= segment_end:
        address, size = holes[-1][0], holes[-1][1]
        if address + size > segment_end:
            break  # stale hole beyond the segment: drop it below
        segment_end = address
        holes.pop()
    # Drop any hole lying entirely at/above the (possibly shrunk) end.
    holes = [h for h in holes if h[0] < segment_end]
    return holes, segment_end


def take_hole_below(holes: list[tuple], size: int, limit: int) -> int | None:
    """First-fit among holes strictly below address ``limit``."""
    fitting = [
        i for i, h in enumerate(holes) if h[1] >= size and h[0] + size <= limit
    ]
    if not fitting:
        return None
    exact = [i for i in fitting if holes[i][1] == size]
    index = (exact or fitting)[0]
    address, hole_size, owner, usage = holes.pop(index)
    if hole_size > size:
        holes.insert(index, (address + size, hole_size - size, owner, usage))
    return address


def _depth_of(owner: str | None, objects: list[LayoutObject]) -> int:
    for obj in objects:
        if obj.function == owner:
            return obj.depth
    return 1


def _pick_relocation_victim(
    layout: DataLayout,
    holes: list[tuple[int, int, str | None]],
    objects: list[LayoutObject],
) -> LayoutObject | None:
    """Eq. 17: over functions with remaining holes, pick the *last*
    variable of the function maximising ``Depth_j / Usage_j(last)``."""
    owners = {h[2] for h in holes}
    best: tuple[float, LayoutObject] | None = None
    hole_addresses = {h[0] for h in holes}
    for owner in owners:
        members = [
            obj
            for obj in objects
            if obj.function == owner
            and obj.uid in layout.addresses
            and layout.addresses[obj.uid] not in hole_addresses
        ]
        if not members:
            continue
        last = max(members, key=lambda o: layout.addresses[o.uid])
        fits = any(
            h[1] >= last.size and h[0] + last.size <= layout.addresses[last.uid]
            for h in holes
        )
        if not fits:
            continue
        score = last.depth / max(1, last.usage)
        if best is None or score > best[0]:
            best = (score, last)
    return best[1] if best else None
