"""GCC-DA: the update-oblivious data-layout baseline.

Paper §5.7 observed that *"the data allocation scheme in gcc hashes the
variable into the symbol table using their names"* — so the layout is a
function of the variable *names*, not of the declaration order:
shuffling declarations changes nothing, but renaming a variable (or
adding one) perturbs the hash order and cascades offset changes through
the segment.

We reproduce that with a deterministic name hash (CRC-32 of the uid):
objects are laid out in ascending hash order.  Insertions land at their
hash position and shift everything after them; renames move the object
and shift others; pure shuffles of the source are invisible.
"""

from __future__ import annotations

import zlib

from .layout import DataLayout, LayoutObject


def name_hash(uid: str) -> int:
    """Deterministic stand-in for gcc's symbol-table hash."""
    return zlib.crc32(uid.encode("utf-8"))


def allocate_gcc_da(
    objects: list[LayoutObject], base: int | None = None
) -> DataLayout:
    """Lay out ``objects`` in name-hash order, densely packed."""
    layout = DataLayout(algorithm="gcc-da")
    if base is not None:
        layout.segment_base = base
    address = layout.segment_base
    for obj in sorted(objects, key=lambda o: (name_hash(o.uid), o.uid)):
        layout.objects[obj.uid] = obj
        layout.addresses[obj.uid] = address
        address += obj.size
    layout.segment_end = address
    layout.check()
    return layout
