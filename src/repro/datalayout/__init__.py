"""Data layout: GCC-DA baseline and UCC-DA threshold algorithm."""

from .gcc_da import allocate_gcc_da, name_hash
from .layout import (
    DataLayout,
    Hole,
    LayoutObject,
    collect_layout_objects,
    spill_uid,
)
from .ucc_da import UCCDAReport, allocate_ucc_da

__all__ = [
    "DataLayout",
    "Hole",
    "LayoutObject",
    "UCCDAReport",
    "allocate_gcc_da",
    "allocate_ucc_da",
    "collect_layout_objects",
    "name_hash",
    "spill_uid",
]
