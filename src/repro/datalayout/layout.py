"""Data-layout data model.

A *layout object* is anything that occupies data memory and whose
address is embedded in instruction encodings: global scalars and
arrays, per-function parameter slots, spill slots, and local arrays.
Relocating an object re-encodes every ``LDS``/``STS``/address-forming
instruction that touches it — this is the cost the update-conscious
layout algorithm (paper §4) minimises.

The :class:`DataLayout` result maps object uid → byte address and is
persisted inside a compiled program so the next compile can be
update-conscious about it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.function import IRModule
from ..ir.instructions import MemRef
from ..isa import devices


@dataclass
class LayoutObject:
    """One allocatable data object."""

    uid: str
    size: int
    #: owning function name; None for globals (the paper's dummy ``P0``)
    function: str | None = None
    #: static number of instructions referencing the object (paper's
    #: ``Usage_i(a)``)
    usage: int = 0
    #: projected simultaneous activations of the owner (``Depth_i``)
    depth: int = 1
    kind: str = "global"  # global | param | spill | array


@dataclass
class Hole:
    """A free byte range inside the data segment."""

    address: int
    size: int


@dataclass
class DataLayout:
    """Assigned addresses for every layout object."""

    addresses: dict[str, int] = field(default_factory=dict)
    objects: dict[str, LayoutObject] = field(default_factory=dict)
    segment_base: int = devices.DATA_START
    segment_end: int = devices.DATA_START
    holes: list[Hole] = field(default_factory=list)
    algorithm: str = ""

    def address_of(self, uid: str) -> int:
        return self.addresses[uid]

    def extent(self, uid: str) -> tuple[int, int]:
        """Byte range ``[start, end)`` occupied by object ``uid``."""
        address = self.addresses[uid]
        return address, address + self.objects[uid].size

    def __contains__(self, uid: str) -> bool:
        return uid in self.addresses

    @property
    def used_bytes(self) -> int:
        return self.segment_end - self.segment_base

    @property
    def wasted_bytes(self) -> int:
        return sum(h.size for h in self.holes)

    def moved_objects(self, old: "DataLayout") -> list[str]:
        """Objects present in both layouts whose address changed."""
        return sorted(
            uid
            for uid, addr in self.addresses.items()
            if uid in old.addresses and old.addresses[uid] != addr
        )

    def check(self) -> None:
        """Assert that no two objects overlap (defensive invariant)."""
        spans = sorted(
            (addr, addr + self.objects[uid].size, uid)
            for uid, addr in self.addresses.items()
        )
        for (start_a, end_a, uid_a), (start_b, end_b, uid_b) in zip(spans, spans[1:]):
            if end_a > start_b:
                raise ValueError(
                    f"layout overlap: {uid_a} [{start_a},{end_a}) and "
                    f"{uid_b} [{start_b},{end_b})"
                )


def collect_layout_objects(
    module: IRModule,
    spill_orders: dict[str, list[str]] | None = None,
    depths: dict[str, int] | None = None,
) -> list[LayoutObject]:
    """Enumerate every data object of a module, in a deterministic order.

    ``spill_orders`` maps function name → spilled vreg names (from the
    allocation records); ``depths`` overrides per-function ``Depth_i``.
    """
    spill_orders = spill_orders or {}
    depths = depths or {}
    usage = _usage_counts(module)

    objects: list[LayoutObject] = []
    for sym in module.globals:
        objects.append(
            LayoutObject(
                uid=sym.uid,
                size=sym.ctype.size_bytes,
                function=None,
                usage=usage.get(sym.uid, 0),
                depth=1,
                kind="array" if sym.ctype.is_array else "global",
            )
        )
    for fn in module.functions.values():
        depth = depths.get(fn.name, fn.depth)
        for reg in fn.param_vregs:
            objects.append(
                LayoutObject(
                    uid=reg.name,
                    size=reg.ctype.element_size,
                    function=fn.name,
                    usage=usage.get(reg.name, 0) + 1,  # +1: entry load
                    depth=depth,
                    kind="param",
                )
            )
        for sym in fn.local_arrays:
            objects.append(
                LayoutObject(
                    uid=sym.uid,
                    size=sym.ctype.size_bytes,
                    function=fn.name,
                    usage=usage.get(sym.uid, 0),
                    depth=depth,
                    kind="array",
                )
            )
        for name in spill_orders.get(fn.name, []):
            if any(o.uid == name for o in objects):
                continue  # spilled param reuses its param slot
            vreg = next(r for r in fn.vregs() if r.name == name)
            uid = name if "." in name and not name.startswith("$") else f"{fn.name}.{name}"
            objects.append(
                LayoutObject(
                    uid=uid,
                    size=vreg.ctype.element_size,
                    function=fn.name,
                    usage=usage.get(name, 0),
                    depth=depth,
                    kind="spill",
                )
            )
    return objects


def spill_uid(function: str, vreg_name: str) -> str:
    """The layout-object uid of a spilled vreg's memory slot.

    Named locals/params already carry a function-qualified uid; bare
    temporaries (``$3.0``) get qualified here.  Spilled params share
    their parameter slot.
    """
    if "." in vreg_name and not vreg_name.startswith("$"):
        return vreg_name
    return f"{function}.{vreg_name}"


def _usage_counts(module: IRModule) -> dict[str, int]:
    counts: dict[str, int] = {}
    for fn in module.functions.values():
        for ins in fn.instrs:
            seen: set[str] = set()
            for arg in ins.args:
                if isinstance(arg, MemRef):
                    seen.add(arg.symbol)
            for reg in ins.vregs():
                seen.add(reg.name)
            for name in seen:
                counts[name] = counts.get(name, 0) + 1
    return counts
