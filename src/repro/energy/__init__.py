"""Energy models: Mica2 power table and the compile-time cost model."""

from .model import DEFAULT_ENERGY_MODEL, EnergyModel, WORD_BITS
from .power_model import MICA2, PowerModel

__all__ = [
    "DEFAULT_ENERGY_MODEL",
    "EnergyModel",
    "MICA2",
    "PowerModel",
    "WORD_BITS",
]
