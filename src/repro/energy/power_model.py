"""The Mica2 power model (paper Figure 3).

Currents drawn by the Mica2 mote in each operational mode, exactly as
tabulated in the paper (originally from Shnayder et al. [29]).  The
network simulator converts these to joules; the compiler-side energy
model (:mod:`repro.energy.model`) works in normalised units anchored to
the paper's headline ratio — one transmitted bit costs about the same
energy as a thousand executed ALU instructions [28].
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PowerModel:
    """Mica2 electrical characteristics.

    Currents are in amperes, matching paper Figure 3; voltage, CPU
    frequency and radio bitrate come from the Mica2 description in
    paper §2.1.
    """

    cpu_active_a: float = 8.0e-3
    cpu_idle_a: float = 3.2e-3
    cpu_standby_a: float = 216e-6
    leds_a: float = 2.2e-3
    radio_rx_a: float = 7.0e-3
    radio_tx_a: float = 21.5e-3  # Tx at +10 dB
    eeprom_read_a: float = 6.2e-3
    eeprom_write_a: float = 18.4e-3

    voltage_v: float = 3.0
    cpu_hz: float = 7.3e6
    radio_bps: float = 38.4e3

    battery_mah: float = 2700.0

    # -- derived quantities ------------------------------------------------

    @property
    def cycle_energy_j(self) -> float:
        """Energy to execute one CPU cycle while active."""
        return self.cpu_active_a * self.voltage_v / self.cpu_hz

    @property
    def tx_bit_energy_j(self) -> float:
        """Radio energy to transmit one bit."""
        return self.radio_tx_a * self.voltage_v / self.radio_bps

    @property
    def rx_bit_energy_j(self) -> float:
        """Radio energy to receive one bit."""
        return self.radio_rx_a * self.voltage_v / self.radio_bps

    @property
    def tx_bit_per_cycle_ratio(self) -> float:
        """How many CPU cycles one transmitted bit is worth."""
        return self.tx_bit_energy_j / self.cycle_energy_j

    def battery_j(self) -> float:
        """Total battery energy."""
        return self.battery_mah * 1e-3 * 3600.0 * self.voltage_v

    def figure3_rows(self) -> list[tuple[str, str]]:
        """The rows of paper Figure 3, formatted as printed there."""
        return [
            ("CPU active", "8.0mA"),
            ("CPU idle", "3.2mA"),
            ("CPU Standby", "216uA"),
            ("LEDs", "2.2mA"),
            ("Radio Rx", "7 mA"),
            ("Tx(+10dB)", "21.5mA"),
            ("EEPROM read", "6.2mA"),
            ("EEPROM write", "18.4mA"),
        ]


MICA2 = PowerModel()
