"""The compiler-side energy model (paper §2.1, §5.5).

Works in normalised units: executing one ALU cycle costs 1 unit, and
transmitting one bit costs ``bit_cost_ratio`` units (default 1000,
the paper's headline figure [28]).  Everything the update planner and
the UCC-RA objective need derives from these two numbers:

* ``e_exe(instr)``     — execution energy of one machine instruction,
* ``e_trans_words(n)`` — dissemination energy of ``n`` instruction
  words (16 bits each),
* ``diff_energy``      — eq. 18: ``Diff_inst x E_trans +
  Diff_cycle x E_exe x Cnt``,
* ``energy_savings``   — eq. 19: GCC-RA's diff energy minus UCC-RA's.

The paper's worked example — adding one instruction to save one word of
transmission pays off iff the instruction executes fewer than 16,000
times (16 bits x 1000) — falls straight out of these definitions and is
pinned by a unit test.
"""

from __future__ import annotations

from dataclasses import dataclass

WORD_BITS = 16


@dataclass(frozen=True)
class EnergyModel:
    """Normalised energy parameters used at compile time."""

    #: Energy units per transmitted bit (units of one ALU cycle).
    bit_cost_ratio: float = 1000.0
    #: Cycles charged for an average ALU instruction.
    alu_cycles: float = 1.0
    #: Cycles charged for a memory access instruction (LDS/STS/LD/ST).
    mem_cycles: float = 2.0

    # -- basic quantities ----------------------------------------------------

    @property
    def e_exe(self) -> float:
        """Average energy to execute one instruction (paper's E_exe)."""
        return self.alu_cycles

    @property
    def e_exe_mem(self) -> float:
        """Energy to execute one memory-access instruction."""
        return self.mem_cycles

    @property
    def e_trans_bit(self) -> float:
        return self.bit_cost_ratio

    @property
    def e_trans(self) -> float:
        """Energy to disseminate one instruction word (paper's E_trans)."""
        return WORD_BITS * self.bit_cost_ratio

    def e_trans_words(self, words: int) -> float:
        return words * self.e_trans

    def e_trans_bytes(self, num_bytes: int) -> float:
        return 8 * num_bytes * self.bit_cost_ratio

    def e_exe_cycles(self, cycles: float) -> float:
        return cycles * 1.0  # one unit per cycle, by definition

    # -- paper equations 18-19 --------------------------------------------------

    def diff_energy(
        self, diff_inst_words: int, diff_cycle: float, cnt: float
    ) -> float:
        """Eq. 18: energy cost of one update followed by ``cnt`` runs.

        ``diff_inst_words`` is the dissemination payload in instruction
        words; ``diff_cycle`` the per-run execution-cycle change.
        """
        return self.e_trans_words(diff_inst_words) + diff_cycle * cnt

    def energy_savings(
        self,
        baseline_words: int,
        baseline_cycles: float,
        ucc_words: int,
        ucc_cycles: float,
        cnt: float,
    ) -> float:
        """Eq. 19: baseline diff-energy minus UCC diff-energy."""
        return self.diff_energy(baseline_words, baseline_cycles, cnt) - self.diff_energy(
            ucc_words, ucc_cycles, cnt
        )

    def breakeven_executions(self, words_saved: int, cycles_added: float) -> float:
        """How many executions make ``cycles_added`` outweigh saving
        ``words_saved`` transmitted words (paper §2.1's 16,000 example).
        """
        if cycles_added <= 0:
            return float("inf")
        return self.e_trans_words(words_saved) / cycles_added


DEFAULT_ENERGY_MODEL = EnergyModel()
