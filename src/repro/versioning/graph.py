"""The content-addressed version graph and its diff-artifact edges.

Nodes are compiled images (addressed by the digest of their word
stream + data segment), edges are diff artifacts:

* ``"step"``   — the update-conscious diff between adjacent released
  versions, produced by :class:`repro.core.update.UpdatePlanner`
  exactly as the single-version pipeline would have;
* ``"merged"`` — one direct diff across a span of versions, either a
  fresh :func:`repro.diff.differ.diff_images` of the endpoint images
  (``VersionGraphConfig.merged_from == "direct"``) or a
  :func:`repro.diff.compose.compose_chain` of the step scripts
  (``"composed"`` — no intermediate images needed);
* ``"full"``   — the whole target image as a remove-all/insert-all
  script, the fallback every plan is benchmarked against.

The chain v0→v1→…→vN *defines* the canonical image of every version:
an update-conscious compile depends on the image it patches, so vN
"compiled from v3" would be a different binary.  Merged and full
edges therefore always target the canonical chain image — that is
what makes replay identity along every path possible at all.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import (
    CompileConfig,
    UpdateConfig,
    VersionGraphConfig,
    VersionSpec,
)
from ..core.compiler import CompiledProgram
from ..core.errors import PlanStateError
from ..diff.compose import compose_chain
from ..diff.data_diff import DataScript, apply_data, diff_data
from ..diff.differ import diff_images
from ..diff.edit_script import EditScript
from ..diff.patcher import PatchError, apply_script
from ..obs import metrics, trace

#: Wire framing of a plan blob: u16 step count, then per step a u32
#: code-script length and u32 data-script length, then the payloads.
_COUNT_BYTES = 2
_LEN_BYTES = 4


@dataclass
class VersionEdge:
    """One diff artifact: everything needed to move src → dst."""

    src: int
    dst: int
    kind: str  # "step" | "merged" | "full"
    code_script: EditScript
    data_script: DataScript

    @property
    def script_bytes(self) -> int:
        """Wire size of the artifact (code + data scripts)."""
        return self.code_script.size_bytes + self.data_script.size_bytes

    def step_bytes(self) -> bytes:
        code = self.code_script.to_bytes()
        data = self.data_script.to_bytes()
        return (
            len(code).to_bytes(_LEN_BYTES, "little")
            + len(data).to_bytes(_LEN_BYTES, "little")
            + code
            + data
        )


def encode_plan_blob(steps: Sequence[VersionEdge]) -> bytes:
    """Frame a plan's edges into one dissemination blob.

    The receiver applies the steps in order; the framing keeps each
    step's code and data scripts individually recoverable so a node
    can verify and commit stage by stage.
    """
    if not steps:
        raise PlanStateError("encode", "a plan blob needs at least one step")
    out = len(steps).to_bytes(_COUNT_BYTES, "little")
    for step in steps:
        out += step.step_bytes()
    return out


def decode_plan_blob(blob: bytes) -> List[Tuple[bytes, bytes]]:
    """Inverse of :func:`encode_plan_blob`: ``(code, data)`` byte pairs."""
    if len(blob) < _COUNT_BYTES:
        raise PlanStateError("decode", "plan blob shorter than its header")
    count = int.from_bytes(blob[:_COUNT_BYTES], "little")
    cursor = _COUNT_BYTES
    steps: List[Tuple[bytes, bytes]] = []
    for _ in range(count):
        if cursor + 2 * _LEN_BYTES > len(blob):
            raise PlanStateError("decode", "plan blob truncated in a header")
        code_len = int.from_bytes(blob[cursor : cursor + _LEN_BYTES], "little")
        cursor += _LEN_BYTES
        data_len = int.from_bytes(blob[cursor : cursor + _LEN_BYTES], "little")
        cursor += _LEN_BYTES
        if cursor + code_len + data_len > len(blob):
            raise PlanStateError("decode", "plan blob truncated in a payload")
        code = blob[cursor : cursor + code_len]
        cursor += code_len
        data = blob[cursor : cursor + data_len]
        cursor += data_len
        steps.append((code, data))
    if cursor != len(blob):
        raise PlanStateError(
            "decode", f"plan blob has {len(blob) - cursor} trailing bytes"
        )
    return steps


class VersionGraph:
    """Compiled images + diff artifacts over a release history.

    Construction compiles the chain (see :func:`build_version_graph`);
    merged and full edges are derived lazily and cached, so the graph
    only pays for the spans a planner actually asks about.
    """

    def __init__(
        self,
        specs: Dict[int, VersionSpec],
        programs: Dict[int, CompiledProgram],
        edges: Dict[Tuple[int, int], VersionEdge],
        config: VersionGraphConfig,
    ):
        self.specs = specs
        self.programs = programs
        self.config = config
        self._edges = edges
        self._digests: Dict[int, str] = {}

    @property
    def versions(self) -> Tuple[int, ...]:
        return tuple(sorted(self.specs))

    @property
    def target(self) -> int:
        return self.versions[-1]

    def image_digest(self, version: int) -> str:
        """Content address of a version's image (words + data)."""
        cached = self._digests.get(version)
        if cached is not None:
            return cached
        program = self.programs[version]
        digest = hashlib.sha256(
            json.dumps(
                {
                    "words": program.image.words(),
                    "data": program.image.data.hex(),
                },
                sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")
        ).hexdigest()
        self._digests[version] = digest
        return digest

    def edge(self, src: int, dst: int) -> Optional[VersionEdge]:
        return self._edges.get((src, dst))

    def step_path(self, src: int, dst: int) -> List[int]:
        """The chain of released versions src → dst (inclusive)."""
        if src not in self.specs or dst not in self.specs:
            missing = src if src not in self.specs else dst
            raise PlanStateError(
                "chain", f"version v{missing} is not in the graph"
            )
        if src >= dst:
            raise PlanStateError(
                "chain", f"cannot chain backwards v{src} -> v{dst}"
            )
        return [v for v in self.versions if src <= v <= dst]

    def step_edges(self, src: int, dst: int) -> List[VersionEdge]:
        path = self.step_path(src, dst)
        return [
            self._edges[(a, b)] for a, b in zip(path, path[1:])
        ]

    def merged_edge(self, src: int, dst: int) -> VersionEdge:
        """The single-hop merged diff src → dst (cached).

        ``merged_from="direct"`` re-diffs the endpoint images;
        ``"composed"`` composes the chain's step code scripts without
        reading any intermediate image (the data segment is byte-level
        patched, so its merged script is always a direct diff — data
        patches carry absolute offsets and need no composition
        machinery).
        """
        key = (src, dst)
        existing = self._edges.get(key)
        if existing is not None and existing.kind in ("step", "merged"):
            return existing
        old = self.programs[src].image
        new = self.programs[dst].image
        if self.config.merged_from == "direct":
            code_script = diff_images(old, new).script
        else:
            code_script = compose_chain(
                [step.code_script for step in self.step_edges(src, dst)]
            )
        edge = VersionEdge(
            src=src,
            dst=dst,
            kind="merged",
            code_script=code_script,
            data_script=diff_data(old.data, new.data),
        )
        self._edges[key] = edge
        metrics.counter("versioning.edges").inc()
        return edge

    def full_edge(self, src: int, dst: int) -> VersionEdge:
        """The full-image fallback: drop src's code, ship dst's whole
        image as literals (data segment patched directly)."""
        key = (src, dst, "full")
        cached = getattr(self, "_full_cache", None)
        if cached is None:
            cached = {}
            self._full_cache = cached
        if key in cached:
            return cached[key]
        old = self.programs[src].image
        new = self.programs[dst].image
        script = EditScript()
        script.remove(len(old.code))
        script.insert([tuple(enc.words) for enc in new.code])
        edge = VersionEdge(
            src=src,
            dst=dst,
            kind="full",
            code_script=script,
            data_script=diff_data(old.data, new.data),
        )
        cached[key] = edge
        metrics.counter("versioning.edges").inc()
        return edge

    def replay(self, path: Sequence[int], edges: Sequence[VersionEdge]):
        """Re-apply a plan's edges image-by-image — the replay oracle.

        Models exactly what a node at ``path[0]`` does with the plan
        blob: each stage's code script is interpreted against the
        image the previous stage committed, the data script against
        its data segment.  Returns ``(words, data)`` of the final
        image; raises :class:`repro.diff.patcher.PatchError` if any
        stage diverges from the canonical image of its destination
        version.
        """
        if len(edges) != len(path) - 1:
            raise PlanStateError(
                "replay",
                f"path {tuple(path)} needs {len(path) - 1} edges, "
                f"got {len(edges)}",
            )
        words: List[int] = []
        data = b""
        for at, edge in enumerate(edges):
            src, dst = path[at], path[at + 1]
            if (edge.src, edge.dst) != (src, dst):
                raise PlanStateError(
                    "replay",
                    f"edge {edge.src}->{edge.dst} out of place at "
                    f"hop {src}->{dst}",
                )
            image = self.programs[src].image
            units = apply_script(image, edge.code_script)
            words = [word for unit in units for word in unit]
            expected = self.programs[dst].image.words()
            if words != expected:
                raise PatchError(
                    f"replay diverged on hop v{src}->v{dst} "
                    f"({edge.kind} edge)"
                )
            data = apply_data(image.data, edge.data_script)
            if data != self.programs[dst].image.data:
                raise PatchError(
                    f"data replay diverged on hop v{src}->v{dst} "
                    f"({edge.kind} edge)"
                )
        return words, data


def build_version_graph(
    releases: "Mapping[int, str] | Sequence[VersionSpec]",
    *,
    compile_config: Optional[CompileConfig] = None,
    update_config: Optional[UpdateConfig] = None,
    config: Optional[VersionGraphConfig] = None,
    base: "Tuple[int, CompiledProgram] | Mapping[int, CompiledProgram] | None" = None,
) -> VersionGraph:
    """Compile a release history into a :class:`VersionGraph`.

    ``releases`` maps version labels to program sources (or is a
    sequence of :class:`VersionSpec`).  The lowest version is compiled
    from scratch; every later one is planned as an update-conscious
    step from its predecessor, which yields both the canonical image
    of each version and the graph's ``"step"`` edges in one pass.

    ``base`` anchors the chain on already-compiled programs whose
    sources are unavailable (an :class:`repro.core.session
    .UpdateSession` constructed around a deployed binary, or its
    version history when the fleet straggles several releases behind):
    either one ``(version, program)`` pair or a mapping of them.  Base
    versions must precede every sourced release; adjacent precompiled
    versions are bridged by a direct image diff, and the first sourced
    release is planned as an update-conscious step from the newest
    base.
    """
    from ..core.update import UpdatePlanner

    if isinstance(releases, Mapping):
        specs = {
            int(version): VersionSpec(version=int(version), source=source)
            for version, source in releases.items()
        }
    else:
        specs = {spec.version: spec for spec in releases}
        if len(specs) != len(releases):
            raise PlanStateError(
                "build", "duplicate version labels in the release history"
            )
    programs: Dict[int, CompiledProgram] = {}
    if base is not None:
        anchors: Dict[int, CompiledProgram] = (
            dict(base) if isinstance(base, Mapping) else {base[0]: base[1]}
        )
        earliest_release = min(specs) if specs else None
        for base_version, base_program in sorted(anchors.items()):
            if earliest_release is not None and base_version >= earliest_release:
                raise PlanStateError(
                    "build",
                    f"base v{base_version} must precede every release "
                    f"(earliest is v{earliest_release})",
                )
            specs[base_version] = VersionSpec(
                version=base_version,
                source="<deployed-binary>",
                label="deployed",
            )
            programs[base_version] = base_program
    if len(specs) < 2:
        raise PlanStateError(
            "build",
            f"a version graph needs at least two releases, got {len(specs)}",
        )
    graph_config = config if config is not None else VersionGraphConfig()
    ordered = sorted(specs)

    with trace.span(
        "versioning.build", versions=len(ordered), target=ordered[-1]
    ):
        from ..api import compile_source

        if ordered[0] not in programs:
            programs[ordered[0]] = compile_source(
                specs[ordered[0]].source, compile_config
            )
        edges: Dict[Tuple[int, int], VersionEdge] = {}
        cfg = update_config if update_config is not None else UpdateConfig()
        for prev, curr in zip(ordered, ordered[1:]):
            if curr in programs:
                # Both endpoints are precompiled anchors — no source to
                # plan update-consciously from, so bridge them with a
                # direct diff of their canonical images.
                old, new = programs[prev].image, programs[curr].image
                edges[(prev, curr)] = VersionEdge(
                    src=prev,
                    dst=curr,
                    kind="step",
                    code_script=diff_images(old, new).script,
                    data_script=diff_data(old.data, new.data),
                )
                continue
            planner = UpdatePlanner(programs[prev], config=cfg)
            update = planner.plan(specs[curr].source)
            programs[curr] = update.new
            edges[(prev, curr)] = VersionEdge(
                src=prev,
                dst=curr,
                kind="step",
                code_script=update.diff.script,
                data_script=update.data_script,
            )
    metrics.counter("versioning.graphs").inc()
    metrics.counter("versioning.edges").inc(len(edges))
    return VersionGraph(specs, programs, edges, graph_config)


__all__ = [
    "VersionEdge",
    "VersionGraph",
    "build_version_graph",
    "decode_plan_blob",
    "encode_plan_blob",
]
