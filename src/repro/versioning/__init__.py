"""Version-graph update planning over compiled images.

Real fleets are version-heterogeneous: nodes that slept through
campaigns sit at v3 while the sink ships v7.  The paper's pipeline
always diffs *adjacent* versions; this package generalises it to a
**version graph** — nodes are compiled images addressed by content
digest, edges are diff artifacts weighted by wire size — and a
**cohort planner** that picks, per group of same-version nodes, the
cheapest way to bring them to the target: the chain of step diffs,
one merged direct diff, or the full image (Difference Based Content
Networking, PAPERS.md).

Layers:

* :mod:`repro.versioning.graph`    — :func:`build_version_graph`,
  the content-addressed graph + on-demand merged/full-image edges;
* :mod:`repro.versioning.planner`  — :func:`plan_cohorts`, the
  energy cost model and per-cohort strategy choice;
* :mod:`repro.versioning.campaign` — :func:`run_versioned_campaign`,
  driving one dissemination campaign per cohort (optionally coded,
  see :mod:`repro.net.coding`) with a replay-identity check that
  every planned path rebuilds the byte-identical target image.
"""

from .campaign import VersionedCampaignReport, run_versioned_campaign
from .graph import VersionEdge, VersionGraph, build_version_graph
from .planner import plan_cohorts, predicted_plan_energy_j

__all__ = [
    "VersionEdge",
    "VersionGraph",
    "VersionedCampaignReport",
    "build_version_graph",
    "plan_cohorts",
    "predicted_plan_energy_j",
    "run_versioned_campaign",
]
