"""Multi-version staging: drive one campaign per cohort to convergence.

The sink runs one dissemination wave per cohort plan: the whole fleet
relays (flood/Trickle/gossip suppression keeps that O(n)), but only
the cohort's nodes stage and commit the blob — a node at v3 applies
the v3→v7 plan it was assigned, stage by stage, with the same
crash-consistent two-bank apply the single-version campaign uses.

Before any wave leaves the sink, every plan is **replayed** against
the version graph (:meth:`repro.versioning.graph.VersionGraph.replay`):
chained, merged, and full paths must all rebuild the byte-identical
target image, or the campaign refuses to start.  After the waves, the
per-cohort final digests are checked again and recorded in the
report — the acceptance criterion "every planned path yields the
identical final image digest on every node" is enforced here, not
just in tests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import CohortPlan
from ..energy.power_model import MICA2, PowerModel
from ..net.campaign import run_campaign
from ..net.coding import CodedTransferParams, run_coded_campaign
from ..net.errors import NetConfigError
from ..net.faults import FaultPlan
from ..net.topology import Topology
from ..obs import metrics, trace
from .graph import VersionGraph, encode_plan_blob
from .planner import plan_edges


@dataclass
class CohortOutcome:
    """One cohort's wave, summarised for the fleet report."""

    plan: CohortPlan
    outcome: str
    rounds: int
    blob_bytes: int
    energy_j: float
    broadcasts: int
    report_digest: str
    final_image_digest: str
    quarantined: Tuple[int, ...] = ()


@dataclass
class VersionedCampaignReport:
    """Byte-deterministic outcome of a whole multi-cohort campaign."""

    target_version: int
    target_digest: str
    cohorts: List[CohortOutcome] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        return all(c.outcome == "converged" for c in self.cohorts)

    @property
    def outcome(self) -> str:
        return "converged" if self.converged else "partial"

    @property
    def total_energy_j(self) -> float:
        return sum(c.energy_j for c in self.cohorts)

    @property
    def total_broadcasts(self) -> int:
        return sum(c.broadcasts for c in self.cohorts)

    @property
    def replay_identical(self) -> bool:
        """Did every planned path rebuild the same target image?"""
        return all(
            c.final_image_digest == self.target_digest for c in self.cohorts
        )

    def node_versions(self, fleet_versions: Dict[int, int]) -> Dict[int, int]:
        """Post-campaign advertised versions for the whole fleet."""
        out = dict(fleet_versions)
        for cohort in self.cohorts:
            for node in cohort.plan.nodes:
                if node not in cohort.quarantined:
                    out[node] = cohort.plan.to_version
        return out

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": "repro-versioned-campaign/1",
                "target_version": self.target_version,
                "target_digest": self.target_digest,
                "outcome": self.outcome,
                "replay_identical": self.replay_identical,
                "total_energy_j": round(self.total_energy_j, 9),
                "total_broadcasts": self.total_broadcasts,
                "cohorts": [
                    {
                        "from_version": c.plan.from_version,
                        "to_version": c.plan.to_version,
                        "strategy": c.plan.strategy,
                        "path": list(c.plan.path),
                        "nodes": len(c.plan.nodes),
                        "script_bytes": c.plan.script_bytes,
                        "predicted_energy_j": round(
                            c.plan.predicted_energy_j, 9
                        ),
                        "outcome": c.outcome,
                        "rounds": c.rounds,
                        "blob_bytes": c.blob_bytes,
                        "energy_j": round(c.energy_j, 9),
                        "broadcasts": c.broadcasts,
                        "report_digest": c.report_digest,
                        "final_image_digest": c.final_image_digest,
                        "quarantined": list(c.quarantined),
                    }
                    for c in self.cohorts
                ],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def render(self) -> str:
        lines = [
            f"versioned campaign -> v{self.target_version}: {self.outcome} "
            f"({len(self.cohorts)} cohort(s), "
            f"{self.total_energy_j:.4f} J)"
        ]
        for c in self.cohorts:
            arrow = "->".join(f"v{v}" for v in c.plan.path)
            lines.append(
                f"  {arrow} [{c.plan.strategy}] {len(c.plan.nodes)} nodes, "
                f"{c.blob_bytes} B, {c.rounds} rounds, "
                f"{c.energy_j:.4f} J: {c.outcome}"
            )
        return "\n".join(lines)


def run_versioned_campaign(
    graph: VersionGraph,
    plans: Sequence[CohortPlan],
    topology: Topology,
    *,
    loss: float = 0.0,
    seed: int = 1,
    power: PowerModel = MICA2,
    protocol: str = "flood",
    coding: Optional[CodedTransferParams] = None,
    fault_plan: Optional[FaultPlan] = None,
    max_rounds: int = 200,
) -> VersionedCampaignReport:
    """Execute every cohort plan as one dissemination wave each.

    ``coding`` switches the waves to coded transfer: the ``"lt"``
    fountain replaces the flood protocol's NACK repair, the ``"xor"``
    burst parity rides inside the Trickle/gossip kernel.  Waves run in
    ascending ``from_version`` order with derived seeds, so the whole
    campaign is deterministic and its report digest stable.
    """
    target = plans[0].to_version if plans else graph.target
    for plan in plans:
        if plan.to_version != target:
            raise NetConfigError(
                "plans", plan.to_version,
                f"cohort plans disagree on the target: v{plan.to_version} "
                f"vs v{target}",
            )
    if coding is not None and coding.scheme == "lt" and protocol != "flood":
        raise NetConfigError(
            "coding", coding.scheme,
            "the 'lt' fountain replaces flood dissemination; use "
            "scheme='xor' with the trickle/gossip kernel",
        )
    if coding is not None and coding.scheme == "xor" and protocol == "flood":
        raise NetConfigError(
            "coding", coding.scheme,
            "the 'xor' burst parity rides the kernel protocols; use "
            "scheme='lt' with protocol='flood'",
        )

    target_digest = graph.image_digest(target)
    report = VersionedCampaignReport(
        target_version=target, target_digest=target_digest
    )
    with trace.span(
        "versioning.campaign",
        cohorts=len(plans),
        target=target,
        protocol=protocol,
        coded=coding is not None,
    ):
        for index, plan in enumerate(
            sorted(plans, key=lambda p: p.from_version)
        ):
            edges = plan_edges(graph, plan)
            # Replay oracle BEFORE any bytes hit the air: the plan must
            # rebuild the canonical target image along its exact path.
            graph.replay(plan.path, edges)
            blob = encode_plan_blob(edges)
            wave_seed = seed + 1000 * index
            if coding is not None and coding.scheme == "lt":
                wave = run_coded_campaign(
                    topology, blob, fault_plan,
                    params=coding, loss=loss, seed=wave_seed, power=power,
                    max_rounds=max_rounds,
                    payload_per_packet=graph.config.payload_per_packet,
                    overhead_per_packet=graph.config.overhead_per_packet,
                    old_version=plan.from_version, new_version=target,
                )
            else:
                wave = run_campaign(
                    topology, blob, fault_plan,
                    loss=loss, seed=wave_seed, power=power,
                    max_rounds=max_rounds,
                    payload_per_packet=graph.config.payload_per_packet,
                    overhead_per_packet=graph.config.overhead_per_packet,
                    old_version=plan.from_version, new_version=target,
                    protocol=protocol, coding=coding,
                )
            words, data = graph.replay(plan.path, edges)
            final_digest = hashlib.sha256(
                json.dumps(
                    {"words": words, "data": data.hex()},
                    sort_keys=True,
                    separators=(",", ":"),
                ).encode("utf-8")
            ).hexdigest()
            quarantined = tuple(
                node for node in wave.quarantined if node in plan.nodes
            )
            # Flood/coded reports count `broadcasts`; the kernel
            # protocols count `transmissions` — same physical quantity.
            on_air = getattr(wave, "broadcasts", None)
            if on_air is None:
                on_air = wave.transmissions
            report.cohorts.append(
                CohortOutcome(
                    plan=plan,
                    outcome="converged"
                    if wave.converged or not quarantined
                    else "partial",
                    rounds=wave.rounds,
                    blob_bytes=len(blob),
                    energy_j=wave.total_energy_j,
                    broadcasts=on_air,
                    report_digest=wave.digest(),
                    final_image_digest=final_digest,
                    quarantined=quarantined,
                )
            )
    metrics.counter("versioning.campaigns").inc()
    metrics.counter("versioning.waves").inc(len(report.cohorts))
    if report.converged:
        metrics.counter("versioning.converged").inc()
    return report


__all__ = ["CohortOutcome", "VersionedCampaignReport", "run_versioned_campaign"]
