"""Cohort planner: cheapest dissemination plan per stale version.

Given the fleet's advertised versions, group the stale nodes into
cohorts (one per distinct version) and pick for each the cheapest way
to reach the target:

* ``"chain"``  — the released step diffs v3→v4→…→v7, smallest bytes
  per hop but every hop is a full dissemination wave;
* ``"merged"`` — one direct (or composed) diff v3→v7, a single wave
  whose script grows with the span;
* ``"full"``   — the whole target image, span-independent and big.

Cost model (documented in docs/VERSIONING.md): one dissemination wave
of ``B`` payload bytes over a fleet of ``n`` nodes with mean radio
degree ``d`` and per-link loss ``p`` costs approximately::

    E(B) = packets(B) * bits/packet * (tx_bit + d * rx_bit) * n / (1 - p)

— every node forwards the wave once (flood/Trickle both converge to
O(n) transmissions under suppression), each transmission is overheard
by ``d`` neighbours, and loss inflates air time by the expected
repair factor.  A chained plan pays one wave per hop; merged and full
pay one wave of a bigger blob.  The model's job is *ranking*, not
joule-accurate prediction — the bench pins the realised ratio.

The chain candidate is found by Dijkstra over every edge already in
the graph (step edges plus any cached merged edges), so a previously
materialised shortcut v3→v5 is considered alongside the pure chain.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import CohortPlan, VersionGraphConfig
from ..core.errors import PlanStateError
from ..energy.power_model import MICA2, PowerModel
from ..obs import metrics, trace
from .graph import VersionGraph


def predicted_wave_energy_j(
    script_bytes: int,
    *,
    node_count: int,
    mean_degree: float,
    config: VersionGraphConfig,
    power: PowerModel = MICA2,
) -> float:
    """Cost-model energy of one dissemination wave of ``script_bytes``."""
    payload = config.payload_per_packet
    packets = max(1, -(-script_bytes // payload))
    bits = packets * 8 * (payload + config.overhead_per_packet)
    per_tx = power.tx_bit_energy_j + mean_degree * power.rx_bit_energy_j
    return bits * per_tx * node_count / (1.0 - config.loss)


def predicted_plan_energy_j(
    hop_bytes: Sequence[int],
    *,
    node_count: int,
    mean_degree: float,
    config: VersionGraphConfig,
    power: PowerModel = MICA2,
) -> float:
    """Cost-model energy of a multi-hop plan: one wave per hop."""
    return sum(
        predicted_wave_energy_j(
            size,
            node_count=node_count,
            mean_degree=mean_degree,
            config=config,
            power=power,
        )
        for size in hop_bytes
    )


def _cheapest_chain(
    graph: VersionGraph,
    src: int,
    dst: int,
    *,
    node_count: int,
    mean_degree: float,
    power: PowerModel,
) -> "Optional[Tuple[List[int], float, int]]":
    """Dijkstra over the graph's existing edges; returns
    ``(path, energy, bytes)`` or ``None`` when no path fits
    ``max_chain``."""
    config = graph.config
    adjacency: Dict[int, List[Tuple[int, int]]] = {}
    for (a, b), edge in graph._edges.items():
        adjacency.setdefault(a, []).append((b, edge.script_bytes))
    best: Dict[int, float] = {src: 0.0}
    back: Dict[int, Tuple[int, int]] = {}
    queue: List[Tuple[float, int, int]] = [(0.0, src, 0)]
    while queue:
        cost, here, hops = heapq.heappop(queue)
        if here == dst:
            break
        if cost > best.get(here, float("inf")) or hops >= config.max_chain:
            continue
        for peer, size in adjacency.get(here, ()):
            if peer > dst:
                continue
            step = predicted_wave_energy_j(
                size,
                node_count=node_count,
                mean_degree=mean_degree,
                config=config,
                power=power,
            )
            if cost + step < best.get(peer, float("inf")):
                best[peer] = cost + step
                back[peer] = (here, size)
                heapq.heappush(queue, (cost + step, peer, hops + 1))
    if dst not in best:
        return None
    path = [dst]
    total_bytes = 0
    while path[-1] != src:
        prev, size = back[path[-1]]
        total_bytes += size
        path.append(prev)
    path.reverse()
    return path, best[dst], total_bytes


def plan_cohorts(
    graph: VersionGraph,
    fleet_versions: Mapping[int, int],
    target: Optional[int] = None,
    *,
    mean_degree: float = 4.0,
    power: PowerModel = MICA2,
) -> Tuple[CohortPlan, ...]:
    """Choose the cheapest plan for every stale cohort in the fleet.

    ``fleet_versions`` maps node ids to their advertised versions
    (node 0, the sink, is assumed current and ignored); ``target``
    defaults to the graph's newest version.  Returns one frozen
    :class:`repro.config.CohortPlan` per distinct stale version,
    ordered by version.  Nodes already at the target need no plan;
    nodes advertising a version the graph does not know raise —
    an unknown image cannot be diffed against.
    """
    goal = target if target is not None else graph.target
    if goal not in graph.specs:
        raise PlanStateError(
            "plan", f"target v{goal} is not in the version graph"
        )
    cohorts: Dict[int, List[int]] = {}
    for node, version in fleet_versions.items():
        if node == 0 or version == goal:
            continue
        if version not in graph.specs:
            raise PlanStateError(
                "plan",
                f"node {node} advertises v{version}, which is not in "
                f"the version graph",
            )
        if version > goal:
            raise PlanStateError(
                "plan",
                f"node {node} is ahead of the target "
                f"(v{version} > v{goal})",
            )
        cohorts.setdefault(version, []).append(node)

    node_count = len(fleet_versions)
    plans: List[CohortPlan] = []
    with trace.span(
        "versioning.plan",
        cohorts=len(cohorts),
        target=goal,
        nodes=node_count,
    ):
        for version in sorted(cohorts):
            nodes = tuple(sorted(cohorts[version]))
            candidates: List[Tuple[float, str, Tuple[int, ...], int]] = []

            chain = _cheapest_chain(
                graph, version, goal,
                node_count=node_count, mean_degree=mean_degree, power=power,
            )
            if chain is not None:
                path, energy, size = chain
                strategy = "chain" if len(path) > 2 else "merged"
                candidates.append((energy, strategy, tuple(path), size))

            merged = graph.merged_edge(version, goal)
            merged_energy = predicted_wave_energy_j(
                merged.script_bytes,
                node_count=node_count, mean_degree=mean_degree,
                config=graph.config, power=power,
            )
            candidates.append(
                (merged_energy, "merged", (version, goal), merged.script_bytes)
            )

            full = graph.full_edge(version, goal)
            full_energy = predicted_wave_energy_j(
                full.script_bytes,
                node_count=node_count, mean_degree=mean_degree,
                config=graph.config, power=power,
            )
            candidates.append(
                (full_energy, "full", (version, goal), full.script_bytes)
            )

            energy, strategy, path, size = min(
                candidates, key=lambda entry: (entry[0], len(entry[2]))
            )
            plans.append(
                CohortPlan(
                    from_version=version,
                    to_version=goal,
                    nodes=nodes,
                    strategy=strategy,
                    path=path,
                    script_bytes=size,
                    predicted_energy_j=energy,
                )
            )
    metrics.counter("versioning.plans").inc(len(plans))
    return tuple(plans)


def plan_edges(graph: VersionGraph, plan: CohortPlan):
    """Materialise the edges a :class:`CohortPlan` traverses."""
    if plan.strategy == "full":
        return [graph.full_edge(plan.from_version, plan.to_version)]
    if plan.strategy == "merged":
        return [graph.merged_edge(plan.from_version, plan.to_version)]
    edges = []
    for a, b in zip(plan.path, plan.path[1:]):
        edge = graph.edge(a, b)
        if edge is None:
            edge = graph.merged_edge(a, b)
        edges.append(edge)
    return edges


__all__ = [
    "plan_cohorts",
    "plan_edges",
    "predicted_plan_energy_j",
    "predicted_wave_energy_j",
]
