"""IR optimization passes (run before update-conscious code generation)."""

from .passes import (
    eliminate_dead_code,
    fold_constants,
    optimize_function,
    optimize_module,
    propagate_copies,
    remove_unreachable,
)

__all__ = [
    "eliminate_dead_code",
    "fold_constants",
    "optimize_function",
    "optimize_module",
    "propagate_copies",
    "remove_unreachable",
]

from .cse import eliminate_common_subexpressions

__all__ += ["eliminate_common_subexpressions"]
