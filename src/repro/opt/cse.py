"""Block-local common-subexpression elimination (value numbering).

Redundant pure computations — including repeated ``LOADG``/``LOADIDX``
of unmodified memory — are replaced by a register copy from the first
occurrence; copy propagation and DCE then clean up.  Invalidations are
conservative:

* ``STOREG x`` kills loads of ``x``;
* ``STOREIDX a`` kills indexed loads of ``a`` (and, because an index
  may alias, all indexed loads);
* ``CALL`` kills every memory-derived value (the callee may store);
* redefining an operand kills expressions computed from it;
* ``IOREAD``/``IOWRITE`` are never candidates (device side effects).

Like every pass here, the result is deterministic, so identical source
regions optimize identically across program versions — the property
the update matcher relies on.
"""

from __future__ import annotations

from ..ir.cfg import build_cfg
from ..ir.function import IRFunction
from ..ir.instructions import (
    BINARY_OPS,
    IRInstr,
    IROp,
    Imm,
    MemRef,
    UNARY_OPS,
    VReg,
)

#: Pure ops whose results can be reused.
_PURE_OPS = BINARY_OPS | (UNARY_OPS - {IROp.MOV}) | {IROp.LOADG, IROp.LOADIDX}


def _operand_key(arg) -> tuple | None:
    if isinstance(arg, VReg):
        return ("v", arg.name)
    if isinstance(arg, Imm):
        return ("i", arg.value, arg.ctype.name)
    if isinstance(arg, MemRef):
        return ("m", arg.symbol)
    return None


def _expr_key(ins: IRInstr) -> tuple | None:
    """A hashable identity of the computation, or None if not pure."""
    if ins.op not in _PURE_OPS or ins.dst is None:
        return None
    parts = [ins.op.value, ins.dst.ctype.name]
    for arg in ins.args:
        key = _operand_key(arg)
        if key is None:
            return None
        parts.append(key)
    return tuple(parts)


class _BlockState:
    """Per-block CSE state: available expressions and their dependents.

    A class (rather than closures defined inside the block loop) so the
    kill helpers bind this block's dicts explicitly — closures in a
    loop capture the *variables* and would silently track whichever
    block the loop reached last (ruff B023).
    """

    def __init__(self) -> None:
        self.available: dict[tuple, VReg] = {}
        # which expression keys depend on a given vreg / memory symbol
        self.by_vreg: dict[str, set[tuple]] = {}
        self.by_symbol: dict[str, set[tuple]] = {}

    def kill_vreg(self, name: str) -> None:
        for key in self.by_vreg.pop(name, set()):
            self.available.pop(key, None)

    def kill_symbol(self, symbol: str) -> None:
        for key in self.by_symbol.pop(symbol, set()):
            self.available.pop(key, None)

    def kill_all_memory(self) -> None:
        for symbol in list(self.by_symbol):
            self.kill_symbol(symbol)


def eliminate_common_subexpressions(fn: IRFunction) -> bool:
    """Run block-local CSE over ``fn``; returns True if anything changed."""
    cfg = build_cfg(fn)
    changed = False
    for block in cfg.blocks:
        state = _BlockState()
        available = state.available
        by_vreg = state.by_vreg
        by_symbol = state.by_symbol
        kill_vreg = state.kill_vreg
        kill_symbol = state.kill_symbol
        kill_all_memory = state.kill_all_memory

        for index in block.instruction_indices():
            ins = fn.instrs[index]

            key = _expr_key(ins)
            if key is not None and key in available:
                source = available[key]
                if source.name != ins.dst.name:
                    fn.instrs[index] = IRInstr(
                        op=IROp.MOV,
                        dst=ins.dst,
                        args=(source,),
                        stmt_id=ins.stmt_id,
                        stmt_text=ins.stmt_text,
                        freq=ins.freq,
                    )
                    ins = fn.instrs[index]
                    changed = True
                key = None  # the rewritten MOV is not a new expression

            # -- invalidations ------------------------------------------
            if ins.op is IROp.STOREG:
                kill_symbol(ins.args[0].symbol)
            elif ins.op is IROp.STOREIDX:
                # indices may alias: kill every indexed load
                for symbol, keys in list(by_symbol.items()):
                    for expr in list(keys):
                        if expr[0] == IROp.LOADIDX.value:
                            keys.discard(expr)
                            available.pop(expr, None)
                kill_symbol(ins.args[0].symbol)
            elif ins.op is IROp.CALL:
                kill_all_memory()
            if ins.dst is not None:
                kill_vreg(ins.dst.name)
                # the destination's own cached value is also stale
                for cached_key, reg in list(available.items()):
                    if reg.name == ins.dst.name:
                        available.pop(cached_key, None)

            # -- record the new expression -------------------------------
            if key is not None:
                available[key] = ins.dst
                for arg in ins.args:
                    if isinstance(arg, VReg):
                        by_vreg.setdefault(arg.name, set()).add(key)
                    elif isinstance(arg, MemRef):
                        by_symbol.setdefault(arg.symbol, set()).add(key)
                if ins.op in (IROp.LOADG, IROp.LOADIDX):
                    symbol = ins.args[0].symbol
                    by_symbol.setdefault(symbol, set()).add(key)
    return changed
