"""Machine-independent IR optimization passes.

The paper's pipeline (Figure 1) optimizes ``ir`` into ``IR`` before
update-conscious code generation; UCC itself then never reorders or
rewrites instructions.  Our passes honour the properties UCC depends
on: they are deterministic, they preserve each surviving instruction's
``stmt_id``/``stmt_text`` provenance, and identical input IR yields
identical output IR.

Passes:

* constant folding + algebraic simplification,
* block-local copy propagation,
* dead-code elimination (liveness based),
* unreachable-code removal.
"""

from __future__ import annotations

from ..ir.cfg import build_cfg, reachable_blocks
from ..ir.function import IRFunction, IRModule
from ..ir.instructions import (
    BINARY_OPS,
    IRInstr,
    IROp,
    Imm,
    VReg,
)
from ..ir.liveness import analyze
from ..lang.sema import _eval_binop

#: IR ops with side effects or control relevance — never deleted.
_SIDE_EFFECTS = frozenset(
    {
        IROp.STOREG,
        IROp.STOREIDX,
        IROp.CALL,
        IROp.RET,
        IROp.JUMP,
        IROp.CBR,
        IROp.LABEL,
        IROp.IOREAD,  # reading the timer/adc port changes device state
        IROp.IOWRITE,
        IROp.HALT,
    }
)

_FOLDABLE = {
    IROp.ADD: "+",
    IROp.SUB: "-",
    IROp.MUL: "*",
    IROp.DIV: "/",
    IROp.MOD: "%",
    IROp.AND: "&",
    IROp.OR: "|",
    IROp.XOR: "^",
    IROp.SHL: "<<",
    IROp.SHR: ">>",
    IROp.CMPEQ: "==",
    IROp.CMPNE: "!=",
    IROp.CMPLT: "<",
    IROp.CMPLE: "<=",
    IROp.CMPGT: ">",
    IROp.CMPGE: ">=",
}


def fold_constants(fn: IRFunction) -> bool:
    """Fold ops whose operands are immediates; simplify identities."""
    changed = False
    for index, ins in enumerate(fn.instrs):
        if ins.op in _FOLDABLE and all(isinstance(a, Imm) for a in ins.args):
            left, right = ins.args
            mask = ins.dst.ctype.max_value if ins.dst else 0xFF
            try:
                value = _eval_binop(_FOLDABLE[ins.op], left.value, right.value, mask)
            except ZeroDivisionError:
                continue  # leave the fault to run time
            fn.instrs[index] = _replace(ins, IROp.MOV, (Imm(value & mask, ins.dst.ctype),))
            changed = True
            continue
        if ins.op in BINARY_OPS and len(ins.args) == 2:
            simplified = _algebraic(ins)
            if simplified is not None:
                fn.instrs[index] = simplified
                changed = True
        if ins.op is IROp.NEG and isinstance(ins.args[0], Imm):
            mask = ins.dst.ctype.max_value
            value = (-ins.args[0].value) & mask
            fn.instrs[index] = _replace(ins, IROp.MOV, (Imm(value, ins.dst.ctype),))
            changed = True
        if ins.op is IROp.NOT and isinstance(ins.args[0], Imm):
            mask = ins.dst.ctype.max_value
            value = (~ins.args[0].value) & mask
            fn.instrs[index] = _replace(ins, IROp.MOV, (Imm(value, ins.dst.ctype),))
            changed = True
    return changed


def _algebraic(ins: IRInstr) -> IRInstr | None:
    """x+0, x-0, x*1, x&x, x|0, x^0, x<<0 ... -> mov."""
    left, right = ins.args
    op = ins.op

    def mov(src) -> IRInstr:
        return _replace(ins, IROp.MOV, (src,))

    if isinstance(right, Imm):
        if right.value == 0 and op in (IROp.ADD, IROp.SUB, IROp.OR, IROp.XOR, IROp.SHL, IROp.SHR):
            return mov(left)
        if right.value == 1 and op in (IROp.MUL, IROp.DIV):
            return mov(left)
        if right.value == 0 and op in (IROp.AND, IROp.MUL):
            return mov(Imm(0, ins.dst.ctype))
    if isinstance(left, Imm) and left.value == 0:
        if op in (IROp.ADD, IROp.OR, IROp.XOR):
            return mov(right)
        if op in (IROp.MUL, IROp.AND):
            return mov(Imm(0, ins.dst.ctype))
    return None


def _replace(ins: IRInstr, op: IROp, args: tuple) -> IRInstr:
    return IRInstr(
        op=op,
        dst=ins.dst,
        args=args,
        stmt_id=ins.stmt_id,
        stmt_text=ins.stmt_text,
        freq=ins.freq,
    )


def propagate_copies(fn: IRFunction) -> bool:
    """Block-local copy/constant propagation.

    After ``x = mov y`` (or an immediate), uses of ``x`` within the
    same basic block are replaced by ``y`` until either is redefined.
    Only temporaries are rewritten — named variables keep their
    identity so the update matcher sees stable operands.
    """
    cfg = build_cfg(fn)
    changed = False
    for block in cfg.blocks:
        env: dict[str, object] = {}
        for index in block.instruction_indices():
            ins = fn.instrs[index]
            if ins.op is IROp.CALL:
                env.clear()  # conservative across calls
            new_args = []
            replaced = False
            for arg in ins.args:
                if isinstance(arg, VReg) and arg.name in env:
                    new_args.append(env[arg.name])
                    replaced = True
                else:
                    new_args.append(arg)
            if replaced:
                fn.instrs[index] = _replace(ins, ins.op, tuple(new_args))
                ins = fn.instrs[index]
                changed = True
            # Kill mappings that mention the redefined vreg.
            if ins.dst is not None:
                dead = ins.dst.name
                env.pop(dead, None)
                for key in [k for k, v in env.items() if isinstance(v, VReg) and v.name == dead]:
                    env.pop(key)
                if (
                    ins.op is IROp.MOV
                    and ins.dst.is_temp
                    and isinstance(ins.args[0], (VReg, Imm))
                ):
                    src = ins.args[0]
                    if not (isinstance(src, VReg) and src.ctype != ins.dst.ctype):
                        env[ins.dst.name] = src
    return changed


def eliminate_dead_code(fn: IRFunction) -> bool:
    """Remove side-effect-free defs whose value is never used."""
    info = analyze(fn)
    keep: list[IRInstr] = []
    changed = False
    for index, ins in enumerate(fn.instrs):
        if (
            ins.dst is not None
            and ins.op not in _SIDE_EFFECTS
            and ins.dst.name not in info.live_out[index]
        ):
            changed = True
            continue
        keep.append(ins)
    if changed:
        fn.instrs[:] = keep
    return changed


def remove_unreachable(fn: IRFunction) -> bool:
    """Drop blocks unreachable from the entry (keeps labels addressable)."""
    cfg = build_cfg(fn)
    reachable = reachable_blocks(cfg)
    if len(reachable) == len(cfg.blocks):
        return False
    keep: list[IRInstr] = []
    for block in cfg.blocks:
        if block.index in reachable:
            keep.extend(fn.instrs[block.start : block.end])
        else:
            # Preserve label markers: other code may still name them
            # (e.g. a CBR arm the folder will clean up later).
            for ins in fn.instrs[block.start : block.end]:
                if ins.op is IROp.LABEL:
                    keep.append(ins)
    fn.instrs[:] = keep
    return True


def optimize_function(fn: IRFunction, max_rounds: int = 8) -> int:
    """Run the pass pipeline to a fixed point; returns rounds used."""
    from .cse import eliminate_common_subexpressions

    rounds = 0
    for rounds in range(1, max_rounds + 1):
        changed = False
        changed |= fold_constants(fn)
        changed |= eliminate_common_subexpressions(fn)
        changed |= propagate_copies(fn)
        changed |= eliminate_dead_code(fn)
        changed |= remove_unreachable(fn)
        if not changed:
            break
    return rounds


def optimize_module(module: IRModule, max_rounds: int = 8) -> None:
    """Optimize every function of a module in place."""
    for fn in module.functions.values():
        optimize_function(fn, max_rounds)
