"""The global fast-path/reference-path switch.

The perf-sensitive kernels — the simplex pivot loop, integer-program
matrix lowering, chunk-model constraint generation, and instruction
encode/decode — each exist twice: the *reference* implementation (the
original, loop-per-row code, kept verbatim) and the *fast* implementation
(vectorized with numpy / bulk lookups).  Both must produce bit-identical
answers; ``tests/test_ilp_fastpath.py`` runs them side by side and
``repro bench`` records the speedup of one over the other.

This module owns the process-wide switch.  The fast path is the
default; the reference path is selected either with the
``REPRO_REFERENCE_PATH=1`` environment variable (picked up at import
time — handy for subprocess differential tests) or with the
:func:`reference_mode` context manager (in-process differential tests
and the benchmark harness).

The switch is deliberately *not* thread-local: the optimized and
reference paths return identical results, so a racing reader can never
observe a wrong answer — only a differently-priced one.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

#: Environment knob: any value other than "" / "0" starts the process
#: on the reference path.
ENV_FLAG = "REPRO_REFERENCE_PATH"

_reference = os.environ.get(ENV_FLAG, "") not in ("", "0")


def fastpath_enabled() -> bool:
    """Is the vectorized fast path active (the default)?"""
    return not _reference


@contextmanager
def reference_mode(enabled: bool = True) -> Iterator[None]:
    """Run a block on the retained reference implementations.

    ``reference_mode(False)`` re-enables the fast path inside an outer
    reference block (used by the harness to interleave measurements).
    """
    global _reference
    previous = _reference
    _reference = enabled
    try:
        yield
    finally:
        _reference = previous


__all__ = ["ENV_FLAG", "fastpath_enabled", "reference_mode"]
