"""Trickle dissemination on the event kernel (polite-gossip flooding).

Implements the Trickle algorithm (RFC 6206 / Levis et al., the
mechanism under Deluge-style code dissemination) on
:class:`~repro.net.kernel.SimKernel`:

* every node runs an interval timer that **doubles** from ``imin_s``
  up to ``imax_s`` while the neighbourhood is consistent, so a
  converged network beacons at a vanishing rate;
* at a jittered point ``t ∈ [I/2, I)`` of each interval the node
  broadcasts a metadata *beacon* (version + held-packet bitmap) —
  unless it already overheard ``k`` consistent beacons this interval
  (**polite suppression**);
* an *inconsistent* beacon (a neighbour with different data) **resets**
  the listener's interval to ``imin_s``, so news travels at the fast
  rate while it is news;
* data moves **receiver-driven**, Deluge-style (ADV/REQ/DATA): a node
  that hears a beacon advertising packets it lacks *requests* them
  from that one holder, which answers with a jittered burst — and
  **politely suppresses** its pending burst when it overhears another
  neighbour already sending those packets.  Because beacon suppression
  leaves ~one advertiser per neighbourhood and requests converge on
  it, a neighbourhood's needs collapse into ~one burst per interval
  instead of one response per holder.

Compared to the flood campaign this trades a steady trickle of tiny
beacons for the elimination of redundant data broadcasts — the pinned
``dissemination`` benchmark area records the transmission and joule
ratio on a dense lossy 1k-node fleet, and ``docs/SIMULATOR.md``
documents every parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Optional

from ..diff.packets import DEFAULT_OVERHEAD, DEFAULT_PAYLOAD
from ..energy.power_model import MICA2, PowerModel
from ..obs import metrics, trace
from .errors import NetConfigError
from .faults import FaultPlan
from .fleet_sim import FleetSim
from .kernel import LPL_1, DutyCycle, KernelReport
from .node_state import APPLY_ROUNDS
from .profiles import DeviceProfile
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .coding import CodedTransferParams


@dataclass(frozen=True)
class TrickleParams:
    """Trickle timing and suppression constants (see docs/SIMULATOR.md).

    ``imin_s``/``imax_s`` bound the interval doubling; ``k`` is the
    redundancy constant (beacon only if fewer than ``k`` consistent
    beacons were overheard since the node last fired); ``burst`` caps
    the data packets per response; ``response_wait_s`` is the jitter
    window before answering a needy beacon — the window in which
    overhearing another answer suppresses ours.
    """

    imin_s: float = 1.0
    imax_s: float = 64.0
    k: int = 1
    burst: int = 8
    response_wait_s: float = 0.5

    def __post_init__(self) -> None:
        if self.imin_s <= 0.0:
            raise NetConfigError(
                "imin_s", self.imin_s, f"imin_s must be positive, got {self.imin_s}"
            )
        if self.imax_s < self.imin_s:
            raise NetConfigError(
                "imax_s", self.imax_s,
                f"imax_s {self.imax_s} must be >= imin_s {self.imin_s}",
            )
        if self.k < 1:
            raise NetConfigError(
                "k", self.k, f"redundancy constant k must be >= 1, got {self.k}"
            )
        if self.burst < 1:
            raise NetConfigError(
                "burst", self.burst, f"burst must be >= 1, got {self.burst}"
            )
        if self.response_wait_s <= 0.0:
            raise NetConfigError(
                "response_wait_s", self.response_wait_s,
                f"response_wait_s must be positive, got {self.response_wait_s}",
            )


#: Bytes of beacon payload ahead of the held-packet bitmap (version
#: word + packet count).
BEACON_HEADER_BYTES = 4


class TrickleSim(FleetSim):
    """One Trickle run; see :func:`run_trickle` for the public entry."""

    protocol = "trickle"

    def __init__(self, *args, params: TrickleParams, **kwargs):
        super().__init__(*args, **kwargs)
        self.params = params
        self.beacon_bits = 8 * (
            BEACON_HEADER_BYTES
            + (self.count + 7) // 8
            + self.overhead_per_packet
        )

    # -- the Trickle timer ----------------------------------------------

    def start(self) -> None:
        for node in range(self.topology.node_count):
            self._start_interval(node, self.params.imin_s)

    def on_reboot(self, node: int) -> None:
        self._start_interval(node, self.params.imin_s)

    def _start_interval(self, node: int, interval: float) -> None:
        state = self.nodes[node]
        state.interval = interval
        state.c = 0
        delay = interval / 2.0 + self.rng.random() * (interval / 2.0)
        state.timer = self.kernel.schedule(
            delay, node, partial(self._fire, node)
        )

    def _fire(self, node: int) -> None:
        state = self.nodes[node]
        state.timer = None
        if not state.alive:
            return
        if state.c < self.params.k:
            self._beacon(node)
        else:
            self.suppressed += 1
        self._start_interval(
            node, min(state.interval * 2.0, self.params.imax_s)
        )

    def _reset_interval(self, node: int) -> None:
        state = self.nodes[node]
        if state.interval <= self.params.imin_s:
            return
        self.resets += 1
        if state.timer is not None:
            state.timer.cancel()
        self._start_interval(node, self.params.imin_s)

    # -- beacons ---------------------------------------------------------

    def _beacon(self, node: int) -> None:
        if not self.tx_gate(node):
            # Regulatory off-time not elapsed: skip this interval's
            # beacon (a deferral, never a violation).  The Trickle
            # timer itself supplies the retry.
            return
        self.beacons += 1
        sender_powered = self.account_tx(node, self.beacon_bits)
        for peer in self.topology.neighbors.get(node, ()):
            if not self.nodes[peer].alive or not self.link_up(node, peer):
                continue
            if not self.account_rx(peer, self.beacon_bits):
                continue
            if self.rng_link.random() < self.loss:
                self.drops += 1
                continue
            self._hear_beacon(peer, node)
        if not sender_powered:
            self._brownout(node, "packet tx")

    def _hear_beacon(self, listener: int, sender: int) -> None:
        lstate = self.nodes[listener]
        sstate = self.nodes[sender]
        if lstate.held == sstate.held and lstate.committed == sstate.committed:
            lstate.c += 1
            return
        # Inconsistency: reset to the fast rate so news spreads fast.
        self._reset_interval(listener)
        want = sstate.held & ~lstate.held
        if want and not lstate.committed and lstate.request_evt is None:
            self._request(listener, sender, want)

    # -- receiver-driven transfer (ADV / REQ / DATA) ---------------------

    def _request(self, node: int, holder: int, want: int) -> None:
        """REQ leg: solicit the ``want`` packets from the one ``holder``
        whose (suppression-surviving) beacon we just heard.

        Receiver-driven soliciting is what keeps the data plane quiet:
        every needy listener of that beacon converges on the *same*
        holder, whose pending mask consolidates their needs into one
        jittered burst.  The request itself rides the radio (and the
        loss coin), and the node holds off further requests for a
        response window either way — a lost REQ costs silence, never a
        storm.
        """
        if not self.tx_gate(node):
            # Budget-gated REQ: stay silent; a later beacon re-triggers.
            return
        self.requests += 1
        requester_powered = self.account_tx(node, self.beacon_bits)
        holder_powered = self.account_rx(holder, self.beacon_bits)
        if requester_powered:
            state = self.nodes[node]
            state.request_evt = self.kernel.schedule(
                2.0 * self.params.response_wait_s,
                node,
                partial(self._request_timeout, node),
            )
        else:
            self._brownout(node, "packet tx")
        if not holder_powered:
            return
        if self.rng_link.random() < self.loss:
            self.drops += 1
            return
        hstate = self.nodes[holder]
        hstate.pending |= want
        if hstate.respond is None:
            delay = self.rng.random() * self.params.response_wait_s
            hstate.respond = self.kernel.schedule(
                delay, holder, partial(self._respond, holder)
            )

    def _request_timeout(self, node: int) -> None:
        self.nodes[node].request_evt = None

    # -- data responses with polite suppression --------------------------

    def _respond(self, node: int) -> None:
        state = self.nodes[node]
        state.respond = None
        if not state.alive:
            state.pending = 0
            return
        if state.pending & state.held and not self.tx_gate(node):
            # Keep the pending mask and retry the burst at the node's
            # next legal TX slot (polite suppression still applies).
            delay = self.kernel.next_tx_time(node) - self.kernel.now
            state.respond = self.kernel.schedule(
                max(delay, 1e-9), node, partial(self._respond, node)
            )
            return
        send = state.pending & state.held
        state.pending = 0
        if not send:
            self.suppressed += 1
            return
        batch = []
        mask = send
        while mask and len(batch) < self.params.burst:
            low = mask & -mask
            batch.append(low.bit_length() - 1)
            mask ^= low
        self.broadcast_data(node, batch)
        if not state.alive:
            # The burst browned the sender out mid-transmission.
            state.pending = 0
            return
        if mask:
            # More than one burst owed: re-queue the remainder.
            state.pending |= mask
            delay = self.rng.random() * self.params.response_wait_s
            state.respond = self.kernel.schedule(
                delay, node, partial(self._respond, node)
            )

    def on_overhear_data(self, node: int, mask: int) -> None:
        state = self.nodes[node]
        if not state.pending:
            return
        # Polite suppression: a neighbour is already sending these.
        state.pending &= ~mask
        if not state.pending and state.respond is not None:
            state.respond.cancel()
            state.respond = None
            self.suppressed += 1


def run_trickle(
    topology: Topology,
    blob: bytes,
    plan: Optional[FaultPlan] = None,
    *,
    loss: float = 0.0,
    seed: int = 1,
    power: PowerModel = MICA2,
    params: Optional[TrickleParams] = None,
    duty_cycle: DutyCycle = LPL_1,
    max_time: float = 600.0,
    payload_per_packet: int = DEFAULT_PAYLOAD,
    overhead_per_packet: int = DEFAULT_OVERHEAD,
    old_version: int = 0,
    new_version: int = 1,
    round_s: float = 1.0,
    coding: "Optional[CodedTransferParams]" = None,
    profile: Optional[DeviceProfile] = None,
) -> KernelReport:
    """Disseminate ``blob`` with Trickle; never raises for an
    unconverged fleet.

    Nodes still missing packets when ``max_time`` simulated seconds
    elapse come back quarantined in a ``"partial"``
    :class:`~repro.net.kernel.KernelReport`.  Fault-plan rounds map to
    kernel time as ``round * round_s``.  Deterministic given
    ``(topology, blob, plan, seed, params)`` — same inputs, byte-equal
    ``report.to_json()``.
    """
    trickle_params = params if params is not None else TrickleParams()
    with trace.span(
        "net.trickle.run",
        nodes=topology.node_count,
        bytes=len(blob),
        loss=loss,
    ):
        sim = TrickleSim(
            topology,
            blob,
            plan,
            loss=loss,
            seed=seed,
            power=power,
            duty_cycle=duty_cycle,
            payload_per_packet=payload_per_packet,
            overhead_per_packet=overhead_per_packet,
            old_version=old_version,
            new_version=new_version,
            round_s=round_s,
            apply_s=APPLY_ROUNDS * round_s,
            coding=coding,
            profile=profile,
            component="net-trickle",
            params=trickle_params,
        )
        report = sim.run(max_time)
    metrics.counter("net.trickle.runs").inc()
    metrics.counter("net.trickle.beacons").inc(report.beacons)
    metrics.counter("net.trickle.requests").inc(report.requests)
    metrics.counter("net.trickle.transmissions").inc(report.transmissions)
    metrics.counter("net.trickle.suppressed").inc(report.suppressed)
    metrics.counter("net.trickle.resets").inc(report.resets)
    metrics.gauge("net.kernel.sleep_fraction").set(report.sleep_fraction)
    metrics.counter("net.energy_j").inc(report.total_energy_j)
    return report


__all__ = ["BEACON_HEADER_BYTES", "TrickleParams", "TrickleSim", "run_trickle"]
