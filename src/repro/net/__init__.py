"""WSN dissemination: topologies, flooding, energy ledgers."""

from .dissemination import (
    DisseminationResult,
    NodeLedger,
    PATCH_CYCLES_PER_BYTE,
    ReportModel,
    disseminate,
)
from .topology import Topology, grid, line, random_geometric

__all__ = [
    "DisseminationResult",
    "NodeLedger",
    "PATCH_CYCLES_PER_BYTE",
    "ReportModel",
    "Topology",
    "disseminate",
    "grid",
    "line",
    "random_geometric",
]

from .lossy import LossyResult, NACK_BYTES, disseminate_lossy

__all__ += ["LossyResult", "NACK_BYTES", "disseminate_lossy"]
