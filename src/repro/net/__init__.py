"""WSN dissemination: topologies, flooding, energy ledgers.

Models the network half of the paper's setting (§1, §2.1): a sink
distributes the packetised edit script hop-by-hop to every sensor,
and each radioed bit costs roughly 1000x the energy of executing an
instruction — the asymmetry that makes script size the quantity UCC
optimises.

Hop model
    A :class:`~repro.net.topology.Topology` (grid / line / random
    geometric) fixes who hears whom.  :func:`disseminate` floods the
    script: every node rebroadcasts each packet once, every radio
    neighbour receives it, and the round count equals the hop eccentricity
    of the sink.  :func:`~repro.net.lossy.disseminate_lossy` adds
    per-link Bernoulli loss with NACK-driven retransmission rounds
    (XNP/Deluge/MNP-style, the paper's refs [11], [17]), which
    multiplies the radio bill as loss grows.

Energy model
    Per-node :class:`~repro.net.dissemination.NodeLedger`\\ s price
    every transmitted and received bit with the Mica2 power model of
    paper Figure 3 (:data:`repro.energy.power_model.MICA2`), plus CPU
    energy for script interpretation and patching
    (:data:`~repro.net.dissemination.PATCH_CYCLES_PER_BYTE`).
    :class:`~repro.net.dissemination.ReportModel` reproduces §2.1's
    data-report example: a report travelling ``h`` hops runs the
    processing code once but the transmission code ``h`` times.

Dissemination publishes ``net.*`` metrics and ``net.disseminate[_lossy]``
spans into :mod:`repro.obs` — see docs/OBSERVABILITY.md.
"""

from .dissemination import (
    DisseminationResult,
    NodeLedger,
    PATCH_CYCLES_PER_BYTE,
    ReportModel,
    disseminate,
)
from .topology import Topology, build_topology, grid, line, random_geometric

__all__ = [
    "DisseminationResult",
    "NodeLedger",
    "PATCH_CYCLES_PER_BYTE",
    "ReportModel",
    "Topology",
    "build_topology",
    "disseminate",
    "grid",
    "line",
    "random_geometric",
]

from .lossy import LossyResult, NACK_BYTES, disseminate_lossy

__all__ += ["LossyResult", "NACK_BYTES", "disseminate_lossy"]
