"""WSN dissemination: topologies, flooding, energy ledgers.

Models the network half of the paper's setting (§1, §2.1): a sink
distributes the packetised edit script hop-by-hop to every sensor,
and each radioed bit costs roughly 1000x the energy of executing an
instruction — the asymmetry that makes script size the quantity UCC
optimises.

Hop model
    A :class:`~repro.net.topology.Topology` (grid / line / random
    geometric) fixes who hears whom.  :func:`disseminate` floods the
    script: every node rebroadcasts each packet once, every radio
    neighbour receives it, and the round count equals the hop eccentricity
    of the sink.  :func:`~repro.net.lossy.disseminate_lossy` adds
    per-link Bernoulli loss with NACK-driven retransmission rounds
    (XNP/Deluge/MNP-style, the paper's refs [11], [17]), which
    multiplies the radio bill as loss grows.

Energy model
    Per-node :class:`~repro.net.dissemination.NodeLedger`\\ s price
    every transmitted and received bit with the Mica2 power model of
    paper Figure 3 (:data:`repro.energy.power_model.MICA2`), plus CPU
    energy for script interpretation and patching
    (:data:`~repro.net.dissemination.PATCH_CYCLES_PER_BYTE`).
    :class:`~repro.net.dissemination.ReportModel` reproduces §2.1's
    data-report example: a report travelling ``h`` hops runs the
    processing code once but the transmission code ``h`` times.

Fault-tolerant campaigns
    :mod:`~repro.net.faults` scripts deterministic fault plans (node
    crash/reboot, payload corruption, partition windows, duplicate
    delivery); :mod:`~repro.net.node_state` gives every node a
    CRC-verified staging bank with a crash-consistent two-bank commit;
    :func:`~repro.net.campaign.run_campaign` drives the fleet to
    convergence with bounded retry/backoff and returns a structured
    :class:`~repro.net.campaign.CampaignReport` (quarantined nodes,
    fault log, retransmission overhead) instead of raising.

Event kernel and kernel protocols
    :mod:`~repro.net.kernel` is the deterministic event-driven
    simulation kernel (binary-heap queue keyed ``(time, seq, node)``,
    per-node radio-time accounting, :class:`~repro.net.kernel.DutyCycle`
    idle-listen/sleep pricing); :mod:`~repro.net.fleet_sim` layers the
    shared fleet machinery (bitmask staging banks, fault-plan events,
    delivery coins, crash-consistent commit) on top, and
    :func:`~repro.net.trickle.run_trickle` /
    :func:`~repro.net.gossip.run_gossip` are the suppression-based
    dissemination protocols built on it.  The flood campaign itself
    runs on the kernel too (round ticks and fault-plan entries become
    events), byte-identical to the retained synchronous loop.  See
    docs/SIMULATOR.md for the determinism contract and parameters.

Dissemination publishes ``net.*`` metrics and ``net.disseminate[_lossy]``
/ ``net.kernel.run`` / ``net.trickle.run`` / ``net.gossip.run`` spans
into :mod:`repro.obs` — see docs/OBSERVABILITY.md.
"""

from .dissemination import (
    DisseminationResult,
    NodeLedger,
    PATCH_CYCLES_PER_BYTE,
    ReportModel,
    disseminate,
)
from .topology import Topology, build_topology, grid, line, random_geometric

__all__ = [
    "DisseminationResult",
    "NodeLedger",
    "PATCH_CYCLES_PER_BYTE",
    "ReportModel",
    "Topology",
    "build_topology",
    "disseminate",
    "grid",
    "line",
    "random_geometric",
]

from .lossy import LossyResult, NACK_BYTES, disseminate_lossy

__all__ += ["LossyResult", "NACK_BYTES", "disseminate_lossy"]

from .errors import DisconnectedTopologyError, DisseminationIncomplete
from .faults import (
    FaultPlan,
    NodeCrash,
    PartitionWindow,
    PowerTrace,
    generate_fault_plan,
    generate_power_traces,
)
from .node_state import (
    NodeUpdateState,
    ScriptPacket,
    packet_crc,
    packetise_blob,
)
from .profiles import (
    BATTERYLESS_HARVEST,
    DeviceProfile,
    LORAWAN_DR3,
    MICA2_PROFILE,
    PROFILES,
    get_profile,
)
from .campaign import CampaignReport, PROTOCOLS, ROUND_S, run_campaign

__all__ += [
    "BATTERYLESS_HARVEST",
    "CampaignReport",
    "DeviceProfile",
    "DisconnectedTopologyError",
    "DisseminationIncomplete",
    "FaultPlan",
    "LORAWAN_DR3",
    "MICA2_PROFILE",
    "NodeCrash",
    "NodeUpdateState",
    "PROFILES",
    "PROTOCOLS",
    "PartitionWindow",
    "PowerTrace",
    "ROUND_S",
    "ScriptPacket",
    "generate_fault_plan",
    "generate_power_traces",
    "get_profile",
    "packet_crc",
    "packetise_blob",
    "run_campaign",
]

from .kernel import (
    ALWAYS_ON,
    DutyCycle,
    EventHandle,
    KernelReport,
    LPL_1,
    LPL_10,
    SimKernel,
    rounds_equivalent,
)
from .fleet_sim import FleetNode, FleetSim
from .gossip import GossipParams, run_gossip
from .trickle import TrickleParams, run_trickle

__all__ += [
    "ALWAYS_ON",
    "DutyCycle",
    "EventHandle",
    "FleetNode",
    "FleetSim",
    "GossipParams",
    "KernelReport",
    "LPL_1",
    "LPL_10",
    "SimKernel",
    "TrickleParams",
    "rounds_equivalent",
    "run_gossip",
    "run_trickle",
]
