"""Coded transfer: XOR parity batches and a systematic LT fountain.

On a lossy link the flood campaign repairs losses *by name*: a NACK
advertises the exact missing sequence numbers and the sender
retransmits those packets, paying one round trip per repair wave.
Cooperative Coded Data Dissemination (PAPERS.md) replaces that with
*rateless* repair: the ``k`` script packets form one **generation**,
senders emit random GF(2) combinations of the generation, and a
receiver recovers the whole generation from **any** ``k`` linearly
independent coded packets — about ``k(1+ε)`` receptions — with no
feedback channel at all.

Two schemes, matched to the two dissemination machineries:

* ``"lt"`` — a systematic Luby-Transform fountain for the flood
  campaign (:func:`run_coded_campaign`): the first ``k`` coded packets
  are the source packets themselves (systematic prefix — a loss-free
  link pays zero overhead), later packets XOR ``d`` source packets
  with ``d`` drawn from the robust soliton distribution.  Every
  stream is seeded ``"repro-coding:<seed>:<sender>"`` so the whole
  campaign is deterministic and replayable.
* ``"xor"`` — per-burst parity for the event-kernel protocols
  (Trickle/gossip): every ``group`` data packets of a burst are
  followed by one XOR parity packet, so a receiver that lost exactly
  one packet of the group repairs it locally instead of waiting a
  whole Trickle interval for a fresh ADV/REQ/DATA exchange.

Determinism: coefficient masks are pure functions of the stream seed
and the packet's sequence number; two runs with the same inputs
produce byte-identical reports (pinned by tests and the ``versioning``
bench area).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..diff.packets import DEFAULT_OVERHEAD, DEFAULT_PAYLOAD
from ..energy.power_model import MICA2, PowerModel
from ..obs import metrics, trace
from .dissemination import PATCH_CYCLES_PER_BYTE, NodeLedger
from .errors import NetConfigError
from .faults import FaultPlan
from .node_state import packetise_blob
from .topology import Topology

#: Legal coding schemes (see module docstring).
CODING_SCHEMES = ("lt", "xor")

#: Wire bytes of a coded packet's header beyond the payload: the
#: generation id, the 32-bit stream seed and the sequence number the
#: receiver re-derives the coefficient mask from.
CODE_HEADER_BYTES = 8


@dataclass(frozen=True)
class CodedTransferParams:
    """Knobs of one coded transfer (frozen, content-addressable).

    ``scheme`` picks the machinery (``"lt"`` for the flood campaign,
    ``"xor"`` for the kernel protocols); ``overhead`` is the fountain's
    ε — the fraction of extra coded packets a sender budgets beyond
    ``k`` per epoch; ``burst`` caps coded packets per broadcast;
    ``group`` is the XOR parity group size; ``seed`` derives every
    coefficient stream.
    """

    scheme: str = "lt"
    overhead: float = 0.25
    burst: int = 8
    group: int = 4
    seed: int = 1

    def __post_init__(self) -> None:
        if self.scheme not in CODING_SCHEMES:
            raise NetConfigError(
                "scheme", self.scheme,
                f"coding scheme must be one of {CODING_SCHEMES}, "
                f"got {self.scheme!r}",
            )
        if not 0.0 <= self.overhead <= 2.0:
            raise NetConfigError(
                "overhead", self.overhead,
                f"coding overhead ε must be in [0, 2], got {self.overhead}",
            )
        if self.burst < 1:
            raise NetConfigError(
                "burst", self.burst, f"burst must be >= 1, got {self.burst}"
            )
        if self.group < 2:
            raise NetConfigError(
                "group", self.group,
                f"XOR parity group must be >= 2, got {self.group}",
            )


def robust_soliton_degree(k: int, rng: random.Random) -> int:
    """Draw one LT degree from the robust soliton distribution.

    Standard parameterisation (Luby 2002) with c=0.1, delta=0.5; the
    distribution is built once per stream and sampled by inverse CDF so
    the draw consumes exactly one ``rng.random()`` — the property the
    determinism tests pin.
    """
    if k <= 1:
        return 1
    c, delta = 0.1, 0.5
    r = c * math.log(k / delta) * math.sqrt(k)
    spike = max(1, min(k, int(round(k / r)))) if r > 0 else 1
    rho = [0.0] * (k + 1)
    rho[1] = 1.0 / k
    for d in range(2, k + 1):
        rho[d] = 1.0 / (d * (d - 1))
    tau = [0.0] * (k + 1)
    for d in range(1, spike):
        tau[d] = r / (d * k)
    tau[spike] = r * math.log(r / delta) / k if r > 1 else 0.0
    weights = [rho[d] + max(0.0, tau[d]) for d in range(k + 1)]
    total = sum(weights)
    u = rng.random() * total
    acc = 0.0
    for d in range(1, k + 1):
        acc += weights[d]
        if u <= acc:
            return d
    return k


class LTStream:
    """Deterministic systematic LT coded-packet stream over ``k`` source
    packets.

    Packet ``i`` for ``i < k`` is the source packet itself (systematic
    prefix); later packets carry a random combination.  The coefficient
    mask of sequence ``i`` is a pure function of ``(label, i)``, so a
    receiver reconstructs it from the 8-byte header alone.
    """

    def __init__(self, k: int, label: str):
        if k < 1:
            raise NetConfigError("k", k, f"generation needs >= 1 packet, got {k}")
        self.k = k
        self.label = label

    def mask_at(self, sequence: int) -> int:
        if sequence < self.k:
            return 1 << sequence
        rng = random.Random(f"repro-lt:{self.label}:{sequence}")
        degree = robust_soliton_degree(self.k, rng)
        mask = 0
        while bin(mask).count("1") < degree:
            mask |= 1 << rng.randrange(self.k)
        return mask

    def payload_at(self, sequence: int, padded: "List[bytes]") -> bytes:
        mask = self.mask_at(sequence)
        out = bytearray(len(padded[0]))
        index = 0
        while mask:
            if mask & 1:
                chunk = padded[index]
                for at in range(len(out)):
                    out[at] ^= chunk[at]
            mask >>= 1
            index += 1
        return bytes(out)


class GenerationDecoder:
    """Incremental GF(2) decoder for one ``k``-packet generation.

    Receiving a coded packet reduces its coefficient mask against the
    accumulated basis; an innovative packet raises the rank by one, a
    dependent one is discarded.  At rank ``k`` the basis is solved by
    Gauss–Jordan elimination and the original payloads fall out.
    """

    def __init__(self, k: int):
        self.k = k
        #: pivot bit -> (mask, payload) with ``mask``'s lowest set bit
        #: at the pivot
        self.rows: Dict[int, Tuple[int, bytearray]] = {}

    @property
    def rank(self) -> int:
        return len(self.rows)

    @property
    def complete(self) -> bool:
        return self.rank >= self.k

    def add(self, mask: int, payload: bytes) -> bool:
        """Fold one coded packet in; True when it was innovative."""
        work = bytearray(payload)
        while mask:
            pivot = mask & -mask
            row = self.rows.get(pivot)
            if row is None:
                self.rows[pivot] = (mask, work)
                return True
            rmask, rpayload = row
            mask ^= rmask
            for at in range(len(work)):
                work[at] ^= rpayload[at]
        return False

    def payloads(self) -> "List[bytes]":
        """The decoded source packets (requires ``complete``)."""
        if not self.complete:
            raise NetConfigError(
                "rank", self.rank,
                f"generation not decodable: rank {self.rank} < k {self.k}",
            )
        masks: Dict[int, int] = {}
        payloads: Dict[int, bytearray] = {}
        for pivot, (mask, payload) in self.rows.items():
            masks[pivot] = mask
            payloads[pivot] = bytearray(payload)
        # Back-substitute from the highest pivot down.  By induction the
        # row being processed is already a unit vector (every higher bit
        # was eliminated from it in an earlier iteration), so XORing it
        # into the others clears exactly its pivot bit.
        for pivot in sorted(masks, reverse=True):
            source = payloads[pivot]
            for other in masks:
                if other != pivot and masks[other] & pivot:
                    masks[other] ^= pivot
                    target = payloads[other]
                    for at in range(len(target)):
                        target[at] ^= source[at]
        return [bytes(payloads[1 << index]) for index in range(self.k)]


def decode_generation(
    k: int, blob_len: int, payload_per_packet: int,
    received: "List[Tuple[int, bytes]]",
) -> "Optional[bytes]":
    """Decode a whole blob from ``(mask, payload)`` coded packets.

    Returns the reassembled blob, or ``None`` when the received set has
    insufficient rank — the primitive the hypothesis property tests
    drive with arbitrary packet subsets.
    """
    decoder = GenerationDecoder(k)
    for mask, payload in received:
        decoder.add(mask, payload)
        if decoder.complete:
            break
    if not decoder.complete:
        return None
    blob = b"".join(decoder.payloads())
    return blob[:blob_len]


def pad_packets(blob: bytes, payload_per_packet: int) -> "List[bytes]":
    """The generation's source packets, zero-padded to equal length."""
    packets = packetise_blob(blob, payload_per_packet)
    if not packets:
        return []
    return [
        pkt.payload.ljust(payload_per_packet, b"\x00") for pkt in packets
    ]


# ---------------------------------------------------------------------------
# Coded flood campaign (decode-and-forward fountain)
# ---------------------------------------------------------------------------


def run_coded_campaign(
    topology: Topology,
    blob: bytes,
    plan: "FaultPlan | None" = None,
    *,
    params: "CodedTransferParams | None" = None,
    loss: float = 0.0,
    seed: int = 1,
    power: PowerModel = MICA2,
    max_rounds: int = 200,
    payload_per_packet: int = DEFAULT_PAYLOAD,
    overhead_per_packet: int = DEFAULT_OVERHEAD,
    old_version: int = 0,
    new_version: int = 1,
    stall_limit: int = 24,
):
    """Disseminate ``blob`` by decode-and-forward fountain coding.

    Round structure: every node that holds the decoded generation (the
    sink, plus every node that has finished decoding) broadcasts up to
    ``params.burst`` fresh coded packets from its own deterministic
    stream while any alive neighbour is still decoding; receivers
    accumulate rank and commit (boot-pointer flip, CPU patch energy)
    the round they reach rank ``k``.  No NACKs, no retransmission
    naming: a lost packet is repaired by *any* later innovative packet.

    Fault plans apply exactly as in the flood campaign — crashes wipe
    volatile decoder state, partitions sever links, corruption burns a
    reception (the per-packet CRC rejects it before it reaches the
    decoder).  Returns a :class:`repro.net.campaign.CampaignReport`
    with ``broadcasts`` counting coded transmissions.
    """
    from .campaign import CampaignReport  # cycle: campaign routes here

    coded = params if params is not None else CodedTransferParams()
    if coded.scheme != "lt":
        raise NetConfigError(
            "scheme", coded.scheme,
            "run_coded_campaign speaks the generation-level 'lt' scheme; "
            "the 'xor' burst-parity scheme belongs to the kernel protocols",
        )
    if not 0.0 <= loss < 1.0:
        raise NetConfigError(
            "loss", loss, f"loss probability {loss} out of [0, 1)"
        )
    plan = plan if plan is not None else FaultPlan()
    with trace.span(
        "net.coding.run",
        nodes=topology.node_count,
        bytes=len(blob),
        loss=loss,
    ):
        report = _run_coded(
            topology, blob, plan, coded,
            loss=loss, seed=seed, power=power, max_rounds=max_rounds,
            payload_per_packet=payload_per_packet,
            overhead_per_packet=overhead_per_packet,
            old_version=old_version, new_version=new_version,
            stall_limit=stall_limit, report_cls=CampaignReport,
        )
    metrics.counter("net.coding.runs").inc()
    metrics.counter("net.coding.transmissions").inc(report.broadcasts)
    metrics.counter("net.coding.drops").inc(report.drops)
    metrics.counter("net.coding.energy_j").inc(report.total_energy_j)
    if report.converged:
        metrics.counter("net.coding.converged").inc()
    return report


def _run_coded(
    topology: Topology,
    blob: bytes,
    plan: FaultPlan,
    params: CodedTransferParams,
    *,
    loss: float,
    seed: int,
    power: PowerModel,
    max_rounds: int,
    payload_per_packet: int,
    overhead_per_packet: int,
    old_version: int,
    new_version: int,
    stall_limit: int,
    report_cls,
):
    node_count = topology.node_count
    padded = pad_packets(blob, payload_per_packet)
    k = len(padded)
    packet_bits = 8 * (payload_per_packet + overhead_per_packet + CODE_HEADER_BYTES)
    patch_j = PATCH_CYCLES_PER_BYTE * len(blob) * power.cycle_energy_j

    rng_link = random.Random(f"repro-coding-link:{seed}")
    rng_fault = random.Random(f"repro-coding-fault:{plan.seed}")

    hops = topology.hops_from_sink()
    unreachable = tuple(
        sorted(node for node in range(node_count) if node not in hops)
    )

    streams = [
        LTStream(max(k, 1), f"repro-coding:{params.seed}:{sender}")
        for sender in range(node_count)
    ]
    next_seq = [0] * node_count
    decoders: "List[Optional[GenerationDecoder]]" = [
        GenerationDecoder(k) if k else None for _ in range(node_count)
    ]
    committed = [False] * node_count
    alive = [True] * node_count
    committed[0] = True
    if k == 0:
        for node in range(1, node_count):
            if node not in unreachable:
                committed[node] = True

    ledgers = {node: NodeLedger() for node in range(node_count)}
    fault_log: "List[str]" = []
    broadcasts = 0
    drops = 0
    crc_rejections = 0
    duplicates = 0  # dependent (non-innovative) receptions
    rounds = 0
    last_progress = 0

    crashes_by_round: "Dict[int, list]" = {}
    reboots_by_round: "Dict[int, list]" = {}
    event_rounds: "set[int]" = set()
    for crash in plan.crashes:
        if crash.node >= node_count:
            continue
        crashes_by_round.setdefault(crash.round, []).append(crash)
        if crash.round <= max_rounds:
            event_rounds.add(crash.round)
        if crash.reboot_round is not None:
            reboots_by_round.setdefault(crash.reboot_round, []).append(crash)
            if crash.reboot_round <= max_rounds:
                event_rounds.add(crash.reboot_round)
    for window in plan.partitions:
        if window.start <= max_rounds:
            event_rounds.add(window.start)
        if window.end <= max_rounds:
            event_rounds.add(window.end)

    def link_up(a: int, b: int) -> bool:
        return not any(w.severs(a, b, rounds) for w in plan.partitions)

    def pending() -> "List[int]":
        out = []
        for node in range(1, node_count):
            if node in unreachable or committed[node]:
                continue
            if alive[node]:
                out.append(node)
            elif any(
                crash.node == node and crash.reboot_round is not None
                and crash.reboot_round > rounds
                for crash in plan.crashes
            ):
                out.append(node)
        return out

    while rounds < max_rounds:
        if not pending():
            break
        if rounds - last_progress >= stall_limit and not any(
            event > rounds for event in event_rounds
        ):
            break
        rounds += 1

        for crash in crashes_by_round.get(rounds, ()):
            node = crash.node
            if not alive[node]:
                continue
            alive[node] = False
            metrics.counter("net.fault.crashes").inc()
            detail = "after commit" if committed[node] else "decoder state lost"
            fault_log.append(f"r{rounds}: node {node} crashed ({detail})")
            if not committed[node]:
                decoders[node] = GenerationDecoder(k) if k else None
        for crash in reboots_by_round.get(rounds, ()):
            node = crash.node
            if alive[node]:
                continue
            alive[node] = True
            metrics.counter("net.fault.reboots").inc()
            image = "new image" if committed[node] else "golden image"
            version = new_version if committed[node] else old_version
            fault_log.append(
                f"r{rounds}: node {node} rebooted ({image} v{version})"
            )
        for window in plan.partitions:
            island = ",".join(str(n) for n in window.nodes)
            if window.start == rounds:
                metrics.counter("net.fault.partitions").inc()
                fault_log.append(f"r{rounds}: partition {{{island}}} isolated")
            if window.end == rounds:
                fault_log.append(f"r{rounds}: partition {{{island}}} healed")

        # -- broadcast phase: elected servers fountain to needy peers --
        # Each needy node elects its lowest-indexed decoded neighbour as
        # its server (receivers advertise their rank deficit, the
        # election is implicit in who they listen to); a server's burst
        # covers every needy peer in range at once — the coded
        # multicast gain, since every coded packet is innovative to
        # every receiver regardless of *which* packets each one lost.
        servers: "Dict[int, int]" = {}
        for node in range(1, node_count):
            if committed[node] or not alive[node] or node in unreachable:
                continue
            candidates = [
                peer
                for peer in topology.neighbors.get(node, ())
                if committed[peer] and alive[peer] and link_up(node, peer)
            ]
            if candidates:
                chosen = min(candidates)
                deficit = k - decoders[node].rank if decoders[node] else 0
                servers[chosen] = max(servers.get(chosen, 0), deficit)
        for sender in sorted(servers):
            needy = [
                peer
                for peer in topology.neighbors.get(sender, ())
                if alive[peer] and not committed[peer] and link_up(sender, peer)
            ]
            if not needy:
                continue
            # Send just enough for the worst-off elector to finish in
            # expectation, capped by the burst budget.
            deficit = servers[sender]
            shots = min(
                params.burst,
                max(1, math.ceil(deficit / (1.0 - loss))),
            )
            for _ in range(shots):
                sequence = next_seq[sender]
                next_seq[sender] += 1
                mask = streams[sender].mask_at(sequence)
                payload = streams[sender].payload_at(sequence, padded)
                broadcasts += 1
                ledgers[sender].tx_j += packet_bits * power.tx_bit_energy_j
                ledgers[sender].packets_sent += 1
                for peer in needy:
                    ledgers[peer].rx_j += packet_bits * power.rx_bit_energy_j
                    if rng_link.random() < loss:
                        drops += 1
                        continue
                    if (
                        plan.corrupt_prob
                        and rng_fault.random() < plan.corrupt_prob
                    ):
                        # The flipped byte fails the packet CRC before
                        # the mask ever reaches the decoder.
                        crc_rejections += 1
                        continue
                    decoder = decoders[peer]
                    if decoder is None or decoder.complete:
                        duplicates += 1
                        continue
                    if decoder.add(mask, payload):
                        ledgers[peer].packets_received += 1
                        last_progress = rounds
                    else:
                        duplicates += 1

        # -- commit phase: rank-k nodes verify, patch, and flip --------
        for node in range(1, node_count):
            if committed[node] or not alive[node]:
                continue
            decoder = decoders[node]
            if decoder is not None and decoder.complete:
                rebuilt = b"".join(decoder.payloads())[: len(blob)]
                if rebuilt != blob:
                    # Unreachable with per-packet CRCs; never commit an
                    # unverified generation.
                    decoders[node] = GenerationDecoder(k)
                    continue
                ledgers[node].cpu_j += patch_j
                committed[node] = True
                last_progress = rounds

    quarantined = tuple(
        sorted(
            node for node in range(1, node_count) if not committed[node]
        )
    )
    return report_cls(
        outcome="converged" if not quarantined else "partial",
        rounds=rounds,
        packets=k,
        script_bytes=len(blob),
        old_version=old_version,
        new_version=new_version,
        node_versions={
            node: new_version if committed[node] else old_version
            for node in range(node_count)
        },
        quarantined=quarantined,
        unreachable=unreachable,
        ledgers=ledgers,
        broadcasts=broadcasts,
        retransmissions=0,
        nacks=0,
        drops=drops,
        crc_rejections=crc_rejections,
        duplicates=duplicates,
        fault_log=fault_log,
        plan_digest=plan.digest(),
    )


__all__ = [
    "CODE_HEADER_BYTES",
    "CODING_SCHEMES",
    "CodedTransferParams",
    "GenerationDecoder",
    "LTStream",
    "decode_generation",
    "pad_packets",
    "robust_soliton_degree",
    "run_coded_campaign",
]
