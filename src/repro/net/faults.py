"""Deterministic, seedable fault-injection plans for OTA campaigns.

The base network model fails in exactly one benign way — independent
packet loss repaired by NACKs.  Real deployments (the Deluge/MNP class
of protocols the paper builds on, and gossip-based code propagation)
additionally lose whole nodes mid-patch, corrupt payloads in flight,
partition for minutes at a time, and deliver duplicates.  A
:class:`FaultPlan` scripts those events ahead of time so a campaign
run is a pure function of ``(topology, script, plan, seed)`` — the
same plan always produces the byte-identical
:class:`~repro.net.campaign.CampaignReport`, which is what makes a
fuzz finding replayable.

Fault vocabulary
    * :class:`NodeCrash` — a node dies at a given round (volatile
      staging state lost) and optionally reboots later;
    * :class:`PartitionWindow` — an island of nodes is cut off from
      the rest of the network for a window of rounds (link churn);
    * ``corrupt_prob`` — each delivered payload is bit-flipped with
      this probability (caught by the receiver's per-packet CRC);
    * ``duplicate_prob`` — each delivered packet arrives twice with
      this probability (deduplicated by the staging bank).

The sink (node 0) is mains-powered and drives the campaign, so plans
never crash or partition it.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass

from ..obs import metrics, trace
from .errors import FaultPlanError


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` crashes at the start of round ``round``.

    A crash wipes the node's volatile staging bank and aborts any
    in-progress patch application; the boot pointer keeps targeting the
    golden image until the two-bank commit completes, so a rebooted
    node runs either the golden image or the fully verified new one —
    never a torn binary.  ``reboot_round`` of ``None`` means the node
    never returns (battery pulled).
    """

    node: int
    round: int
    reboot_round: int | None = None

    def __post_init__(self):
        if self.node < 1:
            raise FaultPlanError(
                "node", self.node,
                f"NodeCrash.node must be >= 1 (the sink never crashes), "
                f"got {self.node}",
            )
        if self.round < 1:
            raise FaultPlanError(
                "round", self.round,
                f"NodeCrash.round must be >= 1, got {self.round}",
            )
        if self.reboot_round is not None and self.reboot_round <= self.round:
            raise FaultPlanError(
                "reboot_round", self.reboot_round,
                f"NodeCrash.reboot_round must come after the crash round "
                f"{self.round}, got {self.reboot_round}",
            )


@dataclass(frozen=True)
class PartitionWindow:
    """Links between ``nodes`` and the rest are down in ``[start, end)``."""

    start: int
    end: int
    nodes: tuple[int, ...]

    def __post_init__(self):
        if self.start < 1:
            raise FaultPlanError(
                "start", self.start,
                f"PartitionWindow.start must be >= 1, got {self.start}",
            )
        if self.end <= self.start:
            raise FaultPlanError(
                "end", self.end,
                f"PartitionWindow.end must exceed start {self.start}, "
                f"got {self.end}",
            )
        if not self.nodes:
            raise FaultPlanError(
                "nodes", self.nodes,
                "PartitionWindow.nodes must not be empty",
            )
        if 0 in self.nodes:
            raise FaultPlanError(
                "nodes", self.nodes,
                "PartitionWindow.nodes must not contain the sink (node 0)",
            )

    def severs(self, a: int, b: int, round_no: int) -> bool:
        """Is the ``a``—``b`` link down during ``round_no``?"""
        if not self.start <= round_no < self.end:
            return False
        return (a in self.nodes) != (b in self.nodes)


@dataclass(frozen=True)
class PowerTrace:
    """A scripted power history for one node.

    ``brownout_at_j`` lists cumulative *spent*-energy thresholds (in
    joules, strictly ascending): the node browns out the moment its
    total energy spend crosses each threshold — deliberately checked
    between individual flash page writes during ``tick_apply``, the
    worst possible instants for a two-bank update.  ``harvest_scale``
    scales the profile's harvest income for this node (0 = permanently
    shaded panel, 2 = node in full sun).

    Power traces only act under an energy-limited
    :class:`~repro.net.profiles.DeviceProfile`; campaigns without one
    ignore them (and a plan without traces keeps its pre-trace digest,
    so every committed report digest survives this extension).
    """

    node: int
    brownout_at_j: tuple[float, ...] = ()
    harvest_scale: float = 1.0

    def __post_init__(self):
        if self.node < 1:
            raise FaultPlanError(
                "node", self.node,
                f"PowerTrace.node must be >= 1 (the sink is mains-powered), "
                f"got {self.node}",
            )
        if any(threshold <= 0.0 for threshold in self.brownout_at_j):
            raise FaultPlanError(
                "brownout_at_j", self.brownout_at_j,
                "PowerTrace.brownout_at_j thresholds must be positive",
            )
        if list(self.brownout_at_j) != sorted(set(self.brownout_at_j)):
            raise FaultPlanError(
                "brownout_at_j", self.brownout_at_j,
                "PowerTrace.brownout_at_j must be strictly ascending",
            )
        if self.harvest_scale < 0.0:
            raise FaultPlanError(
                "harvest_scale", self.harvest_scale,
                f"PowerTrace.harvest_scale must be >= 0, got {self.harvest_scale}",
            )


@dataclass(frozen=True)
class FaultPlan:
    """A scripted, reproducible set of faults for one campaign run.

    ``seed`` drives the per-delivery coin flips (corruption and
    duplication); crashes and partitions are scheduled explicitly so a
    plan is readable and shrinkable.
    """

    crashes: tuple[NodeCrash, ...] = ()
    partitions: tuple[PartitionWindow, ...] = ()
    corrupt_prob: float = 0.0
    duplicate_prob: float = 0.0
    seed: int = 0
    power_traces: tuple[PowerTrace, ...] = ()

    def __post_init__(self):
        if not 0.0 <= self.corrupt_prob < 1.0:
            raise FaultPlanError(
                "corrupt_prob", self.corrupt_prob,
                f"FaultPlan.corrupt_prob must be in [0, 1), "
                f"got {self.corrupt_prob}",
            )
        if not 0.0 <= self.duplicate_prob < 1.0:
            raise FaultPlanError(
                "duplicate_prob", self.duplicate_prob,
                f"FaultPlan.duplicate_prob must be in [0, 1), "
                f"got {self.duplicate_prob}",
            )
        crashed = [crash.node for crash in self.crashes]
        if len(crashed) != len(set(crashed)):
            raise FaultPlanError(
                "crashes", tuple(crashed),
                f"FaultPlan schedules multiple crashes for one node: {crashed}",
            )
        traced = [trace_.node for trace_ in self.power_traces]
        if len(traced) != len(set(traced)):
            raise FaultPlanError(
                "power_traces", tuple(traced),
                f"FaultPlan schedules multiple power traces for one node: "
                f"{traced}",
            )

    @property
    def is_empty(self) -> bool:
        return (
            not self.crashes
            and not self.partitions
            and self.corrupt_prob == 0.0
            and self.duplicate_prob == 0.0
            and not self.power_traces
        )

    def digest(self) -> str:
        """Content address of the plan (canonical JSON, SHA-256).

        ``power_traces`` is omitted while empty: the field postdates the
        first committed report digests, and every report embeds its
        plan's digest, so a trace-free plan must keep hashing exactly as
        it did before power traces existed.
        """
        payload = asdict(self)
        if not self.power_traces:
            del payload["power_traces"]
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One-line human summary."""
        parts = []
        for crash in self.crashes:
            back = (
                f" (reboots r{crash.reboot_round})"
                if crash.reboot_round is not None
                else " (never reboots)"
            )
            parts.append(f"crash node {crash.node}@r{crash.round}{back}")
        for window in self.partitions:
            island = ",".join(str(n) for n in window.nodes)
            parts.append(f"partition {{{island}}} r{window.start}-r{window.end}")
        if self.corrupt_prob:
            parts.append(f"corrupt p={self.corrupt_prob:g}")
        if self.duplicate_prob:
            parts.append(f"duplicate p={self.duplicate_prob:g}")
        for trace_ in self.power_traces:
            cuts = ",".join(f"{j:g}J" for j in trace_.brownout_at_j)
            detail = f"brownout@{cuts}" if cuts else "no cuts"
            if trace_.harvest_scale != 1.0:
                detail += f" harvest x{trace_.harvest_scale:g}"
            parts.append(f"power node {trace_.node}: {detail}")
        return "; ".join(parts) if parts else "no faults"


def generate_fault_plan(
    rng: random.Random,
    node_count: int,
    max_rounds: int = 120,
    intensity: float = 1.0,
) -> FaultPlan:
    """Draw a random fault plan from ``rng`` — the fuzz mutator dimension.

    ``intensity`` scales how eventful the plan is (1.0 ≈ a rough but
    usually recoverable deployment).  Deterministic: the plan is a pure
    function of the RNG state.
    """
    with trace.span("net.fault.plan", nodes=node_count):
        crashes = []
        candidates = list(range(1, node_count))
        rng.shuffle(candidates)
        crash_budget = min(len(candidates), max(0, round(3 * intensity)))
        for node in candidates[: rng.randint(0, crash_budget)]:
            crash_round = rng.randint(1, max(1, max_rounds // 3))
            if rng.random() < 0.7:  # most crashed nodes come back
                reboot = crash_round + rng.randint(1, max(2, max_rounds // 4))
            else:
                reboot = None
            crashes.append(
                NodeCrash(node=node, round=crash_round, reboot_round=reboot)
            )

        partitions = []
        if node_count > 3 and rng.random() < 0.5 * intensity:
            island_size = rng.randint(1, max(1, (node_count - 1) // 3))
            island = tuple(
                sorted(rng.sample(range(1, node_count), island_size))
            )
            start = rng.randint(1, max(1, max_rounds // 3))
            end = start + rng.randint(2, max(3, max_rounds // 4))
            partitions.append(
                PartitionWindow(start=start, end=end, nodes=island)
            )

        corrupt = round(rng.uniform(0.0, 0.15 * intensity), 3)
        duplicate = round(rng.uniform(0.0, 0.10 * intensity), 3)
        plan = FaultPlan(
            crashes=tuple(crashes),
            partitions=tuple(partitions),
            corrupt_prob=corrupt if rng.random() < 0.6 else 0.0,
            duplicate_prob=duplicate if rng.random() < 0.4 else 0.0,
            seed=rng.randint(0, 2**31 - 1),
        )
    metrics.counter("net.fault.plans").inc()
    return plan


def generate_power_traces(
    rng: random.Random,
    node_count: int,
    *,
    storage_j: float,
    intensity: float = 1.0,
    scale_j: "float | None" = None,
) -> tuple[PowerTrace, ...]:
    """Draw seeded power traces — the intermittent-power fuzz dimension.

    Thresholds are drawn between a few percent and the whole of the
    *energy scale*: ``scale_j`` when the caller provides one (the
    fuzzer passes the blob's flash-write cost, so cuts land between
    individual page writes of the apply), else ``storage_j`` (the
    profile's capacitor size).  ``intensity`` scales how many nodes get
    traces and how many cuts each suffers.  Deterministic: a pure
    function of the RNG state.
    """
    if storage_j <= 0.0:
        raise FaultPlanError(
            "storage_j", storage_j,
            "generate_power_traces needs an energy-limited profile "
            "(storage_j > 0) to scale brownout thresholds",
        )
    if scale_j is not None and scale_j <= 0.0:
        raise FaultPlanError(
            "scale_j", scale_j,
            "generate_power_traces scale_j must be positive when given",
        )
    scale = scale_j if scale_j is not None else storage_j
    with trace.span("net.profile.power_plan", nodes=node_count):
        traces = []
        candidates = list(range(1, node_count))
        rng.shuffle(candidates)
        budget = min(len(candidates), max(1, round(3 * intensity)))
        for node in candidates[: rng.randint(1, budget)]:
            cuts = sorted(
                round(rng.uniform(0.02, 1.0) * scale, 9)
                for _ in range(rng.randint(1, max(1, round(2 * intensity))))
            )
            thresholds = tuple(dict.fromkeys(cuts))
            scale = round(rng.uniform(0.25, 2.0), 3) if rng.random() < 0.5 else 1.0
            traces.append(
                PowerTrace(
                    node=node,
                    brownout_at_j=thresholds,
                    harvest_scale=scale,
                )
            )
        traces.sort(key=lambda trace_: trace_.node)
    metrics.counter("net.profile.power_plans").inc()
    return tuple(traces)


__all__ = [
    "FaultPlan",
    "NodeCrash",
    "PartitionWindow",
    "PowerTrace",
    "generate_fault_plan",
    "generate_power_traces",
]
