"""Lossy dissemination with NACK-based retransmission.

The base :func:`repro.net.dissemination.disseminate` assumes perfect
links.  Real WSN dissemination protocols (XNP, Deluge, MNP — the
paper's refs [11], [17]) handle loss with retransmission rounds, which
multiplies the radio bill.  This module models that: each broadcast
reaches each neighbour independently with probability ``1 - loss``, and
nodes keep requesting missing packets (one NACK per round) until they
hold the full script.  Deterministic given the seed.

Exposes the quantity the paper cares about: how the *effective* energy
per disseminated byte grows with loss — transmission savings from
smaller scripts are worth strictly more on lossy links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..diff.packets import Packetisation
from ..energy.power_model import MICA2, PowerModel
from ..obs import metrics, trace
from .dissemination import NodeLedger
from .errors import DisconnectedTopologyError, NetConfigError
from .topology import Topology

#: NACK size on the wire, bytes (header + bitmap chunk).
NACK_BYTES = 8


@dataclass
class LossyResult:
    """Outcome of one lossy dissemination."""

    ledgers: dict[int, NodeLedger]
    packets: int
    rounds: int
    broadcasts: int
    nacks: int
    complete: bool
    #: receptions killed by the loss model (the cause of every repair)
    drops: int = 0
    #: node id -> packets still missing at exit (empty when complete)
    missing: dict[int, int] = field(default_factory=dict)

    @property
    def total_energy_j(self) -> float:
        return sum(ledger.total_j for ledger in self.ledgers.values())

    def max_node_energy_j(self, exclude_sink: bool = False) -> float:
        """Energy at the hottest node; ``exclude_sink=True`` drops the
        mains-powered sink (node 0) from consideration."""
        candidates = [
            ledger
            for node, ledger in self.ledgers.items()
            if not (exclude_sink and node == 0)
        ]
        return max(ledger.total_j for ledger in candidates)

    def overhead_factor(self, lossless_broadcasts: int) -> float:
        """How many times more broadcasts than the lossless flood."""
        if lossless_broadcasts == 0:
            return 1.0
        return self.broadcasts / lossless_broadcasts


def disseminate_lossy(
    topology: Topology,
    packets: Packetisation,
    loss: float = 0.1,
    seed: int = 1,
    power: PowerModel = MICA2,
    max_rounds: int = 200,
) -> LossyResult:
    """Flood ``packets`` with per-link loss and NACK repair.

    Round structure: every node holding packets broadcasts the ones some
    neighbour still misses; each (broadcast, neighbour) reception fails
    independently with probability ``loss``; unfinished nodes send one
    NACK per round.  Terminates when all nodes are complete (or
    ``max_rounds`` elapses — reported via ``complete``).
    """
    if not 0.0 <= loss < 1.0:
        raise NetConfigError(
            "loss", loss, f"loss probability {loss} out of [0, 1)"
        )
    if not topology.is_connected():
        # Fail fast instead of spinning the whole round budget on nodes
        # the sink can never reach.
        reached = topology.hops_from_sink()
        raise DisconnectedTopologyError(
            [node for node in range(topology.node_count) if node not in reached]
        )
    with trace.span(
        "net.disseminate_lossy",
        nodes=topology.node_count,
        packets=packets.packet_count,
        loss=loss,
    ):
        result = _disseminate_lossy(
            topology, packets, loss, seed, power, max_rounds
        )
    metrics.counter("net.lossy.runs").inc()
    metrics.counter("net.lossy.broadcasts").inc(result.broadcasts)
    metrics.counter("net.lossy.nacks").inc(result.nacks)
    metrics.counter("net.lossy.drops").inc(result.drops)
    metrics.histogram("net.lossy.rounds").observe(result.rounds)
    metrics.counter("net.energy_j").inc(result.total_energy_j)
    if not result.complete:
        metrics.counter("net.lossy.incomplete").inc()
    return result


def _disseminate_lossy(
    topology: Topology,
    packets: Packetisation,
    loss: float,
    seed: int,
    power: PowerModel,
    max_rounds: int,
) -> LossyResult:
    rng = random.Random(f"repro-lossy:{seed}")
    count = packets.packet_count
    packet_bits = 8 * (packets.payload_per_packet + packets.overhead_per_packet)
    nack_bits = 8 * NACK_BYTES

    ledgers = {node: NodeLedger() for node in range(topology.node_count)}
    have: dict[int, set[int]] = {
        node: set() for node in range(topology.node_count)
    }
    have[0] = set(range(count))  # the sink holds the whole script

    broadcasts = 0
    nacks = 0
    rounds = 0
    drops = 0
    while rounds < max_rounds:
        if all(len(have[node]) == count for node in have):
            break
        rounds += 1
        # NACK phase: unfinished nodes announce what they miss.
        for node in range(1, topology.node_count):
            if len(have[node]) < count:
                nacks += 1
                ledgers[node].tx_j += nack_bits * power.tx_bit_energy_j
                for peer in topology.neighbors.get(node, ()):
                    ledgers[peer].rx_j += nack_bits * power.rx_bit_energy_j

        # Broadcast phase (snapshot: packets acquired this round do not
        # forward until the next round — hop-by-hop progression).
        snapshot = {node: set(packets_held) for node, packets_held in have.items()}
        for node in range(topology.node_count):
            neighbours = topology.neighbors.get(node, ())
            if not neighbours:
                continue
            wanted = set()
            for peer in neighbours:
                wanted |= set(range(count)) - snapshot[peer]
            sendable = sorted(snapshot[node] & wanted)
            for packet in sendable:
                broadcasts += 1
                ledgers[node].tx_j += packet_bits * power.tx_bit_energy_j
                ledgers[node].packets_sent += 1
                for peer in neighbours:
                    if packet in have[peer]:
                        continue
                    ledgers[peer].rx_j += packet_bits * power.rx_bit_energy_j
                    if rng.random() >= loss:
                        have[peer].add(packet)
                        ledgers[peer].packets_received += 1
                    else:
                        drops += 1

    complete = all(len(have[node]) == count for node in have)
    missing = {
        node: count - len(have[node])
        for node in range(topology.node_count)
        if len(have[node]) < count
    }
    return LossyResult(
        ledgers=ledgers,
        packets=count,
        rounds=rounds,
        broadcasts=broadcasts,
        nacks=nacks,
        complete=complete,
        drops=drops,
        missing=missing,
    )
