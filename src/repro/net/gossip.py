"""Push-pull anti-entropy gossip dissemination on the event kernel.

The GCP-style alternative to Trickle for mobile or partition-prone
fleets: every node wakes on an independent jittered period, picks one
reachable neighbour, and runs a *push-pull exchange* — the pair swap
metadata summaries (version + held-packet bitmap) and then each side
forwards up to ``burst`` packets the other is missing.  No suppression
and no shared timer state means a healed partition re-synchronises as
soon as any cross-boundary exchange fires, at the price of a constant
background message rate (the period never backs off, unlike Trickle's
interval doubling).

Runs on :class:`~repro.net.kernel.SimKernel` with the same fault
plans, delivery coins, duty-cycle energy ledger, and
:class:`~repro.net.kernel.KernelReport` as Trickle (summary messages
are counted in ``report.beacons``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Optional

from ..diff.packets import DEFAULT_OVERHEAD, DEFAULT_PAYLOAD
from ..energy.power_model import MICA2, PowerModel
from ..obs import metrics, trace
from .errors import NetConfigError
from .faults import FaultPlan
from .fleet_sim import FleetSim
from .kernel import LPL_1, DutyCycle, KernelReport
from .node_state import APPLY_ROUNDS
from .profiles import DeviceProfile
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .coding import CodedTransferParams


@dataclass(frozen=True)
class GossipParams:
    """Anti-entropy timing constants (see docs/SIMULATOR.md).

    A node fires every ``period_s`` plus up to ``jitter_s`` of fresh
    jitter, exchanges ``summary_bytes``-byte metadata with one random
    neighbour, and each side then forwards at most ``burst`` missing
    packets.
    """

    period_s: float = 2.0
    jitter_s: float = 1.0
    burst: int = 8
    summary_bytes: int = 8

    def __post_init__(self) -> None:
        if self.period_s <= 0.0:
            raise NetConfigError(
                "period_s", self.period_s,
                f"period_s must be positive, got {self.period_s}",
            )
        if self.jitter_s < 0.0:
            raise NetConfigError(
                "jitter_s", self.jitter_s,
                f"jitter_s must be >= 0, got {self.jitter_s}",
            )
        if self.burst < 1:
            raise NetConfigError(
                "burst", self.burst, f"burst must be >= 1, got {self.burst}"
            )
        if self.summary_bytes < 1:
            raise NetConfigError(
                "summary_bytes", self.summary_bytes,
                f"summary_bytes must be >= 1, got {self.summary_bytes}",
            )


class GossipSim(FleetSim):
    """One gossip run; see :func:`run_gossip` for the public entry."""

    protocol = "gossip"

    def __init__(self, *args, params: GossipParams, **kwargs):
        super().__init__(*args, **kwargs)
        self.params = params
        self.summary_bits = 8 * (
            params.summary_bytes + self.overhead_per_packet
        )
        self.exchanges = 0

    def start(self) -> None:
        for node in range(self.topology.node_count):
            delay = self.rng.random() * self.params.period_s
            self.nodes[node].timer = self.kernel.schedule(
                delay, node, partial(self._fire, node)
            )

    def on_reboot(self, node: int) -> None:
        delay = self.rng.random() * self.params.period_s
        self.nodes[node].timer = self.kernel.schedule(
            delay, node, partial(self._fire, node)
        )

    def _fire(self, node: int) -> None:
        state = self.nodes[node]
        state.timer = None
        if not state.alive:
            return
        delay = self.params.period_s + self.rng.random() * self.params.jitter_s
        state.timer = self.kernel.schedule(
            delay, node, partial(self._fire, node)
        )
        if not self.tx_gate(node):
            # Regulatory off-time not elapsed: sit this period out (a
            # deferral, never a violation); the period timer retries.
            return
        candidates = [
            peer
            for peer in self.topology.neighbors.get(node, ())
            if self.nodes[peer].alive and self.link_up(node, peer)
        ]
        if not candidates:
            return
        peer = candidates[self.rng.randrange(len(candidates))]
        self._exchange(node, peer)

    def _exchange(self, a: int, b: int) -> None:
        """Push-pull: summaries both ways, then data both ways."""
        # a's summary; losing it aborts the whole exchange.
        self.beacons += 1
        a_powered = self.account_tx(a, self.summary_bits)
        b_ok = self.account_rx(b, self.summary_bits)
        if not a_powered:
            self._brownout(a, "packet tx")
        if not b_ok or not self.nodes[a].alive:
            return
        if self.rng_link.random() < self.loss:
            self.drops += 1
            return
        # b's reply summary (its own airtime budget applies).
        if not self.tx_gate(b):
            return
        self.beacons += 1
        b_powered = self.account_tx(b, self.summary_bits)
        a_ok = self.account_rx(a, self.summary_bits)
        if not b_powered:
            self._brownout(b, "packet tx")
        if not a_ok:
            return
        if self.rng_link.random() < self.loss:
            self.drops += 1
            return
        self.exchanges += 1
        push = self.nodes[a].held & ~self.nodes[b].held
        if push and not self.nodes[b].committed:
            self._send_data(a, b)
        pull = self.nodes[b].held & ~self.nodes[a].held
        if pull and not self.nodes[a].committed:
            self._send_data(b, a)

    def _send_data(self, sender: int, receiver: int) -> None:
        """One data leg of an exchange; under an airtime budget a
        gated leg is rescheduled at the sender's next legal TX slot."""
        sstate = self.nodes[sender]
        rstate = self.nodes[receiver]
        if not sstate.alive or not rstate.alive or rstate.committed:
            return
        if not self.link_up(sender, receiver):
            return
        mask = sstate.held & ~rstate.held
        if not mask:
            return
        if not self.tx_gate(
            sender, retry=partial(self._send_data, sender, receiver)
        ):
            return
        self.unicast_data(sender, receiver, self._batch(mask))

    def _batch(self, mask: int) -> "list[int]":
        batch = []
        while mask and len(batch) < self.params.burst:
            low = mask & -mask
            batch.append(low.bit_length() - 1)
            mask ^= low
        return batch


def run_gossip(
    topology: Topology,
    blob: bytes,
    plan: Optional[FaultPlan] = None,
    *,
    loss: float = 0.0,
    seed: int = 1,
    power: PowerModel = MICA2,
    params: Optional[GossipParams] = None,
    duty_cycle: DutyCycle = LPL_1,
    max_time: float = 600.0,
    payload_per_packet: int = DEFAULT_PAYLOAD,
    overhead_per_packet: int = DEFAULT_OVERHEAD,
    old_version: int = 0,
    new_version: int = 1,
    round_s: float = 1.0,
    coding: "Optional[CodedTransferParams]" = None,
    profile: Optional[DeviceProfile] = None,
) -> KernelReport:
    """Disseminate ``blob`` by push-pull gossip; never raises for an
    unconverged fleet.

    Same contract as :func:`repro.net.trickle.run_trickle`: nodes not
    converged by ``max_time`` come back quarantined in a ``"partial"``
    :class:`~repro.net.kernel.KernelReport`, fault-plan rounds map to
    kernel time as ``round * round_s``, and the run is deterministic
    given ``(topology, blob, plan, seed, params)``.
    """
    gossip_params = params if params is not None else GossipParams()
    with trace.span(
        "net.gossip.run",
        nodes=topology.node_count,
        bytes=len(blob),
        loss=loss,
    ):
        sim = GossipSim(
            topology,
            blob,
            plan,
            loss=loss,
            seed=seed,
            power=power,
            duty_cycle=duty_cycle,
            payload_per_packet=payload_per_packet,
            overhead_per_packet=overhead_per_packet,
            old_version=old_version,
            new_version=new_version,
            round_s=round_s,
            apply_s=APPLY_ROUNDS * round_s,
            coding=coding,
            profile=profile,
            component="net-gossip",
            params=gossip_params,
        )
        report = sim.run(max_time)
    metrics.counter("net.gossip.runs").inc()
    metrics.counter("net.gossip.exchanges").inc(sim.exchanges)
    metrics.counter("net.gossip.transmissions").inc(report.transmissions)
    metrics.gauge("net.kernel.sleep_fraction").set(report.sleep_fraction)
    metrics.counter("net.energy_j").inc(report.total_energy_j)
    return report


__all__ = ["GossipParams", "GossipSim", "run_gossip"]
