"""WSN topologies for the dissemination simulator.

Multi-hop networks where the sink cannot reach every node directly —
the setting in which paper §1 argues updates must travel hop-by-hop.
Topologies are plain adjacency structures; determinism comes from
seeded generators.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from .errors import TopologyError


@dataclass
class Topology:
    """An undirected connected network; node 0 is the sink."""

    positions: list[tuple[float, float]]
    neighbors: dict[int, list[int]] = field(default_factory=dict)

    @property
    def node_count(self) -> int:
        return len(self.positions)

    def hops_from_sink(self) -> dict[int, int]:
        """BFS hop distance of every node from the sink (node 0)."""
        hops = {0: 0}
        frontier = [0]
        while frontier:
            nxt = []
            for node in frontier:
                for peer in self.neighbors.get(node, ()):
                    if peer not in hops:
                        hops[peer] = hops[node] + 1
                        nxt.append(peer)
            frontier = nxt
        return hops

    def is_connected(self) -> bool:
        return len(self.hops_from_sink()) == self.node_count

    def max_hops(self) -> int:
        return max(self.hops_from_sink().values())

    def path_to_sink(self, node: int) -> list[int]:
        """A shortest path node → sink (greedy descent over hop counts)."""
        hops = self.hops_from_sink()
        path = [node]
        current = node
        while current != 0:
            current = min(
                self.neighbors[current], key=lambda peer: (hops[peer], peer)
            )
            path.append(current)
        return path


def line(node_count: int, spacing: float = 1.0) -> Topology:
    """A chain: sink — n1 — n2 — ... (the paper's 70-hop report path)."""
    positions = [(i * spacing, 0.0) for i in range(node_count)]
    neighbors = {}
    for i in range(node_count):
        adjacent = []
        if i > 0:
            adjacent.append(i - 1)
        if i < node_count - 1:
            adjacent.append(i + 1)
        neighbors[i] = adjacent
    return Topology(positions=positions, neighbors=neighbors)


def grid(width: int, height: int, spacing: float = 1.0) -> Topology:
    """A width x height grid, 4-connected, sink at the corner."""
    positions = []
    for y in range(height):
        for x in range(width):
            positions.append((x * spacing, y * spacing))
    neighbors: dict[int, list[int]] = {}
    for y in range(height):
        for x in range(width):
            node = y * width + x
            adjacent = []
            if x > 0:
                adjacent.append(node - 1)
            if x < width - 1:
                adjacent.append(node + 1)
            if y > 0:
                adjacent.append(node - width)
            if y < height - 1:
                adjacent.append(node + width)
            neighbors[node] = adjacent
    return Topology(positions=positions, neighbors=neighbors)


def random_geometric(
    node_count: int,
    radio_range: float = 0.18,
    seed: int = 42,
    area: float = 1.0,
    max_attempts: int = 200,
) -> Topology:
    """Random uniform placement with a unit-disc radio model.

    Resamples until connected (raises after ``max_attempts``), so the
    returned network is always usable for dissemination experiments.
    """
    rng = random.Random(f"repro-topology:{seed}")
    for _ in range(max_attempts):
        positions = [
            (rng.uniform(0, area), rng.uniform(0, area)) for _ in range(node_count)
        ]
        neighbors: dict[int, list[int]] = {i: [] for i in range(node_count)}
        for i in range(node_count):
            for j in range(i + 1, node_count):
                dx = positions[i][0] - positions[j][0]
                dy = positions[i][1] - positions[j][1]
                if math.hypot(dx, dy) <= radio_range:
                    neighbors[i].append(j)
                    neighbors[j].append(i)
        topo = Topology(positions=positions, neighbors=neighbors)
        if topo.is_connected():
            return topo
    raise TopologyError(
        "random",
        f"could not sample a connected network of {node_count} nodes with "
        f"range {radio_range}",
    )


def build_topology(
    kind: str,
    width: int = 5,
    height: int = 5,
    nodes: int = 8,
    spacing: float = 1.0,
    radio_range: float = 0.18,
    seed: int = 42,
) -> Topology:
    """Materialise a topology from a declarative recipe.

    The keyword surface matches :class:`repro.config.TopologySpec`,
    which is how batch jobs describe their fleets without shipping
    adjacency structures between processes.
    """
    if kind == "grid":
        return grid(width, height, spacing)
    if kind == "line":
        return line(nodes, spacing)
    if kind == "random":
        return random_geometric(nodes, radio_range=radio_range, seed=seed)
    raise TopologyError(
        kind, f"unknown topology kind {kind!r}; expected grid/line/random"
    )
