"""Structured network-layer errors.

The dissemination and campaign layers degrade gracefully: expected
failure modes come back as data, not bare string exceptions.  The two
errors here carry enough structure that a caller (the fleet service,
the CLI, a test) can report *which* nodes are affected and *how far*
the protocol got without parsing messages.
"""

from __future__ import annotations

from typing import Mapping, Sequence


class DisconnectedTopologyError(ValueError):
    """A dissemination was asked to cover nodes the sink cannot reach.

    Raised up front (before any rounds are spent) by
    :func:`repro.net.lossy.disseminate_lossy`; the campaign layer
    instead quarantines the unreachable nodes and proceeds.

    ``unreachable`` lists the node ids with no path to the sink.
    """

    def __init__(self, unreachable: Sequence[int]):
        self.unreachable = tuple(sorted(unreachable))
        shown = ", ".join(str(node) for node in self.unreachable[:8])
        if len(self.unreachable) > 8:
            shown += f", ... ({len(self.unreachable)} total)"
        super().__init__(
            f"topology is disconnected: node(s) {shown} unreachable from "
            f"the sink; dissemination would spin its whole round budget"
        )


class DisseminationIncomplete(RuntimeError):
    """A lossy dissemination hit its round budget with nodes still missing
    packets.

    Structured attributes:

    * ``missing`` — node id → count of packets that node still misses,
    * ``rounds``  — repair rounds spent before giving up,
    * ``packets`` — total packets in the script.

    Subclasses :class:`RuntimeError` so pre-existing ``except
    RuntimeError`` handlers keep working.
    """

    def __init__(self, missing: Mapping[int, int], rounds: int, packets: int):
        self.missing = dict(missing)
        self.rounds = rounds
        self.packets = packets
        worst = sorted(self.missing.items(), key=lambda kv: (-kv[1], kv[0]))
        shown = ", ".join(
            f"node {node}: {count}/{packets} missing" for node, count in worst[:4]
        )
        if len(worst) > 4:
            shown += f", ... ({len(worst)} nodes total)"
        super().__init__(
            f"dissemination incomplete after {rounds} rounds ({shown})"
        )


class NetConfigError(ValueError):
    """A network-layer parameter is out of its documented range.

    Carries the offending ``parameter`` name and ``value`` so callers
    (the CLI, the fleet service) can report the bad knob without
    parsing the message.  Subclasses :class:`ValueError` so existing
    ``except ValueError`` handlers and tests keep working.
    """

    def __init__(self, parameter: str, value: object, message: str):
        self.parameter = parameter
        self.value = value
        super().__init__(message)


class FaultPlanError(ValueError):
    """A fault-plan element (crash, partition, probability) is invalid.

    Raised by the ``__post_init__`` validators of
    :class:`repro.net.faults.NodeCrash`,
    :class:`~repro.net.faults.PartitionWindow`, and
    :class:`~repro.net.faults.FaultPlan`; ``field`` names the invalid
    attribute and ``value`` holds what was passed.
    """

    def __init__(self, field: str, value: object, message: str):
        self.field = field
        self.value = value
        super().__init__(message)


class TopologyError(ValueError):
    """A topology cannot be built as specified.

    Covers both an unknown ``kind`` selector and a random-geometric
    sample that never produced a connected network; ``kind`` names the
    topology family involved.
    """

    def __init__(self, kind: str, message: str):
        self.kind = kind
        super().__init__(message)


__all__ = [
    "DisconnectedTopologyError",
    "DisseminationIncomplete",
    "FaultPlanError",
    "NetConfigError",
    "TopologyError",
]
