"""Structured network-layer errors.

The dissemination and campaign layers degrade gracefully: expected
failure modes come back as data, not bare string exceptions.  The two
errors here carry enough structure that a caller (the fleet service,
the CLI, a test) can report *which* nodes are affected and *how far*
the protocol got without parsing messages.
"""

from __future__ import annotations

from typing import Mapping, Sequence


class DisconnectedTopologyError(ValueError):
    """A dissemination was asked to cover nodes the sink cannot reach.

    Raised up front (before any rounds are spent) by
    :func:`repro.net.lossy.disseminate_lossy`; the campaign layer
    instead quarantines the unreachable nodes and proceeds.

    ``unreachable`` lists the node ids with no path to the sink.
    """

    def __init__(self, unreachable: Sequence[int]):
        self.unreachable = tuple(sorted(unreachable))
        shown = ", ".join(str(node) for node in self.unreachable[:8])
        if len(self.unreachable) > 8:
            shown += f", ... ({len(self.unreachable)} total)"
        super().__init__(
            f"topology is disconnected: node(s) {shown} unreachable from "
            f"the sink; dissemination would spin its whole round budget"
        )


class DisseminationIncomplete(RuntimeError):
    """A lossy dissemination hit its round budget with nodes still missing
    packets.

    Structured attributes:

    * ``missing`` — node id → count of packets that node still misses,
    * ``rounds``  — repair rounds spent before giving up,
    * ``packets`` — total packets in the script.

    Subclasses :class:`RuntimeError` so pre-existing ``except
    RuntimeError`` handlers keep working.
    """

    def __init__(self, missing: Mapping[int, int], rounds: int, packets: int):
        self.missing = dict(missing)
        self.rounds = rounds
        self.packets = packets
        worst = sorted(self.missing.items(), key=lambda kv: (-kv[1], kv[0]))
        shown = ", ".join(
            f"node {node}: {count}/{packets} missing" for node, count in worst[:4]
        )
        if len(worst) > 4:
            shown += f", ... ({len(worst)} nodes total)"
        super().__init__(
            f"dissemination incomplete after {rounds} rounds ({shown})"
        )


__all__ = ["DisconnectedTopologyError", "DisseminationIncomplete"]
