"""Shared fleet machinery for kernel-based dissemination protocols.

:class:`FleetSim` is the substrate :mod:`repro.net.trickle` and
:mod:`repro.net.gossip` build on: lightweight per-node state (a
bitmask staging bank instead of per-packet byte buffers, which is what
keeps 100k-node fleets in memory), fault-plan events scheduled on the
:class:`~repro.net.kernel.SimKernel` clock (crash/reboot/partition
windows fire as kernel events, logged exactly once), the per-delivery
fault coins (loss, corruption, duplication) in a fixed draw order, the
crash-consistent apply/commit step, and the
:class:`~repro.net.kernel.KernelReport` finalisation with idle-listen
and sleep energy from the kernel's duty-cycle ledger.

Fault-plan *rounds* map to kernel time as ``round * round_s`` — a plan
authored for the synchronous flood campaign drives the continuous-time
protocols unchanged.

Determinism: every ``random.Random`` stream is seeded with a derived
``"repro-<component>...:<seed>"`` string (``RNG001``) and drawn only
from inside kernel event handlers, whose order the kernel pins.
"""

from __future__ import annotations

import random
from functools import partial
from typing import TYPE_CHECKING, List, Optional

from ..energy.power_model import PowerModel
from ..obs import metrics
from .dissemination import PATCH_CYCLES_PER_BYTE
from .errors import NetConfigError
from .faults import FaultPlan
from .kernel import DutyCycle, KernelReport, SimKernel, rounds_equivalent
from .node_state import packetise_blob
from .profiles import DeviceProfile
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .coding import CodedTransferParams


class FleetNode:
    """Per-node protocol state, sized for 100k-node fleets.

    The staging bank is an integer bitmask over packet indices (the
    packet payloads themselves are global — every node would stage the
    same bytes), so a node costs a few hundred bytes regardless of
    script size.
    """

    __slots__ = (
        "held",
        "alive",
        "committed",
        "interval",
        "c",
        "timer",
        "respond",
        "request_evt",
        "pending",
        "apply_evt",
        "pages_done",
    )

    def __init__(self) -> None:
        self.held = 0
        self.alive = True
        self.committed = False
        self.interval = 0.0
        self.c = 0
        self.timer = None
        self.respond = None
        self.request_evt = None
        self.pending = 0
        self.apply_evt = None
        #: nonvolatile flash-page checkpoint (page-granular apply only)
        self.pages_done = 0


class FleetSim:
    """One protocol run over a fleet: nodes, faults, energy, report.

    Subclasses implement :meth:`start` (schedule the initial per-node
    timers) and may override the :meth:`on_reboot` /
    :meth:`on_overhear_data` / :meth:`on_commit` hooks; everything else
    — fault events, delivery coins, apply/commit, report building — is
    shared so flood-era fault plans behave identically under every
    kernel protocol.
    """

    protocol = "kernel"

    def __init__(
        self,
        topology: Topology,
        blob: bytes,
        plan: Optional[FaultPlan],
        *,
        loss: float,
        seed: int,
        power: PowerModel,
        duty_cycle: DutyCycle,
        payload_per_packet: int,
        overhead_per_packet: int,
        old_version: int,
        new_version: int,
        round_s: float,
        apply_s: float,
        component: str,
        coding: "Optional[CodedTransferParams]" = None,
        profile: Optional[DeviceProfile] = None,
    ):
        if not 0.0 <= loss < 1.0:
            raise NetConfigError(
                "loss", loss, f"loss probability {loss} out of [0, 1)"
            )
        if round_s <= 0.0:
            raise NetConfigError(
                "round_s", round_s, f"round_s must be positive, got {round_s}"
            )
        if coding is not None and coding.scheme != "xor":
            raise NetConfigError(
                "coding", coding.scheme,
                "the event-kernel protocols speak the 'xor' burst-parity "
                "scheme; the 'lt' fountain runs as a flood campaign "
                "(repro.net.coding.run_coded_campaign)",
            )
        self.topology = topology
        self.plan = plan if plan is not None else FaultPlan()
        self.loss = loss
        self.power = power
        self.round_s = round_s
        self.apply_s = apply_s
        self.old_version = old_version
        self.new_version = new_version
        self.overhead_per_packet = overhead_per_packet
        self.coding = coding
        self.repairs = 0
        # A neutral profile (MICA2) is dropped so every profile code
        # path is gated on ``self.profile is not None`` and the report
        # stays byte-identical to a profile-less run.
        self.profile = (
            profile if profile is not None and not profile.is_neutral else None
        )
        if self.plan.power_traces and (
            self.profile is None or not self.profile.is_energy_limited
        ):
            raise NetConfigError(
                "profile", None if self.profile is None else self.profile.name,
                "the fault plan scripts power traces, which only act under "
                "an energy-limited device profile (storage_j > 0)",
            )
        if self.profile is not None:
            payload_per_packet = self.profile.effective_payload(
                payload_per_packet
            )

        node_count = topology.node_count
        self.kernel = SimKernel(
            node_count,
            power=power,
            duty_cycle=duty_cycle,
            airtime_budget=(
                self.profile.airtime_budget if self.profile is not None else 1.0
            ),
        )
        # Derived string seeds (RNG001): one stream for protocol timer
        # jitter, one for link loss, one for the fault plan's coins.
        self.rng = random.Random(f"repro-{component}:{seed}")
        self.rng_link = random.Random(f"repro-{component}-link:{seed}")
        self.rng_fault = random.Random(f"repro-{component}-fault:{self.plan.seed}")

        self.packets = packetise_blob(blob, payload_per_packet)
        self.count = len(self.packets)
        self.script_bytes = len(blob)
        self.full_mask = (1 << self.count) - 1
        self.packet_bits = [
            8 * (len(pkt.payload) + overhead_per_packet) for pkt in self.packets
        ]
        self.patch_j = PATCH_CYCLES_PER_BYTE * len(blob) * power.cycle_energy_j

        hops = topology.hops_from_sink()
        self.unreachable = tuple(
            sorted(node for node in range(node_count) if node not in hops)
        )
        unreachable_set = set(self.unreachable)

        self.nodes: List[FleetNode] = [FleetNode() for _ in range(node_count)]
        sink = self.nodes[0]
        sink.held = self.full_mask
        sink.committed = True

        self.cpu_j = [0.0] * node_count
        self.sent = [0] * node_count
        self.received = [0] * node_count
        self.fault_log: "list[str]" = []
        self.transmissions = 0
        self.beacons = 0
        self.requests = 0
        self.suppressed = 0
        self.resets = 0
        self.drops = 0
        self.crc_rejections = 0
        self.duplicates = 0

        self.remaining = sum(
            1
            for node in range(1, node_count)
            if node not in unreachable_set
        )
        if self.count == 0:
            # Nothing to ship: every reachable node trivially holds the
            # (empty) script and commits at time zero.
            for node in range(1, node_count):
                if node not in unreachable_set:
                    self.nodes[node].committed = True
            self.remaining = 0

        # -- device-profile state (inert without an active profile) ------
        self.pages_total = 0
        self.flash_page_j = 0.0
        self.stored: "list[float] | None" = None
        self.node_brownouts = [0] * node_count
        self.node_resumed = [0] * node_count
        self.first_death_s: "float | None" = None
        self.network_death_s: "float | None" = None
        if self.profile is not None and self.profile.is_paged:
            self.pages_total = self.profile.pages_for(len(blob))
            self.flash_page_j = self.profile.flash_write_j_per_page
        if self.profile is not None and self.profile.is_energy_limited:
            prof = self.profile
            self.storage_j = prof.storage_j
            self.restart_j = prof.restart_fraction * prof.storage_j
            self.stored = [prof.storage_j * prof.start_fraction] * node_count
            self.spent = [0.0] * node_count
            self.harvest_w = [prof.harvest_w] * node_count
            self.last_energy_t = [0.0] * node_count
            self.trace_cuts: "dict[int, tuple[float, ...]]" = {}
            self.trace_pos: "dict[int, int]" = {}
            for trace_ in self.plan.power_traces:
                if trace_.node >= node_count:
                    continue
                self.trace_cuts[trace_.node] = trace_.brownout_at_j
                self.trace_pos[trace_.node] = 0
                self.harvest_w[trace_.node] = (
                    prof.harvest_w * trace_.harvest_scale
                )

        self._partition_open: "set[int]" = set()
        self._schedule_faults()

    # -- fault plan as kernel events ------------------------------------

    def _schedule_faults(self) -> None:
        node_count = self.topology.node_count
        for crash in self.plan.crashes:
            if crash.node >= node_count:
                continue
            self.kernel.schedule_at(
                crash.round * self.round_s,
                crash.node,
                partial(self._crash, crash.node),
            )
            if crash.reboot_round is not None:
                self.kernel.schedule_at(
                    crash.reboot_round * self.round_s,
                    crash.node,
                    partial(self._reboot, crash.node),
                )
        for index, window in enumerate(self.plan.partitions):
            self.kernel.schedule_at(
                window.start * self.round_s,
                0,
                partial(self._partition_event, index, True),
            )
            self.kernel.schedule_at(
                window.end * self.round_s,
                0,
                partial(self._partition_event, index, False),
            )

    def _crash(self, node: int) -> None:
        state = self.nodes[node]
        if not state.alive:
            return
        state.alive = False
        metrics.counter("net.fault.crashes").inc()
        detail = "after commit" if state.committed else "staging bank lost"
        self.fault_log.append(
            f"t{self.kernel.now:g}: node {node} crashed ({detail})"
        )
        if not state.committed:
            # Volatile staging state is gone; the boot pointer never
            # moved, so the resident golden image survives.
            state.held = 0
        for handle in (
            state.timer, state.respond, state.request_evt, state.apply_evt
        ):
            if handle is not None:
                handle.cancel()
        state.timer = state.respond = state.request_evt = state.apply_evt = None
        state.pending = 0

    def _reboot(self, node: int) -> None:
        state = self.nodes[node]
        if state.alive:
            return
        state.alive = True
        metrics.counter("net.fault.reboots").inc()
        image = "new image" if state.committed else "golden image"
        version = self.new_version if state.committed else self.old_version
        self.fault_log.append(
            f"t{self.kernel.now:g}: node {node} rebooted ({image} v{version})"
        )
        self.on_reboot(node)

    def _partition_event(self, index: int, opening: bool) -> None:
        window = self.plan.partitions[index]
        island = ",".join(str(node) for node in window.nodes)
        if opening:
            if index in self._partition_open:
                return
            self._partition_open.add(index)
            metrics.counter("net.fault.partitions").inc()
            self.fault_log.append(
                f"t{self.kernel.now:g}: partition {{{island}}} isolated"
            )
        else:
            if index not in self._partition_open:
                return
            self._partition_open.discard(index)
            self.fault_log.append(
                f"t{self.kernel.now:g}: partition {{{island}}} healed"
            )

    def link_up(self, a: int, b: int) -> bool:
        """Is the ``a``—``b`` link usable at the current kernel time?"""
        if not self.plan.partitions:
            return True
        round_no = int(self.kernel.now / self.round_s)
        return not any(
            window.severs(a, b, round_no) for window in self.plan.partitions
        )

    # -- device-profile machinery ---------------------------------------

    def tx_gate(self, node: int, retry=None) -> bool:
        """Airtime-budget gate: True when ``node`` may transmit now.

        When the node's regulatory off-time has not elapsed the TX is
        *deferred* — counted, never violated — and ``retry`` (when
        given) is rescheduled at the node's next legal slot.
        """
        if self.kernel.tx_allowed(node):
            return True
        self.kernel.note_deferral(node)
        if retry is not None:
            delay = self.kernel.next_tx_time(node) - self.kernel.now
            self.kernel.schedule(max(delay, 1e-9), node, retry)
        return False

    def spend(self, node: int, joules: float) -> bool:
        """Debit the node's capacitor; False means the energy ran out
        (or a scripted power trace fired) and the node must brown out.

        Harvest income accrues continuously, so it is credited up to
        the current kernel time before the debit."""
        if self.stored is None or node == 0:
            return True
        now = self.kernel.now
        income = self.harvest_w[node]
        if income > 0.0:
            self.stored[node] = min(
                self.storage_j,
                self.stored[node]
                + income * (now - self.last_energy_t[node]),
            )
        self.last_energy_t[node] = now
        self.spent[node] += joules
        self.stored[node] -= joules
        powered = True
        cuts = self.trace_cuts.get(node)
        if cuts is not None:
            position = self.trace_pos[node]
            while position < len(cuts) and self.spent[node] >= cuts[position]:
                position += 1
                powered = False
            self.trace_pos[node] = position
        if self.stored[node] <= 0.0:
            self.stored[node] = 0.0
            powered = False
        return powered

    def _brownout(self, node: int, where: str) -> None:
        """Power loss mid-operation: volatile staging state is gone, the
        nonvolatile page checkpoint and the committed bank survive."""
        state = self.nodes[node]
        if not state.alive:
            return
        state.alive = False
        self.node_brownouts[node] += 1
        metrics.counter("net.profile.brownouts").inc()
        self.fault_log.append(
            f"t{self.kernel.now:g}: node {node} browned out during {where} "
            f"(checkpoint {state.pages_done}/{self.pages_total} pages)"
        )
        if not state.committed:
            # Volatile staging bank is lost; ``pages_done`` is flash.
            state.held = 0
        for handle in (
            state.timer, state.respond, state.request_evt, state.apply_evt
        ):
            if handle is not None:
                handle.cancel()
        state.timer = state.respond = state.request_evt = state.apply_evt = None
        state.pending = 0
        unreachable_set = set(self.unreachable)
        if self.first_death_s is None:
            self.first_death_s = self.kernel.now
        if self.network_death_s is None and all(
            not self.nodes[peer].alive
            for peer in range(1, self.topology.node_count)
            if peer not in unreachable_set
        ):
            self.network_death_s = self.kernel.now
        income = self.harvest_w[node]
        if income > 0.0:
            # Deterministic recharge: the capacitor reaches the restart
            # level after deficit/income seconds of harvest.
            deficit = max(self.restart_j - self.stored[node], 0.0)
            self.kernel.schedule(
                deficit / income, node, partial(self._resume, node)
            )

    def _resume(self, node: int) -> None:
        """Capacitor recharged to the restart level: boot the resident
        image and rejoin the protocol."""
        state = self.nodes[node]
        if state.alive or self.stored is None:
            return
        state.alive = True
        self.stored[node] = max(self.stored[node], self.restart_j)
        self.last_energy_t[node] = self.kernel.now
        metrics.counter("net.profile.resumes").inc()
        self.fault_log.append(
            f"t{self.kernel.now:g}: node {node} resumed "
            f"(checkpoint {state.pages_done}/{self.pages_total} pages)"
        )
        self.on_reboot(node)

    def account_tx(self, node: int, bits: int) -> bool:
        """Kernel TX accounting plus the capacitor debit; returns False
        when the transmission browned the sender out."""
        self.kernel.account_tx(node, bits)
        return self.spend(node, bits * self.power.tx_bit_energy_j)

    def account_rx(self, node: int, bits: int) -> bool:
        """Kernel RX accounting plus the capacitor debit; returns False
        when the reception browned the receiver out."""
        self.kernel.account_rx(node, bits)
        if not self.spend(node, bits * self.power.rx_bit_energy_j):
            self._brownout(node, "packet rx")
            return False
        return True

    # -- data delivery (shared coin order) ------------------------------

    def broadcast_data(self, sender: int, batch: "list[int]") -> int:
        """Broadcast the packets in ``batch`` from ``sender`` to every
        alive, connected neighbour; returns the batch's bitmask.

        Per receiver and packet the fault coins are drawn in a fixed
        order — duplication, then loss, then corruption — matching the
        flood campaign's delivery model, so a fault plan stresses every
        protocol the same way.
        """
        mask = 0
        bits = 0
        for index in batch:
            mask |= 1 << index
            bits += self.packet_bits[index]
        parity_groups: "list[list[int]]" = []
        if self.coding is not None and batch:
            # Every `group` data packets of the burst are trailed by one
            # XOR parity packet sized like the widest packet it covers.
            group = self.coding.group
            parity_groups = [
                batch[start : start + group]
                for start in range(0, len(batch), group)
            ]
            bits += sum(
                max(self.packet_bits[index] for index in members)
                for members in parity_groups
            )
            self.transmissions += len(parity_groups)
            self.sent[sender] += len(parity_groups)
        self.transmissions += len(batch)
        self.sent[sender] += len(batch)
        # The sender's capacitor is debited first but a resulting
        # brownout fires only after the peer loop: the packets were
        # already in flight when the supply collapsed.
        sender_powered = self.account_tx(sender, bits)
        for peer in self.topology.neighbors.get(sender, ()):
            if not self.nodes[peer].alive or not self.link_up(sender, peer):
                continue
            if not self.account_rx(peer, bits):
                continue
            self.on_overhear_data(peer, mask)
            self._deliver(peer, batch, parity_groups)
        if not sender_powered:
            self._brownout(sender, "packet tx")
        return mask

    def unicast_data(self, sender: int, receiver: int, batch: "list[int]") -> None:
        """Point-to-point transfer of ``batch`` (gossip push/pull leg)."""
        bits = sum(self.packet_bits[index] for index in batch)
        self.transmissions += len(batch)
        self.sent[sender] += len(batch)
        sender_powered = self.account_tx(sender, bits)
        if self.account_rx(receiver, bits):
            self._deliver(receiver, batch)
        if not sender_powered:
            self._brownout(sender, "packet tx")

    def _deliver(
        self,
        peer: int,
        batch: "list[int]",
        parity_groups: "list[list[int]] | None" = None,
    ) -> None:
        state = self.nodes[peer]
        if state.committed:
            return
        plan = self.plan
        for index in batch:
            deliveries = 1
            if (
                plan.duplicate_prob
                and self.rng_fault.random() < plan.duplicate_prob
            ):
                deliveries = 2
            for _ in range(deliveries):
                if self.rng_link.random() < self.loss:
                    self.drops += 1
                    continue
                if (
                    plan.corrupt_prob
                    and self.rng_fault.random() < plan.corrupt_prob
                ):
                    # A flipped payload byte fails the per-packet CRC;
                    # the bank never stages it.
                    self.crc_rejections += 1
                    continue
                self._stage_packet(peer, index)
        for members in parity_groups or ():
            # The parity packet rides the same link, so it draws the
            # same fault coins in the same order; when it lands and
            # exactly one member of its group is still missing, the
            # receiver XORs the loss back locally — no ADV/REQ round
            # trip and no fresh Trickle interval.
            deliveries = 1
            if (
                plan.duplicate_prob
                and self.rng_fault.random() < plan.duplicate_prob
            ):
                deliveries = 2
            arrived = False
            for _ in range(deliveries):
                if self.rng_link.random() < self.loss:
                    self.drops += 1
                    continue
                if (
                    plan.corrupt_prob
                    and self.rng_fault.random() < plan.corrupt_prob
                ):
                    self.crc_rejections += 1
                    continue
                if arrived:
                    self.duplicates += 1
                    continue
                arrived = True
            if not arrived:
                continue
            missing = [
                index
                for index in members
                if not state.held & (1 << index)
            ]
            if len(missing) == 1:
                self.repairs += 1
                self._stage_packet(peer, missing[0])

    def _stage_packet(self, peer: int, index: int) -> None:
        state = self.nodes[peer]
        bit = 1 << index
        if state.held & bit:
            self.duplicates += 1
            return
        state.held |= bit
        self.received[peer] += 1
        if state.held == self.full_mask:
            self._stage_apply(peer)

    # -- crash-consistent apply -----------------------------------------

    def _stage_apply(self, node: int) -> None:
        state = self.nodes[node]
        if state.committed or state.apply_evt is not None:
            return
        state.apply_evt = self.kernel.schedule(
            self.apply_s, node, partial(self._commit, node)
        )

    def _commit(self, node: int) -> None:
        state = self.nodes[node]
        state.apply_evt = None
        if not state.alive or state.committed or state.held != self.full_mask:
            return
        if self.pages_total:
            # Page-granular apply: each flash page is paid for before it
            # is written, so a brownout between two pages leaves the
            # checkpoint at the last *completed* page — the torn page is
            # re-written on resume, and the boot pointer only flips once
            # every page is down.
            if state.pages_done:
                self.node_resumed[node] += 1
            page_cpu_j = self.patch_j / self.pages_total
            while state.pages_done < self.pages_total:
                self.cpu_j[node] += page_cpu_j
                if not self.spend(node, self.flash_page_j + page_cpu_j):
                    self._brownout(node, "flash page write")
                    return
                state.pages_done += 1
        else:
            self.cpu_j[node] += self.patch_j
            if self.stored is not None and not self.spend(node, self.patch_j):
                self._brownout(node, "patch apply")
                return
        state.committed = True
        self.remaining -= 1
        if self.remaining <= 0:
            self.kernel.stop()
        self.on_commit(node)

    # -- protocol hooks --------------------------------------------------

    def start(self) -> None:
        """Schedule the protocol's initial per-node timers."""
        raise NotImplementedError

    def on_reboot(self, node: int) -> None:
        """A crashed node came back; restart its timers."""

    def on_overhear_data(self, node: int, mask: int) -> None:
        """``node`` overheard a data broadcast covering ``mask``."""

    def on_commit(self, node: int) -> None:
        """``node`` flipped its boot pointer to the new image."""

    # -- driving and reporting -------------------------------------------

    def run(self, max_time: float) -> KernelReport:
        """Drive the fleet to convergence or the time budget."""
        if self.remaining > 0:
            self.start()
            self.kernel.run(max_time=max_time)
        if self.coding is not None:
            metrics.counter("net.coding.repairs").inc(self.repairs)
        return self.build_report()

    def build_report(self) -> KernelReport:
        node_count = self.topology.node_count
        ledgers = self.kernel.ledgers()
        for node in range(node_count):
            ledger = ledgers[node]
            ledger.cpu_j = self.cpu_j[node]
            ledger.packets_sent = self.sent[node]
            ledger.packets_received = self.received[node]
        quarantined = tuple(
            sorted(
                node
                for node in range(1, node_count)
                if not self.nodes[node].committed
            )
        )
        node_versions = {
            node: (
                self.new_version
                if self.nodes[node].committed
                else self.old_version
            )
            for node in range(node_count)
        }
        profile_stats = None
        if self.profile is not None:
            profile_stats = {
                "name": self.profile.name,
                "airtime_budget": self.profile.airtime_budget,
                "airtime_deferrals": self.kernel.airtime_deferrals,
                "airtime_violations": self.kernel.airtime_violations,
                "brownouts": sum(self.node_brownouts),
                "resumed_applies": sum(self.node_resumed),
                "node_brownouts": {
                    str(node): count
                    for node, count in enumerate(self.node_brownouts)
                    if count
                },
                "node_resumed_applies": {
                    str(node): count
                    for node, count in enumerate(self.node_resumed)
                    if count
                },
                "pages_total": self.pages_total,
                "first_node_death_s": self.first_death_s,
                "network_death_s": self.network_death_s,
            }
        return KernelReport(
            protocol=self.protocol,
            outcome="converged" if not quarantined else "partial",
            time_s=self.kernel.now,
            rounds=rounds_equivalent(self.kernel.now, self.round_s),
            events=self.kernel.events_dispatched,
            packets=self.count,
            script_bytes=self.script_bytes,
            old_version=self.old_version,
            new_version=self.new_version,
            node_versions=node_versions,
            quarantined=quarantined,
            unreachable=self.unreachable,
            ledgers=ledgers,
            transmissions=self.transmissions,
            beacons=self.beacons,
            requests=self.requests,
            suppressed=self.suppressed,
            resets=self.resets,
            drops=self.drops,
            crc_rejections=self.crc_rejections,
            duplicates=self.duplicates,
            duty_cycle=self.kernel.duty_cycle.name,
            listen_fraction=self.kernel.duty_cycle.listen_fraction,
            sleep_fraction=self.kernel.sleep_fraction(),
            fault_log=self.fault_log,
            plan_digest=self.plan.digest(),
            profile_stats=profile_stats,
        )


__all__ = ["FleetNode", "FleetSim"]
