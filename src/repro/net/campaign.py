"""Campaign controller: drive an OTA update to fleet convergence under faults.

Where :func:`repro.net.lossy.disseminate_lossy` models exactly one
failure mode (independent packet loss), a *campaign* drives the real
thing: per-node :class:`~repro.net.node_state.NodeUpdateState` machines
assembling the actual script bytes into CRC-verified staging banks,
crash/reboot/partition/corruption/duplicate faults injected from a
deterministic :class:`~repro.net.faults.FaultPlan`, exponential NACK
backoff, and bounded retry rounds.  The controller never raises for an
unconverged fleet — it returns a structured
:class:`CampaignReport` with the converged subset, the quarantined
nodes, per-node final versions, joule ledgers (retransmission and
aborted-write overhead included), and the fault log.

Determinism: identical ``(topology, blob, plan, seed)`` inputs produce
a byte-identical report (``CampaignReport.to_json``), which is what
the fuzz layer's replay guarantee and the regression tests pin.
"""

from __future__ import annotations

import hashlib
import json
import random
import zlib
from dataclasses import dataclass, field

from ..diff.packets import DEFAULT_OVERHEAD, DEFAULT_PAYLOAD
from ..energy.power_model import MICA2, PowerModel
from ..obs import metrics, trace
from .dissemination import PATCH_CYCLES_PER_BYTE, NodeLedger
from .errors import NetConfigError
from .faults import FaultPlan
from .lossy import NACK_BYTES
from .node_state import APPLY_ROUNDS, NodeUpdateState, packetise_blob
from .topology import Topology

#: Rounds without any fleet progress (and no scheduled fault event
#: still to come) after which the controller stops retrying and
#: quarantines the stragglers.
DEFAULT_STALL_LIMIT = 24


@dataclass
class CampaignReport:
    """Structured outcome of one update campaign."""

    outcome: str  # "converged" | "partial"
    rounds: int
    packets: int
    script_bytes: int
    old_version: int
    new_version: int
    node_versions: dict[int, int]
    quarantined: tuple[int, ...]
    unreachable: tuple[int, ...]
    ledgers: dict[int, NodeLedger]
    broadcasts: int = 0
    retransmissions: int = 0
    nacks: int = 0
    drops: int = 0
    crc_rejections: int = 0
    duplicates: int = 0
    fault_log: list[str] = field(default_factory=list)
    plan_digest: str = ""

    @property
    def converged(self) -> bool:
        return self.outcome == "converged"

    @property
    def converged_nodes(self) -> tuple[int, ...]:
        """Non-sink nodes running the new version at campaign end."""
        return tuple(
            node
            for node, version in sorted(self.node_versions.items())
            if node != 0 and version == self.new_version
        )

    @property
    def total_energy_j(self) -> float:
        return sum(ledger.total_j for ledger in self.ledgers.values())

    def max_node_energy_j(self, exclude_sink: bool = True) -> float:
        """Energy at the hottest node (the lifetime limiter; the sink
        is mains-powered, so it is excluded by default)."""
        candidates = [
            ledger
            for node, ledger in self.ledgers.items()
            if not (exclude_sink and node == 0)
        ]
        return max(ledger.total_j for ledger in candidates)

    def to_json(self) -> str:
        """Canonical JSON rendering — byte-identical across runs with
        the same seed and fault plan (pinned by tests)."""
        payload = {
            "outcome": self.outcome,
            "rounds": self.rounds,
            "packets": self.packets,
            "script_bytes": self.script_bytes,
            "old_version": self.old_version,
            "new_version": self.new_version,
            "node_versions": {
                str(node): version
                for node, version in sorted(self.node_versions.items())
            },
            "quarantined": list(self.quarantined),
            "unreachable": list(self.unreachable),
            "broadcasts": self.broadcasts,
            "retransmissions": self.retransmissions,
            "nacks": self.nacks,
            "drops": self.drops,
            "crc_rejections": self.crc_rejections,
            "duplicates": self.duplicates,
            "fault_log": list(self.fault_log),
            "plan_digest": self.plan_digest,
            "ledgers": {
                str(node): {
                    "tx_j": ledger.tx_j,
                    "rx_j": ledger.rx_j,
                    "cpu_j": ledger.cpu_j,
                    "packets_sent": ledger.packets_sent,
                    "packets_received": ledger.packets_received,
                }
                for node, ledger in sorted(self.ledgers.items())
            },
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def render(self) -> str:
        """Human-readable summary."""
        fleet = len(self.node_versions) - 1  # exclude the sink
        lines = [
            f"campaign : {self.outcome} after {self.rounds} rounds "
            f"({len(self.converged_nodes)}/{fleet} nodes on v{self.new_version})",
            f"script   : {self.script_bytes} B in {self.packets} packets",
            f"radio    : {self.broadcasts} broadcasts "
            f"({self.retransmissions} retransmissions), {self.nacks} NACKs, "
            f"{self.drops} drops, {self.crc_rejections} CRC rejections, "
            f"{self.duplicates} duplicates",
            f"energy   : {self.total_energy_j * 1e3:.2f} mJ network total, "
            f"hottest node {self.max_node_energy_j() * 1e6:.1f} uJ",
        ]
        if self.quarantined:
            nodes = ", ".join(str(node) for node in self.quarantined)
            lines.append(f"quarantined: {nodes}")
        if self.fault_log:
            lines.append("fault log:")
            lines.extend(f"  {entry}" for entry in self.fault_log)
        return "\n".join(lines)


def run_campaign(
    topology: Topology,
    blob: bytes,
    plan: FaultPlan | None = None,
    *,
    loss: float = 0.0,
    seed: int = 1,
    power: PowerModel = MICA2,
    max_rounds: int = 200,
    payload_per_packet: int = DEFAULT_PAYLOAD,
    overhead_per_packet: int = DEFAULT_OVERHEAD,
    old_version: int = 0,
    new_version: int = 1,
    apply_rounds: int = APPLY_ROUNDS,
    stall_limit: int = DEFAULT_STALL_LIMIT,
) -> CampaignReport:
    """Disseminate ``blob`` to every reachable node under ``plan``.

    Never raises for an unconverged fleet: nodes the campaign cannot
    update within the budget (dead forever, partitioned past the stall
    limit, beyond ``max_rounds``) come back quarantined in a
    ``"partial"`` report.  Deterministic given ``(seed, plan)``.
    """
    if not 0.0 <= loss < 1.0:
        raise NetConfigError(
            "loss", loss, f"loss probability {loss} out of [0, 1)"
        )
    plan = plan if plan is not None else FaultPlan()
    with trace.span(
        "campaign.run",
        nodes=topology.node_count,
        bytes=len(blob),
        loss=loss,
        faults=plan.describe(),
    ):
        report = _run_campaign(
            topology,
            blob,
            plan,
            loss=loss,
            seed=seed,
            power=power,
            max_rounds=max_rounds,
            payload_per_packet=payload_per_packet,
            overhead_per_packet=overhead_per_packet,
            old_version=old_version,
            new_version=new_version,
            apply_rounds=apply_rounds,
            stall_limit=stall_limit,
        )
    metrics.counter("campaign.runs").inc()
    metrics.histogram("campaign.rounds").observe(report.rounds)
    metrics.counter("campaign.broadcasts").inc(report.broadcasts)
    metrics.counter("campaign.retransmissions").inc(report.retransmissions)
    metrics.counter("campaign.nacks").inc(report.nacks)
    metrics.counter("campaign.drops").inc(report.drops)
    metrics.counter("campaign.energy_j").inc(report.total_energy_j)
    metrics.counter("net.fault.corruptions").inc(report.crc_rejections)
    metrics.counter("net.fault.duplicates").inc(report.duplicates)
    if report.converged:
        metrics.counter("campaign.converged").inc()
    else:
        metrics.counter("campaign.partial").inc()
        metrics.counter("campaign.quarantined_nodes").inc(len(report.quarantined))
    return report


def _run_campaign(
    topology: Topology,
    blob: bytes,
    plan: FaultPlan,
    *,
    loss: float,
    seed: int,
    power: PowerModel,
    max_rounds: int,
    payload_per_packet: int,
    overhead_per_packet: int,
    old_version: int,
    new_version: int,
    apply_rounds: int,
    stall_limit: int,
) -> CampaignReport:
    node_count = topology.node_count
    packets = packetise_blob(blob, payload_per_packet)
    count = len(packets)
    blob_crc = zlib.crc32(blob) & 0xFFFFFFFF
    nack_bits = 8 * NACK_BYTES
    patch_j = PATCH_CYCLES_PER_BYTE * len(blob) * power.cycle_energy_j

    # String seeding: deterministic across platforms (see fuzz.runner).
    rng_link = random.Random(f"repro-campaign-link:{seed}")
    rng_fault = random.Random(f"repro-campaign-fault:{plan.seed}")

    hops = topology.hops_from_sink()
    unreachable = tuple(
        sorted(node for node in range(node_count) if node not in hops)
    )

    states = {
        node: NodeUpdateState(
            node=node, version=old_version, apply_rounds=apply_rounds
        )
        for node in range(node_count)
    }
    sink = states[0]
    sink.committed = True
    sink.version = new_version
    sink.state = "committed"
    sink.bank = {pkt.index: pkt.payload for pkt in packets}

    if count == 0:
        # Nothing to ship: every reachable node trivially holds the
        # (empty) script and commits at once.
        for node in range(1, node_count):
            if node in unreachable:
                continue
            state = states[node]
            state.committed = True
            state.version = new_version
            state.state = "committed"

    ledgers = {node: NodeLedger() for node in range(node_count)}
    crashes_by_round: dict[int, list] = {}
    reboots_by_round: dict[int, list] = {}
    event_rounds: set[int] = set()
    for crash in plan.crashes:
        if crash.node >= node_count:
            continue
        crashes_by_round.setdefault(crash.round, []).append(crash)
        if crash.round <= max_rounds:
            event_rounds.add(crash.round)
        if crash.reboot_round is not None:
            reboots_by_round.setdefault(crash.reboot_round, []).append(crash)
            if crash.reboot_round <= max_rounds:
                event_rounds.add(crash.reboot_round)
    for window in plan.partitions:
        # Events past the round budget can never fire; keeping them out
        # of the stall bookkeeping lets a hopeless run stop early.
        if window.start <= max_rounds:
            event_rounds.add(window.start)
        if window.end <= max_rounds:
            event_rounds.add(window.end)

    fault_log: list[str] = []
    broadcasts = 0
    nacks = 0
    drops = 0
    duplicates = 0
    crc_rejections = 0
    tx_counts: dict[tuple[int, int], int] = {}
    rounds = 0
    last_progress = 0

    def link_up(a: int, b: int, round_no: int) -> bool:
        return not any(w.severs(a, b, round_no) for w in plan.partitions)

    def pending_nodes() -> list[int]:
        """Reachable nodes not yet committed that can still recover."""
        out = []
        for node in range(1, node_count):
            if node in unreachable or states[node].committed:
                continue
            if states[node].alive:
                out.append(node)
            elif any(
                crash.node == node and crash.reboot_round is not None
                and crash.reboot_round > rounds
                for crash in plan.crashes
            ):
                out.append(node)
        return out

    partition_open: set[int] = set()
    while rounds < max_rounds:
        if not pending_nodes():
            break
        # Bounded retry: a stalled fleet with no scheduled fault event
        # still to come will never make progress — stop burning rounds.
        if rounds - last_progress >= stall_limit and not any(
            event > rounds for event in event_rounds
        ):
            break
        rounds += 1
        round_progress: dict[int, bool] = {}

        # -- fault events ------------------------------------------------
        for crash in crashes_by_round.get(rounds, ()):
            states[crash.node].crash()
            metrics.counter("net.fault.crashes").inc()
            detail = (
                "after commit"
                if states[crash.node].committed
                else "staging bank lost"
            )
            fault_log.append(f"r{rounds}: node {crash.node} crashed ({detail})")
        for crash in reboots_by_round.get(rounds, ()):
            state = states[crash.node]
            state.reboot(rounds)
            metrics.counter("net.fault.reboots").inc()
            image = "new image" if state.committed else "golden image"
            fault_log.append(
                f"r{rounds}: node {crash.node} rebooted "
                f"({image} v{state.version})"
            )
        for index, window in enumerate(plan.partitions):
            if window.start == rounds and index not in partition_open:
                partition_open.add(index)
                metrics.counter("net.fault.partitions").inc()
                island = ",".join(str(n) for n in window.nodes)
                fault_log.append(f"r{rounds}: partition {{{island}}} isolated")
            if window.end == rounds and index in partition_open:
                partition_open.discard(index)
                island = ",".join(str(n) for n in window.nodes)
                fault_log.append(f"r{rounds}: partition {{{island}}} healed")

        # -- NACK phase (backoff-gated version/missing advertisement) ----
        for node in range(1, node_count):
            state = states[node]
            if not state.should_nack(rounds, count):
                continue
            nacks += 1
            state.note_nack(rounds, count)
            ledgers[node].tx_j += nack_bits * power.tx_bit_energy_j
            for peer in topology.neighbors.get(node, ()):
                if states[peer].alive and link_up(node, peer, rounds):
                    ledgers[peer].rx_j += nack_bits * power.rx_bit_energy_j

        # -- broadcast phase (snapshot: hop-by-hop progression) ----------
        snapshot = {
            node: frozenset(states[node].bank) for node in range(node_count)
        }
        for sender in range(node_count):
            state = states[sender]
            if not state.alive or not snapshot[sender]:
                continue
            neighbours = [
                peer
                for peer in topology.neighbors.get(sender, ())
                if states[peer].alive and link_up(sender, peer, rounds)
            ]
            if not neighbours:
                continue
            wanted: set[int] = set()
            for peer in neighbours:
                wanted |= states[peer].advertised_missing
            sendable = sorted(snapshot[sender] & wanted)
            for index in sendable:
                packet = packets[index]
                bits = 8 * (len(packet.payload) + overhead_per_packet)
                broadcasts += 1
                key = (sender, index)
                tx_counts[key] = tx_counts.get(key, 0) + 1
                ledgers[sender].tx_j += bits * power.tx_bit_energy_j
                ledgers[sender].packets_sent += 1
                for peer in neighbours:
                    peer_state = states[peer]
                    if peer_state.committed or index in peer_state.bank:
                        continue
                    deliveries = 1
                    if (
                        plan.duplicate_prob
                        and rng_fault.random() < plan.duplicate_prob
                    ):
                        deliveries = 2
                    for _ in range(deliveries):
                        ledgers[peer].rx_j += bits * power.rx_bit_energy_j
                        if rng_link.random() < loss:
                            drops += 1
                            continue
                        delivered = packet
                        if (
                            plan.corrupt_prob
                            and rng_fault.random() < plan.corrupt_prob
                        ):
                            delivered = packet.corrupted(
                                rng_fault.randrange(1 << 16)
                            )
                        verdict = peer_state.receive(delivered, count)
                        if verdict == "accepted":
                            ledgers[peer].packets_received += 1
                            round_progress[peer] = True
                            last_progress = rounds
                        elif verdict == "corrupt":
                            crc_rejections += 1
                        elif verdict == "duplicate":
                            duplicates += 1

        # -- apply phase (two-bank write, commit = boot-pointer flip) ----
        for node in range(1, node_count):
            state = states[node]
            if state.state not in ("staged", "applying"):
                continue
            if state.state == "staged" and (
                zlib.crc32(state.assembled_blob()) & 0xFFFFFFFF
            ) != blob_crc:
                # Whole-script verification failed: discard and re-sync.
                # Unreachable with per-packet CRCs, but the state machine
                # never flips the boot pointer on an unverified bank.
                state.bank.clear()
                state.state = "idle"
                continue
            ledgers[node].cpu_j += patch_j / max(1, apply_rounds)
            if state.tick_apply(new_version):
                round_progress[node] = True
                last_progress = rounds

        for node in range(1, node_count):
            if states[node].alive and not states[node].committed:
                states[node].note_round(round_progress.get(node, False))

    quarantined = tuple(
        sorted(
            node
            for node in range(1, node_count)
            if not states[node].committed
        )
    )
    retransmissions = sum(c - 1 for c in tx_counts.values() if c > 1)
    outcome = "converged" if not quarantined else "partial"
    return CampaignReport(
        outcome=outcome,
        rounds=rounds,
        packets=count,
        script_bytes=len(blob),
        old_version=old_version,
        new_version=new_version,
        node_versions={
            node: states[node].version for node in range(node_count)
        },
        quarantined=quarantined,
        unreachable=unreachable,
        ledgers=ledgers,
        broadcasts=broadcasts,
        retransmissions=retransmissions,
        nacks=nacks,
        drops=drops,
        crc_rejections=crc_rejections,
        duplicates=duplicates,
        fault_log=fault_log,
        plan_digest=plan.digest(),
    )


__all__ = ["CampaignReport", "DEFAULT_STALL_LIMIT", "run_campaign"]
