"""Campaign controller: drive an OTA update to fleet convergence under faults.

Where :func:`repro.net.lossy.disseminate_lossy` models exactly one
failure mode (independent packet loss), a *campaign* drives the real
thing: per-node :class:`~repro.net.node_state.NodeUpdateState` machines
assembling the actual script bytes into CRC-verified staging banks,
crash/reboot/partition/corruption/duplicate faults injected from a
deterministic :class:`~repro.net.faults.FaultPlan`, exponential NACK
backoff, and bounded retry rounds.  The controller never raises for an
unconverged fleet — it returns a structured
:class:`CampaignReport` with the converged subset, the quarantined
nodes, per-node final versions, joule ledgers (retransmission and
aborted-write overhead included), and the fault log.

Determinism: identical ``(topology, blob, plan, seed)`` inputs produce
a byte-identical report (``CampaignReport.to_json``), which is what
the fuzz layer's replay guarantee and the regression tests pin.
"""

from __future__ import annotations

import hashlib
import json
import random
import zlib
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING

from ..diff.packets import DEFAULT_OVERHEAD, DEFAULT_PAYLOAD
from ..energy.power_model import MICA2, PowerModel
from ..fastpath import fastpath_enabled
from ..obs import metrics, trace
from .dissemination import PATCH_CYCLES_PER_BYTE, NodeLedger
from .errors import NetConfigError
from .faults import FaultPlan
from .kernel import SimKernel
from .lossy import NACK_BYTES
from .node_state import APPLY_ROUNDS, NodeUpdateState, packetise_blob
from .profiles import DeviceProfile
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .coding import CodedTransferParams

#: Rounds without any fleet progress (and no scheduled fault event
#: still to come) after which the controller stops retrying and
#: quarantines the stragglers.
DEFAULT_STALL_LIMIT = 24


@dataclass
class CampaignReport:
    """Structured outcome of one update campaign."""

    outcome: str  # "converged" | "partial" | "stalled-budget"
    rounds: int
    packets: int
    script_bytes: int
    old_version: int
    new_version: int
    node_versions: dict[int, int]
    quarantined: tuple[int, ...]
    unreachable: tuple[int, ...]
    ledgers: dict[int, NodeLedger]
    broadcasts: int = 0
    retransmissions: int = 0
    nacks: int = 0
    drops: int = 0
    crc_rejections: int = 0
    duplicates: int = 0
    fault_log: list[str] = field(default_factory=list)
    plan_digest: str = ""
    #: Device-profile outcome block (airtime deferrals, brownout/resume
    #: counts, lifetime metrics).  ``None`` for profile-less runs and for
    #: the neutral ``MICA2`` profile, which keeps their ``to_json``
    #: byte-identical to every report minted before profiles existed.
    profile_stats: dict | None = None

    @property
    def converged(self) -> bool:
        return self.outcome == "converged"

    @property
    def converged_nodes(self) -> tuple[int, ...]:
        """Non-sink nodes running the new version at campaign end."""
        return tuple(
            node
            for node, version in sorted(self.node_versions.items())
            if node != 0 and version == self.new_version
        )

    @property
    def total_energy_j(self) -> float:
        return sum(ledger.total_j for ledger in self.ledgers.values())

    def max_node_energy_j(self, exclude_sink: bool = True) -> float:
        """Energy at the hottest node (the lifetime limiter; the sink
        is mains-powered, so it is excluded by default)."""
        candidates = [
            ledger
            for node, ledger in self.ledgers.items()
            if not (exclude_sink and node == 0)
        ]
        return max(ledger.total_j for ledger in candidates)

    def to_json(self) -> str:
        """Canonical JSON rendering — byte-identical across runs with
        the same seed and fault plan (pinned by tests)."""
        payload = {
            "outcome": self.outcome,
            "rounds": self.rounds,
            "packets": self.packets,
            "script_bytes": self.script_bytes,
            "old_version": self.old_version,
            "new_version": self.new_version,
            "node_versions": {
                str(node): version
                for node, version in sorted(self.node_versions.items())
            },
            "quarantined": list(self.quarantined),
            "unreachable": list(self.unreachable),
            "broadcasts": self.broadcasts,
            "retransmissions": self.retransmissions,
            "nacks": self.nacks,
            "drops": self.drops,
            "crc_rejections": self.crc_rejections,
            "duplicates": self.duplicates,
            "fault_log": list(self.fault_log),
            "plan_digest": self.plan_digest,
            "ledgers": {
                str(node): {
                    "tx_j": ledger.tx_j,
                    "rx_j": ledger.rx_j,
                    "cpu_j": ledger.cpu_j,
                    "packets_sent": ledger.packets_sent,
                    "packets_received": ledger.packets_received,
                }
                for node, ledger in sorted(self.ledgers.items())
            },
        }
        if self.profile_stats is not None:
            payload["profile"] = self.profile_stats
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def render(self) -> str:
        """Human-readable summary."""
        fleet = len(self.node_versions) - 1  # exclude the sink
        lines = [
            f"campaign : {self.outcome} after {self.rounds} rounds "
            f"({len(self.converged_nodes)}/{fleet} nodes on v{self.new_version})",
            f"script   : {self.script_bytes} B in {self.packets} packets",
            f"radio    : {self.broadcasts} broadcasts "
            f"({self.retransmissions} retransmissions), {self.nacks} NACKs, "
            f"{self.drops} drops, {self.crc_rejections} CRC rejections, "
            f"{self.duplicates} duplicates",
            f"energy   : {self.total_energy_j * 1e3:.2f} mJ network total, "
            f"hottest node {self.max_node_energy_j() * 1e6:.1f} uJ",
        ]
        if self.profile_stats is not None:
            stats = self.profile_stats
            line = (
                f"profile  : {stats['name']} — "
                f"{stats['airtime_deferrals']} airtime deferrals "
                f"({stats['airtime_violations']} violations), "
                f"{stats['brownouts']} brownouts, "
                f"{stats['resumed_applies']} resumed applies"
            )
            if stats.get("first_node_death_s") is not None:
                line += f", first death {stats['first_node_death_s']:g}s"
            lines.append(line)
        if self.quarantined:
            nodes = ", ".join(str(node) for node in self.quarantined)
            lines.append(f"quarantined: {nodes}")
        if self.fault_log:
            lines.append("fault log:")
            lines.extend(f"  {entry}" for entry in self.fault_log)
        return "\n".join(lines)


#: Seconds of kernel time one campaign round occupies when the flood
#: loop runs on the event kernel (and when fault-plan rounds are
#: mapped to kernel time for the trickle/gossip protocols).
ROUND_S = 1.0

#: Dissemination protocols :func:`run_campaign` can drive.
PROTOCOLS = ("flood", "trickle", "gossip")


def run_campaign(
    topology: Topology,
    blob: bytes,
    plan: FaultPlan | None = None,
    *,
    loss: float = 0.0,
    seed: int = 1,
    power: PowerModel = MICA2,
    max_rounds: int = 200,
    payload_per_packet: int = DEFAULT_PAYLOAD,
    overhead_per_packet: int = DEFAULT_OVERHEAD,
    old_version: int = 0,
    new_version: int = 1,
    apply_rounds: int = APPLY_ROUNDS,
    stall_limit: int = DEFAULT_STALL_LIMIT,
    protocol: str = "flood",
    coding: "CodedTransferParams | None" = None,
    profile: DeviceProfile | None = None,
):
    """Disseminate ``blob`` to every reachable node under ``plan``.

    Never raises for an unconverged fleet: nodes the campaign cannot
    update within the budget (dead forever, partitioned past the stall
    limit, beyond ``max_rounds``) come back quarantined in a
    ``"partial"`` report.  Deterministic given ``(seed, plan)``.

    ``protocol`` selects the dissemination machinery: ``"flood"`` (the
    default) is the synchronous NACK-repair flood returning a
    :class:`CampaignReport`; ``"trickle"`` and ``"gossip"`` run the
    event-kernel protocols (:func:`repro.net.trickle.run_trickle`,
    :func:`repro.net.gossip.run_gossip`) with a time budget of
    ``max_rounds * ROUND_S`` seconds and return a
    :class:`~repro.net.kernel.KernelReport` (same consumer surface:
    ``converged`` / ``outcome`` / ``render`` / ``digest``).

    ``profile`` applies a :class:`~repro.net.profiles.DeviceProfile`:
    its power model replaces ``power``, payloads are fragmented to its
    MTU, airtime budgets are enforced (a node out of budget defers TX to
    its next legal slot — never violates), and energy-limited profiles
    get the capacitor brownout model with page-granular checkpointed
    apply.  The neutral ``MICA2`` profile (or ``None``) leaves every
    byte of the report identical to a profile-less run.  An
    airtime-starved fleet that stops short of convergence comes back as
    ``outcome="stalled-budget"`` with the still-pending nodes listed in
    ``profile_stats["stalled_pending"]`` — resume by re-running with a
    larger ``max_rounds``.
    """
    if not 0.0 <= loss < 1.0:
        raise NetConfigError(
            "loss", loss, f"loss probability {loss} out of [0, 1)"
        )
    if protocol not in PROTOCOLS:
        raise NetConfigError(
            "protocol", protocol,
            f"unknown protocol {protocol!r}; expected one of {PROTOCOLS}",
        )
    plan = plan if plan is not None else FaultPlan()
    if profile is not None:
        power = profile.power
    if plan.power_traces and (profile is None or not profile.is_energy_limited):
        raise NetConfigError(
            "profile", None if profile is None else profile.name,
            "the fault plan scripts power traces, which only act under an "
            "energy-limited device profile (storage_j > 0)",
        )
    if coding is not None and coding.scheme == "lt":
        if profile is not None and not profile.is_neutral:
            raise NetConfigError(
                "coding", coding.scheme,
                "the 'lt' fountain path does not model device-profile "
                "constraints; use the flood/trickle/gossip protocols",
            )
        if protocol != "flood":
            raise NetConfigError(
                "coding", coding.scheme,
                "the 'lt' fountain replaces the flood protocol's NACK "
                "repair; use scheme='xor' with trickle/gossip",
            )
        from .coding import run_coded_campaign

        return run_coded_campaign(
            topology,
            blob,
            plan,
            params=coding,
            loss=loss,
            seed=seed,
            power=power,
            max_rounds=max_rounds,
            payload_per_packet=payload_per_packet,
            overhead_per_packet=overhead_per_packet,
            old_version=old_version,
            new_version=new_version,
            stall_limit=stall_limit,
        )
    if protocol != "flood":
        from .gossip import run_gossip
        from .trickle import run_trickle

        runner = run_trickle if protocol == "trickle" else run_gossip
        return runner(
            topology,
            blob,
            plan,
            loss=loss,
            seed=seed,
            power=power,
            max_time=max_rounds * ROUND_S,
            payload_per_packet=payload_per_packet,
            overhead_per_packet=overhead_per_packet,
            old_version=old_version,
            new_version=new_version,
            round_s=ROUND_S,
            coding=coding,
            profile=profile,
        )
    if coding is not None:
        raise NetConfigError(
            "coding", coding.scheme,
            "the 'xor' burst-parity scheme rides the trickle/gossip "
            "kernel; the flood protocol takes the 'lt' fountain",
        )
    with trace.span(
        "campaign.run",
        nodes=topology.node_count,
        bytes=len(blob),
        loss=loss,
        faults=plan.describe(),
    ):
        report = _run_campaign(
            topology,
            blob,
            plan,
            loss=loss,
            seed=seed,
            power=power,
            max_rounds=max_rounds,
            payload_per_packet=payload_per_packet,
            overhead_per_packet=overhead_per_packet,
            old_version=old_version,
            new_version=new_version,
            apply_rounds=apply_rounds,
            stall_limit=stall_limit,
            profile=profile,
        )
    metrics.counter("campaign.runs").inc()
    metrics.histogram("campaign.rounds").observe(report.rounds)
    metrics.counter("campaign.broadcasts").inc(report.broadcasts)
    metrics.counter("campaign.retransmissions").inc(report.retransmissions)
    metrics.counter("campaign.nacks").inc(report.nacks)
    metrics.counter("campaign.drops").inc(report.drops)
    metrics.counter("campaign.energy_j").inc(report.total_energy_j)
    metrics.counter("net.fault.corruptions").inc(report.crc_rejections)
    metrics.counter("net.fault.duplicates").inc(report.duplicates)
    if report.converged:
        metrics.counter("campaign.converged").inc()
    else:
        metrics.counter("campaign.partial").inc()
        metrics.counter("campaign.quarantined_nodes").inc(len(report.quarantined))
    if report.profile_stats is not None:
        stats = report.profile_stats
        metrics.counter("net.profile.airtime_deferrals").inc(
            stats["airtime_deferrals"]
        )
        metrics.counter("net.profile.airtime_violations").inc(
            stats["airtime_violations"]
        )
        if report.outcome == "stalled-budget":
            metrics.counter("net.profile.stalled_budget").inc()
    return report


class _CampaignEngine:
    """State and round phases of one flood campaign.

    Two drivers share this engine: the retained synchronous ``while``
    loop (:func:`_drive_rounds`, the reference path) and the
    event-kernel driver (:func:`_drive_kernel`, the fast path), which
    schedules the round ticks and every fault-plan entry as kernel
    events keyed ``(time, seq, node)``.  Both call the same methods in
    the same order on the same RNG streams, so the resulting
    :class:`CampaignReport` is byte-identical between them — pinned by
    ``tests/test_campaign_kernel.py`` and the ``dissemination`` bench
    area's in-harness digest check.
    """

    def __init__(
        self,
        topology: Topology,
        blob: bytes,
        plan: FaultPlan,
        *,
        loss: float,
        seed: int,
        power: PowerModel,
        max_rounds: int,
        payload_per_packet: int,
        overhead_per_packet: int,
        old_version: int,
        new_version: int,
        apply_rounds: int,
        stall_limit: int,
        profile: DeviceProfile | None = None,
    ):
        self.topology = topology
        self.blob = blob
        self.plan = plan
        self.loss = loss
        self.power = power
        self.max_rounds = max_rounds
        self.overhead_per_packet = overhead_per_packet
        self.old_version = old_version
        self.new_version = new_version
        self.apply_rounds = apply_rounds
        self.stall_limit = stall_limit
        # A neutral profile (MICA2) is dropped here so every profile
        # code path below is gated on ``self.profile is not None`` and
        # the report stays byte-identical to a profile-less run.
        self.profile = (
            profile if profile is not None and not profile.is_neutral else None
        )
        if self.profile is not None:
            payload_per_packet = self.profile.effective_payload(
                payload_per_packet
            )

        node_count = topology.node_count
        self.node_count = node_count
        self.packets = packetise_blob(blob, payload_per_packet)
        self.count = len(self.packets)
        self.blob_crc = zlib.crc32(blob) & 0xFFFFFFFF
        self.nack_bits = 8 * NACK_BYTES
        self.patch_j = PATCH_CYCLES_PER_BYTE * len(blob) * power.cycle_energy_j

        # String seeding: deterministic across platforms (see fuzz.runner).
        self.rng_link = random.Random(f"repro-campaign-link:{seed}")
        self.rng_fault = random.Random(f"repro-campaign-fault:{plan.seed}")

        hops = topology.hops_from_sink()
        self.unreachable = tuple(
            sorted(node for node in range(node_count) if node not in hops)
        )

        self.states = {
            node: NodeUpdateState(
                node=node, version=old_version, apply_rounds=apply_rounds
            )
            for node in range(node_count)
        }
        sink = self.states[0]
        sink.committed = True
        sink.version = new_version
        sink.state = "committed"
        sink.bank = {pkt.index: pkt.payload for pkt in self.packets}

        if self.count == 0:
            # Nothing to ship: every reachable node trivially holds the
            # (empty) script and commits at once.
            for node in range(1, node_count):
                if node in self.unreachable:
                    continue
                state = self.states[node]
                state.committed = True
                state.version = new_version
                state.state = "committed"

        self.ledgers = {node: NodeLedger() for node in range(node_count)}
        self.crashes_by_round: dict[int, list] = {}
        self.reboots_by_round: dict[int, list] = {}
        self.event_rounds: set[int] = set()
        for crash in plan.crashes:
            if crash.node >= node_count:
                continue
            self.crashes_by_round.setdefault(crash.round, []).append(crash)
            if crash.round <= max_rounds:
                self.event_rounds.add(crash.round)
            if crash.reboot_round is not None:
                self.reboots_by_round.setdefault(
                    crash.reboot_round, []
                ).append(crash)
                if crash.reboot_round <= max_rounds:
                    self.event_rounds.add(crash.reboot_round)
        for window in plan.partitions:
            # Events past the round budget can never fire; keeping them
            # out of the stall bookkeeping lets a hopeless run stop early.
            if window.start <= max_rounds:
                self.event_rounds.add(window.start)
            if window.end <= max_rounds:
                self.event_rounds.add(window.end)

        self.fault_log: list[str] = []
        self.broadcasts = 0
        self.nacks = 0
        self.drops = 0
        self.duplicates = 0
        self.crc_rejections = 0
        self.tx_counts: dict[tuple[int, int], int] = {}
        self.rounds = 0
        self.last_progress = 0
        self.round_progress: dict[int, bool] = {}
        self.partition_open: set[int] = set()

        # -- device-profile state (all inert without an active profile) --
        # Airtime: cumulative on-air seconds per node against a cap that
        # grows by ``ROUND_S * budget`` every round, so the long-run duty
        # cycle can never exceed the regulatory budget.
        self.air_budget = (
            self.profile.airtime_budget
            if self.profile is not None and self.profile.is_airtime_limited
            else None
        )
        self.air_s = [0.0] * node_count
        self.airtime_deferrals = 0
        self.airtime_violations = 0
        self.last_budget_block = -1
        # Capacitor charge model: per-node stored energy, cumulative
        # spend (what scripted power traces trigger on), and the set of
        # browned-out nodes waiting on a recharge.
        self.pages_total = 0
        self.flash_page_j = 0.0
        self.stored: list[float] | None = None
        self.browned: set[int] = set()
        self.first_death_round: int | None = None
        self.network_death_round: int | None = None
        if self.profile is not None and self.profile.is_paged:
            self.pages_total = self.profile.pages_for(len(blob))
            self.flash_page_j = self.profile.flash_write_j_per_page
        if self.profile is not None and self.profile.is_energy_limited:
            prof = self.profile
            self.storage_j = prof.storage_j
            self.restart_j = prof.restart_fraction * prof.storage_j
            self.stored = [prof.storage_j * prof.start_fraction] * node_count
            self.spent = [0.0] * node_count
            self.harvest_round_j = [prof.harvest_w * ROUND_S] * node_count
            self.trace_cuts: dict[int, tuple[float, ...]] = {}
            self.trace_pos: dict[int, int] = {}
            for trace_ in plan.power_traces:
                if trace_.node >= node_count:
                    continue
                self.trace_cuts[trace_.node] = trace_.brownout_at_j
                self.trace_pos[trace_.node] = 0
                self.harvest_round_j[trace_.node] = (
                    prof.harvest_w * ROUND_S * trace_.harvest_scale
                )

    # -- predicates ------------------------------------------------------

    def link_up(self, a: int, b: int, round_no: int) -> bool:
        return not any(
            w.severs(a, b, round_no) for w in self.plan.partitions
        )

    def can_recover(self, node: int) -> bool:
        """Will a browned-out node ever recharge to its restart level?"""
        if self.stored is None or node not in self.browned:
            return False
        return (
            self.harvest_round_j[node] > 0.0
            or self.stored[node] >= self.restart_j
        )

    def pending_nodes(self) -> list[int]:
        """Reachable nodes not yet committed that can still recover."""
        out = []
        for node in range(1, self.node_count):
            if node in self.unreachable or self.states[node].committed:
                continue
            if self.states[node].alive:
                out.append(node)
            elif self.can_recover(node):
                out.append(node)
            elif any(
                crash.node == node and crash.reboot_round is not None
                and crash.reboot_round > self.rounds
                for crash in self.plan.crashes
            ):
                out.append(node)
        return out

    def advance_round(self) -> bool:
        """The round tick: termination checks, then the round counter.

        Returns ``False`` (without advancing) when the campaign is done
        — fleet converged, or stalled with no scheduled fault event
        still to come (bounded retry: such a fleet will never make
        progress, so stop burning rounds).  Two profile-driven waits
        count as scheduled events: an airtime budget that blocked a
        transmission since the last progress (the cap grows every
        round, so the deferred TX has a legal slot coming), and a
        browned-out node still recharging toward its restart level.
        """
        if not self.pending_nodes():
            return False
        if self.rounds - self.last_progress >= self.stall_limit and not any(
            event > self.rounds for event in self.event_rounds
        ):
            waiting_budget = (
                self.air_budget is not None
                and self.last_budget_block >= self.last_progress
            )
            waiting_power = any(
                self.can_recover(node) for node in self.browned
            )
            if not waiting_budget and not waiting_power:
                return False
        self.rounds += 1
        self.round_progress = {}
        return True

    # -- device-profile machinery ---------------------------------------

    def tx_allowed(self, node: int, airtime_s: float) -> bool:
        """May ``node`` put ``airtime_s`` seconds on the air this round
        without busting its cumulative duty-cycle cap?"""
        if self.air_budget is None:
            return True
        cap = self.rounds * ROUND_S * self.air_budget
        return self.air_s[node] + airtime_s <= cap + 1e-12

    def note_tx_airtime(self, node: int, airtime_s: float) -> None:
        self.air_s[node] += airtime_s
        if self.air_budget is None:
            return
        cap = self.rounds * ROUND_S * self.air_budget
        if self.air_s[node] > cap + 1e-9:  # unreachable by construction
            self.airtime_violations += 1
            metrics.counter("net.profile.airtime_violations").inc()

    def defer_tx(self, node: int, packets: int = 1) -> None:
        """Budget exhausted: the node stays silent and retries in a
        later round once the cap has grown — never a violation."""
        self.airtime_deferrals += packets
        self.last_budget_block = self.rounds
        metrics.counter("net.profile.airtime_deferrals").inc(packets)

    def spend(self, node: int, joules: float) -> bool:
        """Debit the node's capacitor; False means the energy ran out
        (or a scripted power trace fired) and the node must brown out."""
        if self.stored is None or node == 0:
            return True
        self.spent[node] += joules
        self.stored[node] -= joules
        powered = True
        cuts = self.trace_cuts.get(node)
        if cuts is not None:
            position = self.trace_pos[node]
            while position < len(cuts) and self.spent[node] >= cuts[position]:
                position += 1
                powered = False
            self.trace_pos[node] = position
        if self.stored[node] <= 0.0:
            self.stored[node] = 0.0
            powered = False
        return powered

    def fire_brownout(self, node: int, where: str) -> None:
        """Power loss mid-operation: volatile staging state is gone, the
        nonvolatile page checkpoint and the committed bank survive."""
        state = self.states[node]
        state.brownout()
        self.browned.add(node)
        metrics.counter("net.profile.brownouts").inc()
        self.fault_log.append(
            f"r{self.rounds}: node {node} browned out during {where} "
            f"(checkpoint {state.pages_done}/{self.pages_total} pages)"
        )
        if self.first_death_round is None:
            self.first_death_round = self.rounds
        if self.network_death_round is None and all(
            not self.states[peer].alive
            for peer in range(1, self.node_count)
            if peer not in self.unreachable
        ):
            self.network_death_round = self.rounds

    def power_round(self) -> None:
        """Harvest income and recharge-driven resumes, at round start."""
        if self.stored is None:
            return
        for node in range(1, self.node_count):
            if node in self.unreachable:
                continue
            self.stored[node] = min(
                self.storage_j, self.stored[node] + self.harvest_round_j[node]
            )
            if node in self.browned and self.stored[node] >= self.restart_j:
                self.browned.discard(node)
                state = self.states[node]
                state.resume(self.rounds)
                metrics.counter("net.profile.resumes").inc()
                self.fault_log.append(
                    f"r{self.rounds}: node {node} resumed "
                    f"(checkpoint {state.pages_done}/{self.pages_total} pages)"
                )
                self.last_progress = self.rounds

    # -- fault events ----------------------------------------------------

    def fire_crash(self, crash) -> None:
        self.states[crash.node].crash()
        metrics.counter("net.fault.crashes").inc()
        detail = (
            "after commit"
            if self.states[crash.node].committed
            else "staging bank lost"
        )
        self.fault_log.append(
            f"r{self.rounds}: node {crash.node} crashed ({detail})"
        )

    def fire_reboot(self, crash) -> None:
        state = self.states[crash.node]
        state.reboot(self.rounds)
        metrics.counter("net.fault.reboots").inc()
        image = "new image" if state.committed else "golden image"
        self.fault_log.append(
            f"r{self.rounds}: node {crash.node} rebooted "
            f"({image} v{state.version})"
        )

    def fire_partition(self, index: int, opening: bool) -> None:
        window = self.plan.partitions[index]
        island = ",".join(str(n) for n in window.nodes)
        if opening:
            if index in self.partition_open:
                return
            self.partition_open.add(index)
            metrics.counter("net.fault.partitions").inc()
            self.fault_log.append(
                f"r{self.rounds}: partition {{{island}}} isolated"
            )
        else:
            if index not in self.partition_open:
                return
            self.partition_open.discard(index)
            self.fault_log.append(
                f"r{self.rounds}: partition {{{island}}} healed"
            )

    def apply_faults(self) -> None:
        """This round's fault-plan entries, in the pinned order:
        crashes (plan order), reboots (plan order), partition
        open/close (window order)."""
        for crash in self.crashes_by_round.get(self.rounds, ()):
            self.fire_crash(crash)
        for crash in self.reboots_by_round.get(self.rounds, ()):
            self.fire_reboot(crash)
        for index, window in enumerate(self.plan.partitions):
            if window.start == self.rounds:
                self.fire_partition(index, True)
            if window.end == self.rounds:
                self.fire_partition(index, False)

    # -- the round body --------------------------------------------------

    def run_phases(self) -> None:
        """One round's NACK, broadcast, and apply phases."""
        topology = self.topology
        states = self.states
        ledgers = self.ledgers
        plan = self.plan
        power = self.power
        count = self.count
        rounds = self.rounds
        node_count = self.node_count
        round_progress = self.round_progress

        # -- power phase (harvest income, recharge-driven resumes) -------
        self.power_round()

        # -- NACK phase (backoff-gated version/missing advertisement) ----
        nack_airtime = self.nack_bits / power.radio_bps
        for node in range(1, node_count):
            state = states[node]
            if not state.should_nack(rounds, count):
                continue
            if not self.tx_allowed(node, nack_airtime):
                self.defer_tx(node)
                continue
            self.nacks += 1
            state.note_nack(rounds, count)
            self.note_tx_airtime(node, nack_airtime)
            nack_tx_j = self.nack_bits * power.tx_bit_energy_j
            ledgers[node].tx_j += nack_tx_j
            if not self.spend(node, nack_tx_j):
                self.fire_brownout(node, "NACK tx")
                continue
            for peer in topology.neighbors.get(node, ()):
                if states[peer].alive and self.link_up(node, peer, rounds):
                    nack_rx_j = self.nack_bits * power.rx_bit_energy_j
                    ledgers[peer].rx_j += nack_rx_j
                    if not self.spend(peer, nack_rx_j):
                        self.fire_brownout(peer, "NACK rx")

        # -- broadcast phase (snapshot: hop-by-hop progression) ----------
        snapshot = {
            node: frozenset(states[node].bank) for node in range(node_count)
        }
        for sender in range(node_count):
            state = states[sender]
            if not state.alive or not snapshot[sender]:
                continue
            neighbours = [
                peer
                for peer in topology.neighbors.get(sender, ())
                if states[peer].alive and self.link_up(sender, peer, rounds)
            ]
            if not neighbours:
                continue
            wanted: set[int] = set()
            for peer in neighbours:
                wanted |= states[peer].advertised_missing
            sendable = sorted(snapshot[sender] & wanted)
            for slot, index in enumerate(sendable):
                packet = self.packets[index]
                bits = 8 * (len(packet.payload) + self.overhead_per_packet)
                airtime = bits / power.radio_bps
                if not self.tx_allowed(sender, airtime):
                    # Duty-cycle budget exhausted: the node falls silent
                    # for the rest of the round and retries once the cap
                    # has grown — TX is deferred, never illegal.
                    self.defer_tx(sender, len(sendable) - slot)
                    break
                self.broadcasts += 1
                key = (sender, index)
                self.tx_counts[key] = self.tx_counts.get(key, 0) + 1
                self.note_tx_airtime(sender, airtime)
                tx_j = bits * power.tx_bit_energy_j
                ledgers[sender].tx_j += tx_j
                ledgers[sender].packets_sent += 1
                sender_powered = self.spend(sender, tx_j)
                for peer in neighbours:
                    peer_state = states[peer]
                    if not peer_state.alive:
                        continue
                    if peer_state.committed or index in peer_state.bank:
                        continue
                    deliveries = 1
                    if (
                        plan.duplicate_prob
                        and self.rng_fault.random() < plan.duplicate_prob
                    ):
                        deliveries = 2
                    for _ in range(deliveries):
                        rx_j = bits * power.rx_bit_energy_j
                        ledgers[peer].rx_j += rx_j
                        if not self.spend(peer, rx_j):
                            self.fire_brownout(peer, "packet rx")
                            break
                        if self.rng_link.random() < self.loss:
                            self.drops += 1
                            continue
                        delivered = packet
                        if (
                            plan.corrupt_prob
                            and self.rng_fault.random() < plan.corrupt_prob
                        ):
                            delivered = packet.corrupted(
                                self.rng_fault.randrange(1 << 16)
                            )
                        verdict = peer_state.receive(delivered, count)
                        if verdict == "accepted":
                            ledgers[peer].packets_received += 1
                            round_progress[peer] = True
                            self.last_progress = rounds
                        elif verdict == "corrupt":
                            self.crc_rejections += 1
                        elif verdict == "duplicate":
                            self.duplicates += 1
                if not sender_powered:
                    self.fire_brownout(sender, "packet tx")
                    break

        # -- apply phase (two-bank write, commit = boot-pointer flip) ----
        pages_per_round = (
            -(-self.pages_total // max(1, self.apply_rounds))
            if self.pages_total
            else 0
        )
        for node in range(1, node_count):
            state = states[node]
            if state.state not in ("staged", "applying"):
                continue
            if state.state == "staged" and (
                zlib.crc32(state.assembled_blob()) & 0xFFFFFFFF
            ) != self.blob_crc:
                # Whole-script verification failed: discard and re-sync.
                # Unreachable with per-packet CRCs, but the state machine
                # never flips the boot pointer on an unverified bank.
                state.bank.clear()
                state.state = "idle"
                continue
            if self.pages_total:
                # Page-granular apply: each flash page costs real energy
                # and the capacitor is checked *between* page writes —
                # a brownout leaves the completed-page checkpoint intact
                # and the boot pointer on the golden image.
                if state.state == "staged":
                    state.begin_pages(self.pages_total)
                page_j = self.flash_page_j + self.patch_j / self.pages_total
                done = state.pages_done >= self.pages_total
                for _ in range(pages_per_round):
                    if done or not state.alive:
                        break
                    ledgers[node].cpu_j += page_j
                    if not self.spend(node, page_j):
                        # The in-flight page write tears: it is *not*
                        # checkpointed, so resume restarts this page.
                        self.fire_brownout(node, "flash page write")
                        break
                    done = state.write_page()
                if done and state.commit_pages(self.new_version):
                    round_progress[node] = True
                    self.last_progress = rounds
                continue
            ledgers[node].cpu_j += self.patch_j / max(1, self.apply_rounds)
            if self.stored is not None and not self.spend(
                node, self.patch_j / max(1, self.apply_rounds)
            ):
                self.fire_brownout(node, "patch apply")
                continue
            if state.tick_apply(self.new_version):
                round_progress[node] = True
                self.last_progress = rounds

        for node in range(1, node_count):
            if states[node].alive and not states[node].committed:
                states[node].note_round(round_progress.get(node, False))

    # -- reporting -------------------------------------------------------

    def build_report(self) -> CampaignReport:
        quarantined = tuple(
            sorted(
                node
                for node in range(1, self.node_count)
                if not self.states[node].committed
            )
        )
        retransmissions = sum(
            c - 1 for c in self.tx_counts.values() if c > 1
        )
        outcome = "converged" if not quarantined else "partial"
        profile_stats = None
        if self.profile is not None:
            if (
                outcome == "partial"
                and self.air_budget is not None
                and self.airtime_deferrals
                and self.last_budget_block >= self.last_progress
            ):
                # The fleet ran out of legal airtime, not out of luck:
                # the report is resumable (same plan, larger
                # ``max_rounds`` — the duty-cycle cap keeps growing).
                outcome = "stalled-budget"
            node_brownouts = {
                str(node): self.states[node].brownouts
                for node in range(self.node_count)
                if self.states[node].brownouts
            }
            node_resumed = {
                str(node): self.states[node].resumed_applies
                for node in range(self.node_count)
                if self.states[node].resumed_applies
            }
            profile_stats = {
                "name": self.profile.name,
                "airtime_budget": self.profile.airtime_budget,
                "airtime_deferrals": self.airtime_deferrals,
                "airtime_violations": self.airtime_violations,
                "brownouts": sum(node_brownouts.values()),
                "resumed_applies": sum(node_resumed.values()),
                "node_brownouts": node_brownouts,
                "node_resumed_applies": node_resumed,
                "pages_total": self.pages_total,
                "first_node_death_s": (
                    None
                    if self.first_death_round is None
                    else self.first_death_round * ROUND_S
                ),
                "network_death_s": (
                    None
                    if self.network_death_round is None
                    else self.network_death_round * ROUND_S
                ),
            }
            if outcome == "stalled-budget":
                profile_stats["stalled_pending"] = self.pending_nodes()
        return CampaignReport(
            outcome=outcome,
            rounds=self.rounds,
            packets=self.count,
            script_bytes=len(self.blob),
            old_version=self.old_version,
            new_version=self.new_version,
            node_versions={
                node: self.states[node].version
                for node in range(self.node_count)
            },
            quarantined=quarantined,
            unreachable=self.unreachable,
            ledgers=self.ledgers,
            broadcasts=self.broadcasts,
            retransmissions=retransmissions,
            nacks=self.nacks,
            drops=self.drops,
            crc_rejections=self.crc_rejections,
            duplicates=self.duplicates,
            fault_log=self.fault_log,
            plan_digest=self.plan.digest(),
            profile_stats=profile_stats,
        )


def _drive_rounds(engine: _CampaignEngine) -> None:
    """The retained synchronous round loop (the reference path)."""
    while engine.rounds < engine.max_rounds:
        if not engine.advance_round():
            break
        engine.apply_faults()
        engine.run_phases()


def _drive_kernel(engine: _CampaignEngine) -> None:
    """Drive the same engine from the event kernel (the fast path).

    Every round tick and every fault-plan entry becomes a kernel event
    at time ``round * ROUND_S``; within one instant the schedule order
    — tick, crashes (plan order), reboots (plan order), partition
    open/close (window order), phases — reproduces the reference
    loop's sequencing via the kernel's ``(time, seq, node)`` key.
    """
    kernel = SimKernel(engine.node_count, power=engine.power)

    def tick() -> None:
        if not engine.advance_round():
            kernel.stop()

    for round_no in range(1, engine.max_rounds + 1):
        at = round_no * ROUND_S
        kernel.schedule_at(at, 0, tick)
        for crash in engine.crashes_by_round.get(round_no, ()):
            kernel.schedule_at(
                at, crash.node, partial(engine.fire_crash, crash)
            )
        for crash in engine.reboots_by_round.get(round_no, ()):
            kernel.schedule_at(
                at, crash.node, partial(engine.fire_reboot, crash)
            )
        for index, window in enumerate(engine.plan.partitions):
            if window.start == round_no:
                kernel.schedule_at(
                    at, 0, partial(engine.fire_partition, index, True)
                )
            if window.end == round_no:
                kernel.schedule_at(
                    at, 0, partial(engine.fire_partition, index, False)
                )
        kernel.schedule_at(at, 0, engine.run_phases)
    kernel.run()


def _run_campaign(
    topology: Topology,
    blob: bytes,
    plan: FaultPlan,
    *,
    loss: float,
    seed: int,
    power: PowerModel,
    max_rounds: int,
    payload_per_packet: int,
    overhead_per_packet: int,
    old_version: int,
    new_version: int,
    apply_rounds: int,
    stall_limit: int,
    profile: DeviceProfile | None = None,
) -> CampaignReport:
    engine = _CampaignEngine(
        topology,
        blob,
        plan,
        loss=loss,
        seed=seed,
        power=power,
        max_rounds=max_rounds,
        payload_per_packet=payload_per_packet,
        overhead_per_packet=overhead_per_packet,
        old_version=old_version,
        new_version=new_version,
        apply_rounds=apply_rounds,
        stall_limit=stall_limit,
        profile=profile,
    )
    if fastpath_enabled():
        _drive_kernel(engine)
    else:
        _drive_rounds(engine)
    return engine.build_report()


__all__ = [
    "CampaignReport",
    "DEFAULT_STALL_LIMIT",
    "PROTOCOLS",
    "ROUND_S",
    "run_campaign",
]
