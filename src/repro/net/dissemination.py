"""Hop-by-hop dissemination of update scripts, with energy accounting.

Models the flooding code-dissemination protocols the paper builds on
(XNP/Deluge-style): the sink injects the packetised script; every node
rebroadcasts each packet once; every node in radio range receives each
broadcast.  The per-node energy ledger uses the Mica2 power model
(Figure 3): Tx energy per transmitted bit, Rx energy per received bit,
and CPU energy to interpret the script and patch the image.

Also provides the data-report model of paper §2.1: a sensing event
whose report travels ``h`` hops invokes the *data-processing* code once
but the *data-transmission* code ``h`` times — the asymmetry that
justifies updating processing code for similarity and transmission
code for speed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..diff.packets import Packetisation
from ..energy.power_model import MICA2, PowerModel
from ..obs import metrics, trace
from .topology import Topology


@dataclass
class NodeLedger:
    """Per-node energy bookkeeping (joules).

    The synchronous-round protocols only ever fill ``tx_j`` / ``rx_j``
    / ``cpu_j``; the event-kernel protocols (:mod:`repro.net.trickle`,
    :mod:`repro.net.gossip`) additionally price the radio's
    *idle-listening* time (``idle_j`` — the duty-cycled listen budget
    not spent receiving) and the node's ``sleep_j`` floor.  Both default
    to zero so ledgers from the round-based paths are byte-identical to
    what they were before the kernel existed.
    """

    tx_j: float = 0.0
    rx_j: float = 0.0
    cpu_j: float = 0.0
    idle_j: float = 0.0
    sleep_j: float = 0.0
    packets_sent: int = 0
    packets_received: int = 0

    @property
    def total_j(self) -> float:
        return self.tx_j + self.rx_j + self.cpu_j + self.idle_j + self.sleep_j


@dataclass
class DisseminationResult:
    """Network-wide outcome of distributing one update."""

    ledgers: dict[int, NodeLedger]
    packets: int
    rounds: int

    @property
    def total_energy_j(self) -> float:
        return sum(ledger.total_j for ledger in self.ledgers.values())

    @property
    def total_tx_j(self) -> float:
        return sum(ledger.tx_j for ledger in self.ledgers.values())

    @property
    def total_rx_j(self) -> float:
        return sum(ledger.rx_j for ledger in self.ledgers.values())

    def max_node_energy_j(self, exclude_sink: bool = False) -> float:
        """Energy at the hottest node — what limits network lifetime.

        ``exclude_sink=True`` drops node 0 from consideration: the sink
        is mains-powered in the paper's setting, so its ledger should
        not skew the lifetime-limiting-node metric.
        """
        candidates = [
            ledger
            for node, ledger in self.ledgers.items()
            if not (exclude_sink and node == 0)
        ]
        return max(ledger.total_j for ledger in candidates)


#: CPU cycles a node spends interpreting one script byte and patching.
PATCH_CYCLES_PER_BYTE = 24


def disseminate(
    topology: Topology,
    packets: Packetisation,
    power: PowerModel = MICA2,
    patch_cycles_per_byte: int = PATCH_CYCLES_PER_BYTE,
) -> DisseminationResult:
    """Flood the packetised script from the sink through ``topology``.

    Every non-sink node rebroadcasts each packet exactly once (classic
    flooding); receivers are all radio neighbours.  Returns per-node
    ledgers; the sink's energy is excluded from node totals only in the
    sense that callers can ignore ledger[0] (sinks are mains-powered in
    the paper's setting, but the ledger is still recorded).
    """
    with trace.span(
        "net.disseminate",
        nodes=topology.node_count,
        packets=packets.packet_count,
    ):
        packet_bits = 8 * (
            packets.payload_per_packet + packets.overhead_per_packet
        )
        count = packets.packet_count
        ledgers = {node: NodeLedger() for node in range(topology.node_count)}
        hops = topology.hops_from_sink()

        # Each node broadcasts each packet once; each neighbour receives it.
        for node in range(topology.node_count):
            ledger = ledgers[node]
            ledger.tx_j += count * packet_bits * power.tx_bit_energy_j
            ledger.packets_sent += count
            for peer in topology.neighbors.get(node, ()):
                peer_ledger = ledgers[peer]
                peer_ledger.rx_j += count * packet_bits * power.rx_bit_energy_j
                peer_ledger.packets_received += count

        # Script interpretation + patching cost on every non-sink node.
        patch_cycles = patch_cycles_per_byte * packets.script_bytes
        for node in range(1, topology.node_count):
            ledgers[node].cpu_j += patch_cycles * power.cycle_energy_j

        rounds = max(hops.values()) if hops else 0
        result = DisseminationResult(ledgers=ledgers, packets=count, rounds=rounds)
    metrics.counter("net.flood.runs").inc()
    metrics.counter("net.flood.broadcasts").inc(count * topology.node_count)
    metrics.counter("net.energy_j").inc(result.total_energy_j)
    return result


@dataclass
class ReportModel:
    """Paper §2.1's data-report example.

    An interesting event invokes the data-*processing* code once at the
    originating sensor, but the data-*transmission* code at every hop
    along the route to the sink.
    """

    topology: Topology
    power: PowerModel = MICA2

    def report_cost(
        self,
        origin: int,
        processing_cycles: float,
        transmission_cycles: float,
        report_bytes: int = 36,
    ) -> tuple[float, int]:
        """Energy (J) and hop count for one report from ``origin``."""
        path = self.topology.path_to_sink(origin)
        hop_count = len(path) - 1
        cpu = (
            processing_cycles + hop_count * transmission_cycles
        ) * self.power.cycle_energy_j
        radio_bits = 8 * report_bytes
        radio = hop_count * radio_bits * (
            self.power.tx_bit_energy_j + self.power.rx_bit_energy_j
        )
        return cpu + radio, hop_count

    def processing_vs_transmission_weight(self, origin: int) -> int:
        """How many times more often transmission code runs than
        processing code for reports from ``origin`` (= hops)."""
        return len(self.topology.path_to_sink(origin)) - 1
