"""Deterministic event-driven simulation kernel for ``repro.net``.

The synchronous-round simulators (:func:`~repro.net.dissemination.disseminate`,
:func:`~repro.net.lossy.disseminate_lossy`, the flood campaign loop)
advance the whole fleet in lock-step, which caps them long before the
fleet sizes the ROADMAP targets and hides the dominant real-world
energy cost: a radio that is *listening*, not receiving.  This module
is the continuous-time replacement those protocols (and the new
Trickle/gossip ones) run on.

Determinism contract (pinned by ``tests/test_kernel.py`` and
``docs/SIMULATOR.md``):

* The event queue is a binary heap keyed by ``(time, seq, node)``
  where ``seq`` is a monotonically increasing schedule counter — two
  events at the same instant always pop in the order they were
  scheduled, on every platform and under every ``PYTHONHASHSEED``.
* Handlers draw randomness only from ``random.Random`` streams seeded
  with derived ``"repro-<component>:<seed>"`` strings (lint rule
  ``RNG001``); because the pop order is deterministic, so is every
  draw.
* Cancellation is by handle invalidation (:class:`EventHandle`), never
  by heap surgery, so the key order of the surviving events is
  untouched.

Energy model: the kernel accrues per-node radio *seconds* in TX and RX
(``account_tx`` / ``account_rx``, bits divided by the radio bitrate)
and converts them to joules at finalisation under a
:class:`DutyCycle`: the listen budget not spent actively receiving is
priced as idle-listening at the RX draw, and the remaining time as
sleep at the standby draw (:func:`SimKernel.ledgers`).
"""

from __future__ import annotations

import hashlib
import heapq
import json
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..energy.power_model import MICA2, PowerModel
from ..obs import metrics, trace
from .dissemination import NodeLedger
from .errors import NetConfigError


@dataclass(frozen=True)
class DutyCycle:
    """A node's low-power-listening schedule.

    ``listen_fraction`` is the share of wall time the radio spends in
    the listen state when not transmitting or receiving; the remainder
    is spent asleep at the CPU standby draw.  The kernel prices the
    listen budget but does not gate deliveries on it — an LPL preamble
    long enough to bridge the sleep interval is assumed, which is the
    standard B-MAC modelling simplification (see docs/SIMULATOR.md).
    """

    listen_fraction: float = 1.0
    name: str = "always-on"

    def __post_init__(self) -> None:
        if not 0.0 <= self.listen_fraction <= 1.0:
            raise NetConfigError(
                "listen_fraction",
                self.listen_fraction,
                f"duty-cycle listen fraction {self.listen_fraction} "
                f"out of [0, 1]",
            )


#: The radio never sleeps — every idle second is billed as listening.
ALWAYS_ON = DutyCycle(1.0, "always-on")

#: 10% low-power listening (B-MAC-style default check interval).
LPL_10 = DutyCycle(0.10, "lpl-10")

#: 1% low-power listening — the long-deployment setting the kernel
#: protocols default to.
LPL_1 = DutyCycle(0.01, "lpl-1")


class EventHandle:
    """A cancellable reference to one scheduled event.

    Cancellation marks the handle; the heap entry stays where it is and
    is discarded on pop.  This keeps cancellation O(1) and — more
    importantly — never re-orders the surviving events.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class SimKernel:
    """Discrete-event scheduler with per-node radio-time accounting.

    Events are ``(time, seq, node)``-ordered callbacks; ``node`` is a
    display/ordering hint (ties at one instant are already broken by
    ``seq``), and handlers run with ``kernel.now`` set to their
    timestamp.  ``stop()`` ends the run after the current handler
    returns; pending events stay queued but are never dispatched.
    """

    def __init__(
        self,
        node_count: int,
        power: PowerModel = MICA2,
        duty_cycle: DutyCycle = ALWAYS_ON,
        airtime_budget: float = 1.0,
    ):
        if node_count < 1:
            raise NetConfigError(
                "node_count", node_count,
                f"kernel needs at least one node, got {node_count}",
            )
        if not 0.0 < airtime_budget <= 1.0:
            raise NetConfigError(
                "airtime_budget", airtime_budget,
                f"airtime budget {airtime_budget} out of (0, 1]",
            )
        self.node_count = node_count
        self.power = power
        self.duty_cycle = duty_cycle
        #: Regulatory duty-cycle fraction; ``1.0`` disables enforcement.
        #: Below 1.0 the kernel applies the ETSI off-time rule: after a
        #: transmission of ``t`` seconds a node must stay silent for
        #: ``t * (1/budget - 1)`` seconds, so its long-run on-air share
        #: never exceeds ``budget``.
        self.airtime_budget = airtime_budget
        self.now = 0.0
        self.events_dispatched = 0
        self._seq = 0
        self._heap: list = []
        self._stopped = False
        self.tx_s = [0.0] * node_count
        self.rx_s = [0.0] * node_count
        #: Earliest instant each node may legally transmit again.
        self.next_tx_s = [0.0] * node_count
        self.airtime_deferrals = 0
        self.airtime_violations = 0

    # -- scheduling -----------------------------------------------------

    def schedule(
        self, delay: float, node: int, callback: Callable[[], None]
    ) -> EventHandle:
        """Run ``callback`` ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0:
            raise NetConfigError(
                "delay", delay, f"cannot schedule {delay}s into the past"
            )
        return self.schedule_at(self.now + delay, node, callback)

    def schedule_at(
        self, time_s: float, node: int, callback: Callable[[], None]
    ) -> EventHandle:
        """Run ``callback`` at absolute time ``time_s`` (``>= now``)."""
        if time_s < self.now:
            raise NetConfigError(
                "time_s", time_s,
                f"cannot schedule at {time_s}s, already at {self.now}s",
            )
        handle = EventHandle()
        self._seq += 1
        heapq.heappush(self._heap, (time_s, self._seq, node, handle, callback))
        return handle

    def stop(self) -> None:
        """End the run after the current handler returns."""
        self._stopped = True

    def pending(self) -> int:
        """Events still queued (cancelled entries included)."""
        return len(self._heap)

    # -- the run loop ---------------------------------------------------

    def run(self, max_time: Optional[float] = None) -> float:
        """Dispatch events in ``(time, seq, node)`` order until the
        queue drains, :meth:`stop` is called, or ``max_time`` would be
        exceeded (the clock then rests *at* ``max_time``).  Returns the
        final simulation time."""
        dispatched = 0
        with trace.span(
            "net.kernel.run", nodes=self.node_count, queued=len(self._heap)
        ):
            heap = self._heap
            while heap and not self._stopped:
                time_s, _seq, _node, handle, callback = heapq.heappop(heap)
                if handle.cancelled:
                    continue
                if max_time is not None and time_s > max_time:
                    self.now = max_time
                    break
                self.now = time_s
                dispatched += 1
                callback()
        self.events_dispatched += dispatched
        metrics.counter("net.kernel.events").inc(dispatched)
        return self.now

    # -- radio-time accounting ------------------------------------------

    def tx_allowed(self, node: int) -> bool:
        """May ``node`` legally transmit at the current instant?

        Always true for an unregulated kernel.  Under a budget the node
        is silenced until its off-time from the previous transmission
        has elapsed — protocols must check this and defer (reschedule to
        :meth:`next_tx_time`) instead of transmitting.
        """
        if self.airtime_budget >= 1.0:
            return True
        return self.now + 1e-12 >= self.next_tx_s[node]

    def next_tx_time(self, node: int) -> float:
        """Earliest legal transmit instant for ``node`` (``>= now``)."""
        return max(self.now, self.next_tx_s[node])

    def note_deferral(self, node: int) -> None:
        """A protocol deferred a transmission to the next legal slot."""
        self.airtime_deferrals += 1
        metrics.counter("net.profile.airtime_deferrals").inc()

    def account_tx(self, node: int, bits: int) -> None:
        """Accrue the airtime of transmitting ``bits`` at ``node`` and,
        under a regulatory budget, start the node's off-time clock."""
        airtime = bits / self.power.radio_bps
        self.tx_s[node] += airtime
        if self.airtime_budget >= 1.0:
            return
        if self.now + 1e-12 < self.next_tx_s[node]:
            # Unreachable when protocols gate on tx_allowed(); counted
            # (and pinned to zero by the profiles bench) rather than
            # silently tolerated.
            self.airtime_violations += 1
            metrics.counter("net.profile.airtime_violations").inc()
        self.next_tx_s[node] = self.now + airtime / self.airtime_budget

    def account_rx(self, node: int, bits: int) -> None:
        """Accrue the airtime of receiving ``bits`` at ``node``."""
        self.rx_s[node] += bits / self.power.radio_bps

    def ledgers(self) -> "dict[int, NodeLedger]":
        """Per-node energy at the current clock under the duty cycle.

        TX/RX seconds are priced at the radio draws; the listen budget
        (``elapsed * listen_fraction``) not spent actively receiving
        becomes idle-listening at the RX draw; everything else is sleep
        at the CPU standby draw.  CPU (patch) energy is the protocol's
        to add on top.
        """
        elapsed = self.now
        power = self.power
        volts = power.voltage_v
        listen = self.duty_cycle.listen_fraction
        out = {}
        for node in range(self.node_count):
            tx_s = self.tx_s[node]
            rx_s = self.rx_s[node]
            idle_s = max(0.0, elapsed * listen - rx_s)
            sleep_s = max(0.0, elapsed - tx_s - rx_s - idle_s)
            out[node] = NodeLedger(
                tx_j=tx_s * power.radio_tx_a * volts,
                rx_j=rx_s * power.radio_rx_a * volts,
                idle_j=idle_s * power.radio_rx_a * volts,
                sleep_j=sleep_s * power.cpu_standby_a * volts,
            )
        return out

    def sleep_fraction(self) -> float:
        """Fleet-average share of elapsed time spent asleep."""
        if self.now <= 0.0:
            return 0.0
        listen = self.duty_cycle.listen_fraction
        total = 0.0
        for node in range(self.node_count):
            tx_s = self.tx_s[node]
            rx_s = self.rx_s[node]
            idle_s = max(0.0, self.now * listen - rx_s)
            total += max(0.0, self.now - tx_s - rx_s - idle_s)
        return total / (self.node_count * self.now)


@dataclass
class KernelReport:
    """Structured outcome of one kernel-based dissemination run.

    Duck-types the surface of
    :class:`~repro.net.campaign.CampaignReport` that
    :class:`~repro.core.session.CampaignResult`, the CLI, and the fleet
    service consume (``converged`` / ``outcome`` / ``node_versions`` /
    ``quarantined`` / energy totals / ``render`` / canonical
    ``to_json`` + ``digest``), while reporting the event-kernel
    quantities round-based reports cannot: simulation time, beacon and
    suppression counts, interval resets, and the fleet sleep fraction.
    """

    protocol: str
    outcome: str  # "converged" | "partial"
    time_s: float
    rounds: int
    events: int
    packets: int
    script_bytes: int
    old_version: int
    new_version: int
    node_versions: "dict[int, int]"
    quarantined: "tuple[int, ...]"
    unreachable: "tuple[int, ...]"
    ledgers: "dict[int, NodeLedger]"
    transmissions: int = 0
    beacons: int = 0
    requests: int = 0
    suppressed: int = 0
    resets: int = 0
    drops: int = 0
    crc_rejections: int = 0
    duplicates: int = 0
    duty_cycle: str = "always-on"
    listen_fraction: float = 1.0
    sleep_fraction: float = 0.0
    fault_log: "list[str]" = field(default_factory=list)
    plan_digest: str = ""
    #: Device-profile outcome block; ``None`` keeps the rendering
    #: byte-identical to pre-profile reports (same contract as
    #: :attr:`repro.net.campaign.CampaignReport.profile_stats`).
    profile_stats: "dict | None" = None

    @property
    def converged(self) -> bool:
        return self.outcome == "converged"

    @property
    def converged_nodes(self) -> "tuple[int, ...]":
        """Non-sink nodes running the new version at run end."""
        return tuple(
            node
            for node, version in sorted(self.node_versions.items())
            if node != 0 and version == self.new_version
        )

    @property
    def total_energy_j(self) -> float:
        return sum(ledger.total_j for ledger in self.ledgers.values())

    @property
    def total_idle_j(self) -> float:
        """Fleet-wide idle-listening energy — the cost the synchronous
        round models cannot see."""
        return sum(ledger.idle_j for ledger in self.ledgers.values())

    def max_node_energy_j(self, exclude_sink: bool = True) -> float:
        """Energy at the hottest node (the sink is mains-powered and
        excluded by default)."""
        candidates = [
            ledger
            for node, ledger in self.ledgers.items()
            if not (exclude_sink and node == 0)
        ]
        return max(ledger.total_j for ledger in candidates)

    def to_json(self) -> str:
        """Canonical JSON — byte-identical across runs with the same
        topology, seed, parameters, and fault plan (pinned by tests)."""
        payload = {
            "protocol": self.protocol,
            "outcome": self.outcome,
            "time_s": self.time_s,
            "rounds": self.rounds,
            "events": self.events,
            "packets": self.packets,
            "script_bytes": self.script_bytes,
            "old_version": self.old_version,
            "new_version": self.new_version,
            "node_versions": {
                str(node): version
                for node, version in sorted(self.node_versions.items())
            },
            "quarantined": list(self.quarantined),
            "unreachable": list(self.unreachable),
            "transmissions": self.transmissions,
            "beacons": self.beacons,
            "requests": self.requests,
            "suppressed": self.suppressed,
            "resets": self.resets,
            "drops": self.drops,
            "crc_rejections": self.crc_rejections,
            "duplicates": self.duplicates,
            "duty_cycle": self.duty_cycle,
            "listen_fraction": self.listen_fraction,
            "sleep_fraction": self.sleep_fraction,
            "fault_log": list(self.fault_log),
            "plan_digest": self.plan_digest,
            "ledgers": {
                str(node): {
                    "tx_j": ledger.tx_j,
                    "rx_j": ledger.rx_j,
                    "cpu_j": ledger.cpu_j,
                    "idle_j": ledger.idle_j,
                    "sleep_j": ledger.sleep_j,
                    "packets_sent": ledger.packets_sent,
                    "packets_received": ledger.packets_received,
                }
                for node, ledger in sorted(self.ledgers.items())
            },
        }
        if self.profile_stats is not None:
            payload["profile"] = self.profile_stats
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def render(self) -> str:
        """Human-readable summary."""
        fleet = len(self.node_versions) - 1  # exclude the sink
        lines = [
            f"{self.protocol} : {self.outcome} after {self.time_s:.1f}s "
            f"({len(self.converged_nodes)}/{fleet} nodes on "
            f"v{self.new_version}, {self.events} events)",
            f"script   : {self.script_bytes} B in {self.packets} packets",
            f"radio    : {self.transmissions} data transmissions, "
            f"{self.beacons} beacons, {self.requests} requests, "
            f"{self.suppressed} suppressed, "
            f"{self.resets} interval resets, {self.drops} drops, "
            f"{self.crc_rejections} CRC rejections, "
            f"{self.duplicates} duplicates",
            f"duty     : {self.duty_cycle} "
            f"(listen {self.listen_fraction:.0%}, "
            f"sleep fraction {self.sleep_fraction:.1%})",
            f"energy   : {self.total_energy_j * 1e3:.2f} mJ network total "
            f"({self.total_idle_j * 1e3:.2f} mJ idle-listening), "
            f"hottest node {self.max_node_energy_j() * 1e3:.3f} mJ",
        ]
        if self.profile_stats is not None:
            stats = self.profile_stats
            lines.append(
                f"profile  : {stats['name']} — "
                f"{stats['airtime_deferrals']} airtime deferrals "
                f"({stats['airtime_violations']} violations), "
                f"{stats['brownouts']} brownouts"
            )
        if self.quarantined:
            nodes = ", ".join(str(node) for node in self.quarantined)
            lines.append(f"quarantined: {nodes}")
        if self.fault_log:
            lines.append("fault log:")
            lines.extend(f"  {entry}" for entry in self.fault_log)
        return "\n".join(lines)


def rounds_equivalent(time_s: float, round_s: float) -> int:
    """Continuous time as a whole number of legacy campaign rounds."""
    if time_s <= 0.0:
        return 0
    return int(math.ceil(time_s / round_s))


__all__ = [
    "ALWAYS_ON",
    "DutyCycle",
    "EventHandle",
    "KernelReport",
    "LPL_1",
    "LPL_10",
    "SimKernel",
    "rounds_equivalent",
]
