"""Device profiles: radio, regulatory, flash, and power-storage models.

The paper's energy argument assumes a Mica2-class mote — steady battery,
always-willing radio, EEPROM writes cheap next to radio bits.  Real
fleets are harsher: LoRaWAN links carry tiny frames under a hard legal
duty-cycle budget, and batteryless harvesters brown out in the middle of
a flash write.  A :class:`DeviceProfile` bundles everything the
simulators need to model one device class:

* ``power`` — the per-component current draw table
  (:class:`repro.energy.PowerModel`) that prices every bit and cycle;
* ``mtu_bytes`` — the largest payload one frame may carry; blobs are
  fragmented down to it (``0`` = unconstrained);
* ``airtime_budget`` — the regulatory duty-cycle fraction (EU 868 MHz
  sub-band: 1%).  Enforced *in the simulators*: a node whose budget is
  exhausted defers TX to its next legal slot — the required off-time
  after a transmission of ``t`` seconds is ``t * (1/budget - 1)`` — and
  never violates the budget (``1.0`` = unregulated);
* ``flash_page_bytes`` / ``flash_write_j_per_page`` — page-granular
  apply: the new image is burned one page at a time, each write costing
  real energy, with the page counter checkpointed in nonvolatile flash
  so a brownout between two page writes resumes rather than restarts
  (``0`` = the legacy whole-rounds apply);
* ``storage_j`` / ``harvest_w`` / ``start_fraction`` /
  ``restart_fraction`` — the capacitor charge model: stored energy is
  debited for every radio bit, CPU cycle, and flash page; hitting zero
  browns the node out (volatile staging lost, committed bank and page
  checkpoint kept), and the node restarts once harvesting has refilled
  the capacitor to ``restart_fraction`` (``storage_j == 0`` = mains or
  big battery, no brownout model).

Three built-ins cover the regimes the ROADMAP calls out: :data:`MICA2`
(all-neutral — campaigns run byte-identical to a profile-less run),
:data:`LORAWAN_DR3` (51-byte MTU, 1% duty cycle, SX1276-class draws at
SF9/125 kHz), and :data:`BATTERYLESS_HARVEST` (small capacitor, page-wise
flash apply where write energy dominates).  Look profiles up by their
registry name via :func:`get_profile` (CLI ``--profile`` flag).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..energy.power_model import MICA2 as MICA2_POWER
from ..energy.power_model import PowerModel
from .errors import NetConfigError

__all__ = [
    "BATTERYLESS_HARVEST",
    "DeviceProfile",
    "LORAWAN_DR3",
    "LORA_SX1276_POWER",
    "MICA2_PROFILE",
    "PROFILES",
    "get_profile",
]

#: SX1276-class LoRa radio at EU868 DR3 (SF9/125 kHz, ~1.76 kbit/s on
#: air): TX 28 mA at +13 dBm, RX 10.8 mA, everything else Mica2-like.
LORA_SX1276_POWER = PowerModel(
    radio_rx_a=10.8e-3,
    radio_tx_a=28.0e-3,
    radio_bps=1760.0,
)


@dataclass(frozen=True)
class DeviceProfile:
    """Frozen bundle of radio, regulatory, flash, and storage parameters.

    All constraint fields default to "off" (``0`` / ``1.0``), so
    ``DeviceProfile(name="x")`` is behaviourally neutral: the simulators
    treat it exactly like running without a profile and produce
    byte-identical reports.
    """

    name: str
    power: PowerModel = field(default=MICA2_POWER)
    #: Largest payload one frame carries; ``0`` disables fragmentation.
    mtu_bytes: int = 0
    #: Regulatory duty-cycle fraction in (0, 1]; ``1.0`` = unregulated.
    airtime_budget: float = 1.0
    #: Flash page size for page-granular apply; ``0`` = legacy apply.
    flash_page_bytes: int = 0
    #: Energy to program one flash page (includes the erase share).
    flash_write_j_per_page: float = 0.0
    #: Capacitor / battery capacity in joules; ``0`` = no brownout model.
    storage_j: float = 0.0
    #: Harvest income in watts while the node is deployed.
    harvest_w: float = 0.0
    #: Fraction of ``storage_j`` stored at deployment time.
    start_fraction: float = 1.0
    #: Stored fraction a browned-out node needs before it restarts.
    restart_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not self.name:
            raise NetConfigError("name", self.name, "profile name must be non-empty")
        if self.mtu_bytes < 0:
            raise NetConfigError(
                "mtu_bytes", self.mtu_bytes, "mtu_bytes must be >= 0 (0 disables)"
            )
        if not 0.0 < self.airtime_budget <= 1.0:
            raise NetConfigError(
                "airtime_budget",
                self.airtime_budget,
                "airtime_budget must be in (0, 1]",
            )
        if self.flash_page_bytes < 0:
            raise NetConfigError(
                "flash_page_bytes",
                self.flash_page_bytes,
                "flash_page_bytes must be >= 0 (0 disables)",
            )
        if self.flash_write_j_per_page < 0.0:
            raise NetConfigError(
                "flash_write_j_per_page",
                self.flash_write_j_per_page,
                "flash_write_j_per_page must be >= 0",
            )
        if self.storage_j < 0.0 or self.harvest_w < 0.0:
            raise NetConfigError(
                "storage_j",
                (self.storage_j, self.harvest_w),
                "storage_j and harvest_w must be >= 0",
            )
        if not 0.0 < self.start_fraction <= 1.0:
            raise NetConfigError(
                "start_fraction",
                self.start_fraction,
                "start_fraction must be in (0, 1]",
            )
        if not 0.0 < self.restart_fraction <= 1.0:
            raise NetConfigError(
                "restart_fraction",
                self.restart_fraction,
                "restart_fraction must be in (0, 1]",
            )

    # ------------------------------------------------------------------
    # Capability predicates — the simulators gate every new code path on
    # these, so a neutral profile stays byte-identical to no profile.
    @property
    def is_airtime_limited(self) -> bool:
        return self.airtime_budget < 1.0

    @property
    def is_energy_limited(self) -> bool:
        return self.storage_j > 0.0

    @property
    def is_paged(self) -> bool:
        return self.flash_page_bytes > 0

    @property
    def is_neutral(self) -> bool:
        """True when no constraint deviates from the legacy defaults."""
        return not (
            self.mtu_bytes > 0
            or self.is_airtime_limited
            or self.is_energy_limited
            or self.is_paged
        )

    def effective_payload(self, default_payload: int) -> int:
        """Fragment ``default_payload`` down to the profile MTU."""
        if self.mtu_bytes <= 0:
            return default_payload
        return max(1, min(default_payload, self.mtu_bytes))

    def pages_for(self, blob_len: int) -> int:
        """Flash pages a ``blob_len``-byte image occupies (at least 1)."""
        if not self.is_paged:
            return 0
        return max(1, -(-blob_len // self.flash_page_bytes))

    def off_time_s(self, airtime_s: float) -> float:
        """Regulatory off-time after a transmission of ``airtime_s``."""
        if not self.is_airtime_limited:
            return 0.0
        return airtime_s * (1.0 / self.airtime_budget - 1.0)


#: Paper-faithful Mica2 mote: all constraints off, digest-identical to a
#: profile-less campaign by construction.
MICA2_PROFILE = DeviceProfile(name="mica2")

#: EU868 LoRaWAN at DR3: 51-byte application payload (the conservative
#: repeater-compatible limit), 1% sub-band duty cycle enforced in the
#: kernel, SX1276 radio draws at ~1.76 kbit/s.
LORAWAN_DR3 = DeviceProfile(
    name="lorawan-dr3",
    power=LORA_SX1276_POWER,
    mtu_bytes=51,
    airtime_budget=0.01,
)

#: Batteryless harvester: 50 mJ capacitor, 5 mW harvest income, 64-byte
#: flash pages at 2 mJ per programmed page — flash writes dominate the
#: apply-phase budget, so brownouts land *between* page writes and the
#: checkpointed page counter is what makes resume possible.
BATTERYLESS_HARVEST = DeviceProfile(
    name="batteryless",
    flash_page_bytes=64,
    flash_write_j_per_page=2.0e-3,
    storage_j=0.05,
    harvest_w=5.0e-3,
    start_fraction=1.0,
    restart_fraction=0.5,
)

#: Registry keyed by the CLI ``--profile`` spelling.
PROFILES: Dict[str, DeviceProfile] = {
    "mica2": MICA2_PROFILE,
    "lorawan-dr3": LORAWAN_DR3,
    "batteryless": BATTERYLESS_HARVEST,
}

#: CLI choices, in registry order.
PROFILE_NAMES: Tuple[str, ...] = tuple(PROFILES)


def get_profile(name: str) -> DeviceProfile:
    """Look a built-in profile up by registry name.

    Raises :class:`~repro.net.errors.NetConfigError` for unknown names so
    the CLI and fleet service report the bad knob without a traceback.
    """
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise NetConfigError(
            "profile", name, f"unknown device profile {name!r}; expected one of {known}"
        ) from None
