"""Per-node OTA update state machine (staging bank + two-bank commit).

Each simulated sensor assembles the incoming update script into a
*staging bank*, one CRC-checked packet at a time, then applies it with
the crash-consistency discipline energy-aware OTA work prescribes for
flash devices: the new image is written to the inactive bank over
several rounds and the boot pointer flips **only after** the whole
staged script has been verified.  A crash at any point before the flip
leaves the node running the resident golden image; a crash after the
flip leaves it on the fully verified new one.  A torn binary is never
bootable by construction — the invariant the campaign layer's
differential oracle checks against the simulator.

The state machine also owns the node's NACK backoff (exponential,
capped) and its *advertised* missing set: neighbours only learn what a
node misses in rounds the node actually NACKs, which is what makes
backoff meaningful and is how a rebooted or late node re-syncs — its
first NACK re-advertises everything.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from .errors import NetConfigError

#: Rounds a complete, verified staging bank takes to write to the
#: inactive flash bank before the boot-pointer flip (the window in
#: which a crash must roll back to the golden image).
APPLY_ROUNDS = 2

#: Ceiling of the exponential NACK backoff, in rounds.
MAX_NACK_INTERVAL = 8

#: Bytes of one packet's CRC trailer on the wire.
CRC_BYTES = 4


def packet_crc(index: int, payload: bytes) -> int:
    """Per-packet integrity check covering the index and the payload."""
    return zlib.crc32(index.to_bytes(4, "little") + payload) & 0xFFFFFFFF


@dataclass(frozen=True)
class ScriptPacket:
    """One wire packet of the update script."""

    index: int
    payload: bytes
    crc: int

    @staticmethod
    def make(index: int, payload: bytes) -> "ScriptPacket":
        return ScriptPacket(
            index=index, payload=payload, crc=packet_crc(index, payload)
        )

    def corrupted(self, flip_at: int) -> "ScriptPacket":
        """This packet with one payload byte bit-flipped in flight (the
        CRC field still describes the original payload)."""
        if not self.payload:
            return ScriptPacket(index=self.index, payload=b"", crc=self.crc ^ 1)
        at = flip_at % len(self.payload)
        mutated = bytearray(self.payload)
        mutated[at] ^= 0xFF
        return ScriptPacket(index=self.index, payload=bytes(mutated), crc=self.crc)


def packetise_blob(blob: bytes, payload_per_packet: int) -> list[ScriptPacket]:
    """Split the wire blob into CRC-trailed script packets."""
    if payload_per_packet < 1:
        raise NetConfigError(
            "payload_per_packet", payload_per_packet,
            f"payload_per_packet must be >= 1, got {payload_per_packet}",
        )
    return [
        ScriptPacket.make(i, blob[start : start + payload_per_packet])
        for i, start in enumerate(range(0, len(blob), payload_per_packet))
    ]


@dataclass
class NodeUpdateState:
    """The update lifecycle of one sensor node.

    States: ``idle`` → ``receiving`` → ``staged`` → ``applying`` →
    ``committed``, with ``down`` overlaid while crashed.  Only the
    transition into ``committed`` changes the running version.
    """

    node: int
    version: int
    apply_rounds: int = APPLY_ROUNDS
    alive: bool = True
    state: str = "idle"
    committed: bool = False
    bank: dict[int, bytes] = field(default_factory=dict)
    crc_rejections: int = 0
    duplicates: int = 0
    #: what neighbours believe this node misses (updated on NACK)
    advertised_missing: set[int] = field(default_factory=set)
    _apply_left: int = 0
    _nack_interval: int = 1
    _next_nack_round: int = 1

    # -- packet intake --------------------------------------------------

    def receive(self, packet: ScriptPacket, expected_count: int) -> str:
        """Take one delivery; returns ``"accepted"``, ``"duplicate"``,
        ``"corrupt"``, or ``"ignored"`` (dead or already committed)."""
        if not self.alive or self.committed:
            return "ignored"
        if packet_crc(packet.index, packet.payload) != packet.crc:
            self.crc_rejections += 1
            return "corrupt"
        if packet.index in self.bank:
            self.duplicates += 1
            return "duplicate"
        self.bank[packet.index] = packet.payload
        self.advertised_missing.discard(packet.index)
        self.state = "receiving"
        if len(self.bank) == expected_count:
            self.state = "staged"
            self._apply_left = self.apply_rounds
        return "accepted"

    def missing_count(self, expected_count: int) -> int:
        return expected_count - len(self.bank)

    def holds_all(self, expected_count: int) -> bool:
        return len(self.bank) >= expected_count

    def assembled_blob(self) -> bytes:
        """The staged script, in packet order."""
        return b"".join(self.bank[i] for i in sorted(self.bank))

    # -- crash-consistent apply ----------------------------------------

    def tick_apply(self, new_version: int) -> bool:
        """Advance the inactive-bank write by one round; returns True on
        the round the boot pointer flips (the commit point)."""
        if not self.alive or self.committed or self.state not in (
            "staged",
            "applying",
        ):
            return False
        self.state = "applying"
        self._apply_left -= 1
        if self._apply_left > 0:
            return False
        # Boot-pointer flip: atomic, after full verification.
        self.committed = True
        self.version = new_version
        self.state = "committed"
        self.advertised_missing.clear()
        return True

    # -- crash / reboot -------------------------------------------------

    def crash(self) -> None:
        """Power loss.  Volatile staging state is gone; the boot pointer
        is untouched, so the resident image stays whichever bank was
        last committed (golden until the flip, new after)."""
        self.alive = False
        if not self.committed:
            # Mid-patch crash: discard the staging bank and the
            # half-written inactive bank.  Rollback is implicit — the
            # boot pointer never moved.
            self.bank.clear()
            self.advertised_missing.clear()
            self._apply_left = 0
            self.state = "down"

    def reboot(self, round_no: int) -> None:
        """Power restored; the node boots whichever image the boot
        pointer targets and re-syncs from scratch if uncommitted."""
        self.alive = True
        self.state = "committed" if self.committed else "idle"
        self._nack_interval = 1
        self._next_nack_round = round_no

    # -- NACK backoff ---------------------------------------------------

    def should_nack(self, round_no: int, expected_count: int) -> bool:
        if not self.alive or self.committed:
            return False
        if self.holds_all(expected_count):
            return False
        return round_no >= self._next_nack_round

    def note_nack(self, round_no: int, expected_count: int) -> None:
        """The node NACKed this round: re-advertise its missing set and
        schedule the next NACK."""
        self.advertised_missing = {
            i for i in range(expected_count) if i not in self.bank
        }
        self._next_nack_round = round_no + self._nack_interval

    def note_round(self, made_progress: bool) -> None:
        """Feed the backoff: progress resets the interval, a dry round
        doubles it (capped)."""
        if made_progress:
            self._nack_interval = 1
        else:
            self._nack_interval = min(MAX_NACK_INTERVAL, self._nack_interval * 2)


__all__ = [
    "APPLY_ROUNDS",
    "CRC_BYTES",
    "MAX_NACK_INTERVAL",
    "NodeUpdateState",
    "ScriptPacket",
    "packet_crc",
    "packetise_blob",
]
