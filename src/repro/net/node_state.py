"""Per-node OTA update state machine (staging bank + two-bank commit).

Each simulated sensor assembles the incoming update script into a
*staging bank*, one CRC-checked packet at a time, then applies it with
the crash-consistency discipline energy-aware OTA work prescribes for
flash devices: the new image is written to the inactive bank over
several rounds and the boot pointer flips **only after** the whole
staged script has been verified.  A crash at any point before the flip
leaves the node running the resident golden image; a crash after the
flip leaves it on the fully verified new one.  A torn binary is never
bootable by construction — the invariant the campaign layer's
differential oracle checks against the simulator.

The state machine also owns the node's NACK backoff (exponential,
capped) and its *advertised* missing set: neighbours only learn what a
node misses in rounds the node actually NACKs, which is what makes
backoff meaningful and is how a rebooted or late node re-syncs — its
first NACK re-advertises everything.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from .errors import NetConfigError

#: Rounds a complete, verified staging bank takes to write to the
#: inactive flash bank before the boot-pointer flip (the window in
#: which a crash must roll back to the golden image).
APPLY_ROUNDS = 2

#: Ceiling of the exponential NACK backoff, in rounds.
MAX_NACK_INTERVAL = 8

#: Bytes of one packet's CRC trailer on the wire.
CRC_BYTES = 4


def packet_crc(index: int, payload: bytes) -> int:
    """Per-packet integrity check covering the index and the payload."""
    return zlib.crc32(index.to_bytes(4, "little") + payload) & 0xFFFFFFFF


@dataclass(frozen=True)
class ScriptPacket:
    """One wire packet of the update script."""

    index: int
    payload: bytes
    crc: int

    @staticmethod
    def make(index: int, payload: bytes) -> "ScriptPacket":
        return ScriptPacket(
            index=index, payload=payload, crc=packet_crc(index, payload)
        )

    def corrupted(self, flip_at: int) -> "ScriptPacket":
        """This packet with one payload byte bit-flipped in flight (the
        CRC field still describes the original payload)."""
        if not self.payload:
            return ScriptPacket(index=self.index, payload=b"", crc=self.crc ^ 1)
        at = flip_at % len(self.payload)
        mutated = bytearray(self.payload)
        mutated[at] ^= 0xFF
        return ScriptPacket(index=self.index, payload=bytes(mutated), crc=self.crc)


def packetise_blob(blob: bytes, payload_per_packet: int) -> list[ScriptPacket]:
    """Split the wire blob into CRC-trailed script packets."""
    if payload_per_packet < 1:
        raise NetConfigError(
            "payload_per_packet", payload_per_packet,
            f"payload_per_packet must be >= 1, got {payload_per_packet}",
        )
    return [
        ScriptPacket.make(i, blob[start : start + payload_per_packet])
        for i, start in enumerate(range(0, len(blob), payload_per_packet))
    ]


@dataclass
class NodeUpdateState:
    """The update lifecycle of one sensor node.

    States: ``idle`` → ``receiving`` → ``staged`` → ``applying`` →
    ``committed``, with ``down`` overlaid while crashed.  Only the
    transition into ``committed`` changes the running version.
    """

    node: int
    version: int
    apply_rounds: int = APPLY_ROUNDS
    alive: bool = True
    state: str = "idle"
    committed: bool = False
    bank: dict[int, bytes] = field(default_factory=dict)
    crc_rejections: int = 0
    duplicates: int = 0
    #: what neighbours believe this node misses (updated on NACK)
    advertised_missing: set[int] = field(default_factory=set)
    #: page-granular apply checkpoint (nonvolatile: survives brownouts);
    #: ``pages_total == 0`` means the legacy whole-rounds apply is in use
    pages_total: int = 0
    pages_done: int = 0
    brownouts: int = 0
    resumed_applies: int = 0
    _apply_left: int = 0
    _nack_interval: int = 1
    _next_nack_round: int = 1

    # -- packet intake --------------------------------------------------

    def receive(self, packet: ScriptPacket, expected_count: int) -> str:
        """Take one delivery; returns ``"accepted"``, ``"duplicate"``,
        ``"corrupt"``, or ``"ignored"`` (dead or already committed)."""
        if not self.alive or self.committed:
            return "ignored"
        if packet_crc(packet.index, packet.payload) != packet.crc:
            self.crc_rejections += 1
            return "corrupt"
        if packet.index in self.bank:
            self.duplicates += 1
            return "duplicate"
        self.bank[packet.index] = packet.payload
        self.advertised_missing.discard(packet.index)
        self.state = "receiving"
        if len(self.bank) == expected_count:
            self.state = "staged"
            self._apply_left = self.apply_rounds
        return "accepted"

    def missing_count(self, expected_count: int) -> int:
        return expected_count - len(self.bank)

    def holds_all(self, expected_count: int) -> bool:
        return len(self.bank) >= expected_count

    def assembled_blob(self) -> bytes:
        """The staged script, in packet order."""
        return b"".join(self.bank[i] for i in sorted(self.bank))

    # -- crash-consistent apply ----------------------------------------

    def tick_apply(self, new_version: int) -> bool:
        """Advance the inactive-bank write by one round; returns True on
        the round the boot pointer flips (the commit point)."""
        if not self.alive or self.committed or self.state not in (
            "staged",
            "applying",
        ):
            return False
        self.state = "applying"
        self._apply_left -= 1
        if self._apply_left > 0:
            return False
        # Boot-pointer flip: atomic, after full verification.
        self.committed = True
        self.version = new_version
        self.state = "committed"
        self.advertised_missing.clear()
        return True

    # -- page-granular checkpointed apply -------------------------------
    #
    # Under an energy-limited device profile the inactive-bank write is
    # page-wise: each flash page costs real energy and a brownout can
    # land between any two page writes.  ``pages_done`` is the
    # *nonvolatile* checkpoint — flash already programmed survives power
    # loss — so a resumed node continues from its last completed page
    # instead of restarting, while the boot pointer still only flips in
    # :meth:`commit_pages` after every page is down and the staged blob
    # verified.  Rollback to the golden image stays the fallback: until
    # the flip, the resident image is untouched.

    def begin_pages(self, pages_total: int) -> None:
        """Start (or resume) a page-wise apply pass of ``pages_total``
        pages.  Counts a resume when a brownout checkpoint is present."""
        if pages_total < 1:
            raise NetConfigError(
                "pages_total", pages_total,
                f"pages_total must be >= 1, got {pages_total}",
            )
        if not self.alive or self.committed or self.state != "staged":
            return
        if self.pages_total not in (0, pages_total):
            raise NetConfigError(
                "pages_total", pages_total,
                f"page plan changed mid-apply: checkpoint says "
                f"{self.pages_total} pages, caller says {pages_total}",
            )
        self.pages_total = pages_total
        if self.pages_done:
            # Flash written before the brownout is still valid: resume
            # from the checkpoint rather than erasing and restarting.
            self.resumed_applies += 1
        self.state = "applying"

    def write_page(self) -> bool:
        """Program one flash page of the inactive bank; returns True when
        every page has been written (commit becomes legal)."""
        if not self.alive or self.committed or self.state != "applying":
            return False
        if self.pages_done < self.pages_total:
            self.pages_done += 1
        return self.pages_done >= self.pages_total

    def commit_pages(self, new_version: int) -> bool:
        """Boot-pointer flip for the page-wise apply: atomic, legal only
        once every page is programmed.  Returns True on the flip."""
        if not self.alive or self.committed or self.state != "applying":
            return False
        if self.pages_done < self.pages_total or self.pages_total == 0:
            return False
        self.committed = True
        self.version = new_version
        self.state = "committed"
        self.advertised_missing.clear()
        return True

    # -- crash / reboot -------------------------------------------------

    def crash(self) -> None:
        """Power loss.  Volatile staging state is gone; the boot pointer
        is untouched, so the resident image stays whichever bank was
        last committed (golden until the flip, new after)."""
        self.alive = False
        if not self.committed:
            # Mid-patch crash: discard the staging bank and the
            # half-written inactive bank.  Rollback is implicit — the
            # boot pointer never moved.
            self.bank.clear()
            self.advertised_missing.clear()
            self._apply_left = 0
            self.state = "down"

    def brownout(self) -> None:
        """Stored energy hit zero (or a scripted power cut fired) —
        possibly between two flash page writes.  Volatile staging state
        is lost exactly as in :meth:`crash`, but the nonvolatile page
        checkpoint (``pages_done``) and the committed bank survive, so a
        later :meth:`resume` continues the apply from the last completed
        page instead of restarting it."""
        self.brownouts += 1
        self.crash()

    def reboot(self, round_no: int) -> None:
        """Power restored; the node boots whichever image the boot
        pointer targets and re-syncs from scratch if uncommitted."""
        self.alive = True
        self.state = "committed" if self.committed else "idle"
        self._nack_interval = 1
        self._next_nack_round = round_no

    def resume(self, round_no: int) -> None:
        """Capacitor recharged after a brownout: boot the resident image
        (golden until the flip, new after) and re-sync.  Re-received
        packets refill the volatile bank; the page checkpoint makes the
        next apply pass a resume."""
        self.reboot(round_no)

    # -- NACK backoff ---------------------------------------------------

    def should_nack(self, round_no: int, expected_count: int) -> bool:
        if not self.alive or self.committed:
            return False
        if self.holds_all(expected_count):
            return False
        return round_no >= self._next_nack_round

    def note_nack(self, round_no: int, expected_count: int) -> None:
        """The node NACKed this round: re-advertise its missing set and
        schedule the next NACK."""
        self.advertised_missing = {
            i for i in range(expected_count) if i not in self.bank
        }
        self._next_nack_round = round_no + self._nack_interval

    def note_round(self, made_progress: bool) -> None:
        """Feed the backoff: progress resets the interval, a dry round
        doubles it (capped)."""
        if made_progress:
            self._nack_interval = 1
        else:
            self._nack_interval = min(MAX_NACK_INTERVAL, self._nack_interval * 2)


__all__ = [
    "APPLY_ROUNDS",
    "CRC_BYTES",
    "MAX_NACK_INTERVAL",
    "NodeUpdateState",
    "ScriptPacket",
    "packet_crc",
    "packetise_blob",
]
