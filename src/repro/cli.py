"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``compile FILE``
    Compile a ucc-C source file; print size stats or a disassembly.

``run FILE``
    Compile and simulate; print cycles and device activity.

``update OLD NEW``
    Plan an OTA update from OLD to NEW under a chosen strategy; print
    the paper's metrics (Diff_inst, script bytes, packets) and
    optionally the edit script.

``case ID``
    Replay one of the paper's update cases (1-13, D1, D2) under both
    strategies and print the comparison.

``verify OLD NEW`` / ``verify --case ID``
    Plan an update and run every static verification pass
    (:mod:`repro.analysis`) over the products; print the per-pass
    report and exit non-zero when any pass fails.

``fuzz --seed N --iters K``
    Run a deterministic end-to-end update fuzzing campaign
    (:mod:`repro.fuzz`): random programs, semantic edits, differential
    oracles; shrunk failing reproducers land in the corpus directory
    and the exit status is non-zero when any oracle failed.

``profile OLD NEW`` / ``profile --case ID``
    Run one traced end-to-end update (compile, plan, disseminate,
    simulate) and print a per-phase wall-time/energy breakdown plus the
    run's metric deltas (:mod:`repro.obs`); ``--trace FILE`` dumps a
    chrome://tracing-loadable JSON, ``--jsonl FILE`` the raw span
    events.  The span and metric vocabulary is documented in
    ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import sys

from .core import compile_source, measure_cycles, plan_update
from .sim import DeviceBoard, Simulator, Timer
from .workloads import CASES


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_compile(args) -> int:
    program = compile_source(
        _read(args.file), register_allocator=args.ra, optimize=not args.no_opt
    )
    print(f"{args.file}: {program.instruction_count} instructions, "
          f"{program.size_words} words code, "
          f"{len(program.image.data)} bytes data")
    if args.disasm:
        print(program.disassemble())
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(program.image.to_bytes())
        print(f"wrote {args.output}")
    return 0


def cmd_run(args) -> int:
    program = compile_source(_read(args.file), register_allocator=args.ra)
    board = DeviceBoard(timer=Timer(period_cycles=args.timer))
    sim = Simulator(program.image, devices=board, collect_profile=args.profile)
    result = sim.run(max_cycles=args.max_cycles)
    status = "halted" if result.halted else "cycle budget exhausted"
    print(f"{status} after {result.cycles} cycles "
          f"({result.instructions} instructions)")
    print(f"LED writes   : {board.led.writes[:16]}"
          f"{' ...' if len(board.led.writes) > 16 else ''}")
    print(f"radio packets: {board.radio.sent[:16]}"
          f"{' ...' if len(board.radio.sent) > 16 else ''}")
    print(f"timer fires  : {board.timer.fires}")
    if args.profile:
        hot = sorted(result.profile.items(), key=lambda kv: -kv[1])[:8]
        print("hottest sites (function, IR index, executions):")
        for (fn, ir_index), count in hot:
            print(f"  {fn}:{ir_index}  x{count}")
    return 0


def cmd_update(args) -> int:
    old = compile_source(_read(args.old), register_allocator=args.baseline_ra)
    result = plan_update(old, _read(args.new), ra=args.ra, da=args.da)
    print(f"strategy      : ra={result.ra_strategy} da={result.da_strategy} "
          f"cp={result.new.placement.algorithm}")
    print(f"old binary    : {result.diff.old_instructions} instructions")
    print(f"new binary    : {result.diff.new_instructions} instructions")
    print(f"Diff_inst     : {result.diff_inst}")
    print(f"reused        : {result.reused_instructions}")
    print(f"script        : {result.script_bytes} bytes "
          f"(code {result.code_script_bytes} + data {result.data_script_bytes})")
    print(f"packets       : {result.packets.packet_count} "
          f"({result.packets.bytes_on_air} bytes on air)")
    if args.cycles:
        measure_cycles(result)
        print(f"Diff_cycle    : {result.diff_cycle}")
    if args.script:
        print("edit script:")
        for line in result.diff.script.render().splitlines():
            print("  " + line)
    return 0


def cmd_case(args) -> int:
    case = CASES.get(args.id)
    if case is None:
        print(f"unknown case {args.id!r}; available: {', '.join(CASES)}",
              file=sys.stderr)
        return 2
    print(f"case {case.case_id} ({case.level}, {case.program}): "
          f"{case.description}")
    old = compile_source(case.old_source)
    for ra, da in (("gcc", "gcc"), ("ucc", "ucc")):
        result = plan_update(old, case.new_source, ra=ra, da=da)
        print(f"  {ra}/{da}: Diff_inst={result.diff_inst:3d}  "
              f"script={result.script_bytes:4d} B  "
              f"packets={result.packets.packet_count}")
    return 0


def cmd_verify(args) -> int:
    from .analysis import verify_update

    if args.case:
        case = CASES.get(args.case)
        if case is None:
            print(f"unknown case {args.case!r}; available: {', '.join(CASES)}",
                  file=sys.stderr)
            return 2
        old_source, new_source = case.old_source, case.new_source
        label = f"case {case.case_id}"
    elif args.old and args.new:
        old_source, new_source = _read(args.old), _read(args.new)
        label = f"{args.old} -> {args.new}"
    else:
        print("verify needs OLD NEW files or --case ID", file=sys.stderr)
        return 2

    old = compile_source(old_source, register_allocator=args.baseline_ra)
    result = plan_update(old, new_source, ra=args.ra, da=args.da)
    report = verify_update(result)
    print(f"verify {label} (ra={args.ra} da={args.da})")
    print(report.render())
    return 0 if report.ok else 1


def cmd_fuzz(args) -> int:
    from .fuzz import GenConfig, run_fuzz

    config = GenConfig(
        max_funcs=args.max_funcs,
        scheduler_iters=args.scheduler_iters,
    )

    def on_progress(iteration, verdict):
        if args.quiet:
            return
        if not verdict.ok:
            print(f"iteration {iteration}: {verdict.summary()}")
        elif (iteration + 1) % 25 == 0:
            print(f"... {iteration + 1}/{args.iters} iterations")

    report = run_fuzz(
        seed=args.seed,
        iters=args.iters,
        max_edits=args.max_edits,
        corpus_dir=args.corpus,
        ra=args.ra,
        da=args.da,
        config=config,
        on_progress=on_progress,
        shrink_findings=not args.no_shrink,
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_profile(args) -> int:
    # Lazy: repro.obs.profile imports the whole pipeline.
    from .obs.profile import profile_update

    if args.case:
        case = CASES.get(args.case)
        if case is None:
            print(f"unknown case {args.case!r}; available: {', '.join(CASES)}",
                  file=sys.stderr)
            return 2
        old_source, new_source = case.old_source, case.new_source
        label = f"case {case.case_id}"
    elif args.old and args.new:
        old_source, new_source = _read(args.old), _read(args.new)
        label = f"{args.old} -> {args.new}"
    else:
        print("profile needs OLD NEW files or --case ID", file=sys.stderr)
        return 2

    report = profile_update(
        old_source,
        new_source,
        ra=args.ra,
        da=args.da,
        grid_side=args.grid,
        loss=args.loss,
        simulate=not args.no_sim,
        label=label,
    )
    print(report.render())
    if args.trace:
        report.write_chrome_trace(args.trace)
        print(f"\nwrote Chrome trace to {args.trace} "
              "(load via chrome://tracing or https://ui.perfetto.dev)")
    if args.jsonl:
        report.write_jsonl(args.jsonl)
        print(f"wrote span events to {args.jsonl}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UCC (PLDI 2007) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a ucc-C file")
    p_compile.add_argument("file")
    p_compile.add_argument("--ra", default="gcc", choices=["gcc", "linear"])
    p_compile.add_argument("--no-opt", action="store_true")
    p_compile.add_argument("--disasm", action="store_true")
    p_compile.add_argument("-o", "--output")
    p_compile.set_defaults(func=cmd_compile)

    p_run = sub.add_parser("run", help="compile and simulate")
    p_run.add_argument("file")
    p_run.add_argument("--ra", default="gcc", choices=["gcc", "linear"])
    p_run.add_argument("--timer", type=int, default=500)
    p_run.add_argument("--max-cycles", type=int, default=5_000_000)
    p_run.add_argument("--profile", action="store_true")
    p_run.set_defaults(func=cmd_run)

    p_update = sub.add_parser("update", help="plan an OTA update")
    p_update.add_argument("old")
    p_update.add_argument("new")
    p_update.add_argument("--ra", default="ucc",
                          choices=["ucc", "ucc-ilp", "gcc", "linear"])
    p_update.add_argument("--da", default="ucc", choices=["ucc", "gcc"])
    p_update.add_argument("--baseline-ra", default="gcc",
                          choices=["gcc", "linear"])
    p_update.add_argument("--cycles", action="store_true",
                          help="simulate both versions for Diff_cycle")
    p_update.add_argument("--script", action="store_true",
                          help="print the edit script")
    p_update.set_defaults(func=cmd_update)

    p_case = sub.add_parser("case", help="replay a paper update case")
    p_case.add_argument("id")
    p_case.set_defaults(func=cmd_case)

    p_verify = sub.add_parser(
        "verify", help="statically verify a planned update"
    )
    p_verify.add_argument("old", nargs="?")
    p_verify.add_argument("new", nargs="?")
    p_verify.add_argument("--case", help="verify a paper case instead of files")
    p_verify.add_argument("--ra", default="ucc",
                          choices=["ucc", "ucc-ilp", "gcc", "linear"])
    p_verify.add_argument("--da", default="ucc", choices=["ucc", "gcc"])
    p_verify.add_argument("--baseline-ra", default="gcc",
                          choices=["gcc", "linear"])
    p_verify.set_defaults(func=cmd_verify)

    p_fuzz = sub.add_parser(
        "fuzz", help="run the end-to-end update fuzzing campaign"
    )
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--iters", type=int, default=100)
    p_fuzz.add_argument("--max-edits", type=int, default=3,
                        help="max semantic edits per generated pair")
    p_fuzz.add_argument("--corpus", default=None,
                        help="directory for shrunk failing reproducers")
    p_fuzz.add_argument("--ra", default="ucc",
                        choices=["ucc", "ucc-ilp", "gcc", "linear"])
    p_fuzz.add_argument("--da", default="ucc", choices=["ucc", "gcc"])
    p_fuzz.add_argument("--max-funcs", type=int, default=3,
                        help="max helper functions per generated program")
    p_fuzz.add_argument("--scheduler-iters", type=int, default=24,
                        help="iterations of main's scheduler loop")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging of failing cases")
    p_fuzz.add_argument("--quiet", action="store_true")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_profile = sub.add_parser(
        "profile", help="trace one end-to-end update and print a "
                        "per-phase time/energy breakdown"
    )
    p_profile.add_argument("old", nargs="?")
    p_profile.add_argument("new", nargs="?")
    p_profile.add_argument("--case", help="profile a paper case instead of files")
    p_profile.add_argument("--ra", default="ucc",
                           choices=["ucc", "ucc-ilp", "gcc", "linear"])
    p_profile.add_argument("--da", default="ucc", choices=["ucc", "gcc"])
    p_profile.add_argument("--grid", type=int, default=4,
                           help="dissemination grid side (NxN nodes)")
    p_profile.add_argument("--loss", type=float, default=0.0,
                           help="per-link loss probability (lossy flood)")
    p_profile.add_argument("--no-sim", action="store_true",
                           help="skip the Diff_cycle simulation runs")
    p_profile.add_argument("--trace", metavar="FILE",
                           help="write chrome://tracing JSON here")
    p_profile.add_argument("--jsonl", metavar="FILE",
                           help="write raw span events (JSONL) here")
    p_profile.set_defaults(func=cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
