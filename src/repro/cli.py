"""Command-line interface: ``python -m repro <command>``.

Every planning command speaks the same strategy flags — ``--ra``
(``ucc``/``ucc-ilp``/``gcc``/``linear``, default ``ucc``), ``--da``
(``ucc``/``gcc``, default ``ucc``), ``--cp`` (``auto``/``ucc``/``gcc``,
default: strategy-dependent), ``--checked`` — which map one-to-one onto
:class:`repro.UpdateConfig` (see ``docs/API.md``).

Commands
--------

``compile FILE``
    Compile a ucc-C source file; print size stats or a disassembly.

``run FILE``
    Compile and simulate; print cycles and device activity.

``update OLD NEW``
    Plan an OTA update from OLD to NEW under a chosen strategy; print
    the paper's metrics (Diff_inst, script bytes, packets) and
    optionally the edit script.

``case ID``
    Replay one of the paper's update cases (1-13, D1, D2): the gcc/gcc
    baseline against the selected strategy, side by side.

``batch JOBS.json``
    Plan a whole fleet of updates through
    :class:`repro.service.FleetUpdateService` — content-addressed
    caching, process-parallel execution, deterministic job order.

``verify OLD NEW`` / ``verify --case ID``
    Plan an update and run every static verification pass
    (:mod:`repro.analysis`) over the products; print the per-pass
    report and exit non-zero when any pass fails.

``fuzz --seed N --iters K``
    Run a deterministic end-to-end update fuzzing campaign
    (:mod:`repro.fuzz`): random programs, semantic edits, differential
    oracles; shrunk failing reproducers land in the corpus directory
    and the exit status is non-zero when any oracle failed.  With
    ``--faults`` the sweep fuzzes *deployments* instead: random fault
    plans (crashes, partitions, corruption) against the campaign
    controller's convergence-or-quarantine oracle.  ``--versioned``
    fuzzes version-heterogeneous fleets: random release histories and
    per-node version assignments through the version-graph planner,
    with the replay-identity oracle on every cohort.

``campaign OLD NEW`` / ``campaign --case ID``
    Drive one fault-tolerant OTA campaign
    (:func:`repro.net.campaign.run_campaign`): scripted node crashes
    (``--crash 4@2:8``), partition windows (``--partition 3-9:7,8``),
    payload corruption and duplicate delivery, or a randomly generated
    plan (``--random-faults``).  Prints the structured
    ``CampaignReport``; exit 0 when the fleet converged, 1 when nodes
    were quarantined (partial outcome).

``profile OLD NEW`` / ``profile --case ID``
    Run one traced end-to-end update (compile, plan, disseminate,
    simulate) and print a per-phase wall-time/energy breakdown plus the
    run's metric deltas (:mod:`repro.obs`); ``--trace FILE`` dumps a
    chrome://tracing-loadable JSON, ``--jsonl FILE`` the raw span
    events.  The span and metric vocabulary is documented in
    ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import sys

from .config import (
    CP_STRATEGIES,
    DA_STRATEGIES,
    RA_BASELINE_NAMES,
    RA_STRATEGIES,
    CompileConfig,
    FleetJob,
    TopologySpec,
    UpdateConfig,
)
from .core import measure_cycles, plan_update
from .core.compiler import Compiler
from .net.profiles import PROFILE_NAMES
from .sim import DeviceBoard, Simulator, Timer
from .workloads import CASES


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _add_strategy_flags(parser, baseline: bool = True) -> None:
    """The unified ``--ra/--da/--cp/--checked`` strategy flags.

    Shared by every planning command so spellings, choices, and
    defaults cannot drift between subcommands.
    """
    parser.add_argument(
        "--ra", default="ucc", choices=list(RA_STRATEGIES),
        help="register allocation strategy (default: ucc)",
    )
    parser.add_argument(
        "--da", default="ucc", choices=list(DA_STRATEGIES),
        help="data layout strategy (default: ucc)",
    )
    parser.add_argument(
        "--cp", default=None, choices=list(CP_STRATEGIES),
        help="code placement (default: auto for ucc strategies, gcc otherwise)",
    )
    parser.add_argument(
        "--checked", action="store_true",
        help="run the checked pipeline (verify after every phase)",
    )
    if baseline:
        parser.add_argument(
            "--baseline-ra", default="gcc", choices=list(RA_BASELINE_NAMES),
            help="allocator of the deployed old binary (default: gcc)",
        )


def _update_config(args) -> UpdateConfig:
    return UpdateConfig(
        ra=args.ra,
        da=args.da,
        cp=args.cp,
        checked=True if args.checked else None,
    )


def _compile_config(args, ra: str) -> CompileConfig:
    return CompileConfig.of(ra=ra, checked=args.checked)


def cmd_compile(args) -> int:
    config = CompileConfig.of(
        ra=args.ra, optimize=not args.no_opt, checked=args.checked
    )
    program = Compiler(config.to_options()).compile(_read(args.file))
    print(f"{args.file}: {program.instruction_count} instructions, "
          f"{program.size_words} words code, "
          f"{len(program.image.data)} bytes data")
    if args.disasm:
        print(program.disassemble())
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(program.image.to_bytes())
        print(f"wrote {args.output}")
    return 0


def cmd_run(args) -> int:
    config = CompileConfig.of(ra=args.ra, checked=args.checked)
    program = Compiler(config.to_options()).compile(_read(args.file))
    board = DeviceBoard(timer=Timer(period_cycles=args.timer))
    sim = Simulator(program.image, devices=board, collect_profile=args.profile)
    result = sim.run(max_cycles=args.max_cycles)
    status = "halted" if result.halted else "cycle budget exhausted"
    print(f"{status} after {result.cycles} cycles "
          f"({result.instructions} instructions)")
    print(f"LED writes   : {board.led.writes[:16]}"
          f"{' ...' if len(board.led.writes) > 16 else ''}")
    print(f"radio packets: {board.radio.sent[:16]}"
          f"{' ...' if len(board.radio.sent) > 16 else ''}")
    print(f"timer fires  : {board.timer.fires}")
    if args.profile:
        hot = sorted(result.profile.items(), key=lambda kv: -kv[1])[:8]
        print("hottest sites (function, IR index, executions):")
        for (fn, ir_index), count in hot:
            print(f"  {fn}:{ir_index}  x{count}")
    return 0


def cmd_update(args) -> int:
    compile_config = _compile_config(args, args.baseline_ra)
    old = Compiler(compile_config.to_options()).compile(_read(args.old))
    result = plan_update(old, _read(args.new), config=_update_config(args))
    print(f"strategy      : ra={result.ra_strategy} da={result.da_strategy} "
          f"cp={result.new.placement.algorithm}")
    print(f"old binary    : {result.diff.old_instructions} instructions")
    print(f"new binary    : {result.diff.new_instructions} instructions")
    print(f"Diff_inst     : {result.diff_inst}")
    print(f"reused        : {result.reused_instructions}")
    print(f"script        : {result.script_bytes} bytes "
          f"(code {result.code_script_bytes} + data {result.data_script_bytes})")
    print(f"packets       : {result.packets.packet_count} "
          f"({result.packets.bytes_on_air} bytes on air)")
    if args.cycles:
        measure_cycles(result)
        print(f"Diff_cycle    : {result.diff_cycle}")
    if args.script:
        print("edit script:")
        for line in result.diff.script.render().splitlines():
            print("  " + line)
    return 0


def cmd_case(args) -> int:
    case = CASES.get(args.id)
    if case is None:
        print(f"unknown case {args.id!r}; available: {', '.join(CASES)}",
              file=sys.stderr)
        return 2
    print(f"case {case.case_id} ({case.level}, {case.program}): "
          f"{case.description}")
    compile_config = _compile_config(args, args.baseline_ra)
    old = Compiler(compile_config.to_options()).compile(case.old_source)
    chosen = _update_config(args)
    for config in (UpdateConfig(ra="gcc", da="gcc"), chosen):
        result = plan_update(old, case.new_source, config=config)
        print(f"  {config.ra}/{config.da}: Diff_inst={result.diff_inst:3d}  "
              f"script={result.script_bytes:4d} B  "
              f"packets={result.packets.packet_count}")
    return 0


def _job_from_spec(spec: dict, index: int) -> FleetJob:
    """One batch-file entry → a :class:`repro.FleetJob`.

    Entries name either a paper case (``{"case": "6"}``) or a pair of
    source files (``{"old": ..., "new": ...}``); strategy keys mirror
    the CLI flags (``ra``/``da``/``cp``/``checked``/``baseline_ra``),
    ``grid``/``loss``/``cycles`` add dissemination and simulation.
    """
    if "case" in spec:
        case = CASES.get(str(spec["case"]))
        if case is None:
            raise ValueError(
                f"job {index}: unknown case {spec['case']!r}; "
                f"available: {', '.join(CASES)}"
            )
        old_source, new_source = case.old_source, case.new_source
        default_id = f"case{case.case_id}"
    elif "old" in spec and "new" in spec:
        old_source, new_source = _read(spec["old"]), _read(spec["new"])
        default_id = f"job{index}"
    else:
        raise ValueError(
            f"job {index}: needs either a \"case\" id or \"old\"/\"new\" files"
        )
    checked = spec.get("checked")
    update = UpdateConfig(
        ra=spec.get("ra", "ucc"),
        da=spec.get("da", "ucc"),
        cp=spec.get("cp"),
        checked=checked,
    )
    compile_config = CompileConfig.of(
        ra=spec.get("baseline_ra", "gcc"), checked=bool(checked)
    )
    topology = None
    if "grid" in spec:
        width, height = spec["grid"]
        topology = TopologySpec.grid(int(width), int(height))
    return FleetJob(
        old_source=old_source,
        new_source=new_source,
        compile=compile_config,
        update=update,
        topology=topology,
        loss=float(spec.get("loss", 0.0)),
        loss_seed=int(spec.get("loss_seed", 1)),
        measure_cycles=bool(spec.get("cycles", False)),
        job_id=str(spec.get("id", default_id)),
    )


def cmd_batch(args) -> int:
    import json

    from .service import FleetUpdateService

    with open(args.jobs, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, list):
        specs, defaults = document, {}
    else:
        specs, defaults = document.get("jobs", []), document
    if not specs:
        print(f"{args.jobs}: no jobs found", file=sys.stderr)
        return 2
    try:
        jobs = [_job_from_spec(spec, index) for index, spec in enumerate(specs)]
    except (KeyError, TypeError, ValueError) as error:
        print(f"{args.jobs}: {error}", file=sys.stderr)
        return 2

    workers = args.workers or defaults.get("workers")
    service = FleetUpdateService(
        workers=1 if args.serial else workers,
        timeout_s=args.timeout,
        retries=args.retries,
        use_processes=not args.serial,
    )
    result = service.run(jobs)
    if args.repeat > 1:
        for _ in range(args.repeat - 1):
            result = service.run(jobs)
    print(result.render())
    return 0 if result.ok else 1


def cmd_verify(args) -> int:
    from .analysis import verify_update

    if args.case:
        case = CASES.get(args.case)
        if case is None:
            print(f"unknown case {args.case!r}; available: {', '.join(CASES)}",
                  file=sys.stderr)
            return 2
        old_source, new_source = case.old_source, case.new_source
        label = f"case {case.case_id}"
    elif args.old and args.new:
        old_source, new_source = _read(args.old), _read(args.new)
        label = f"{args.old} -> {args.new}"
    else:
        print("verify needs OLD NEW files or --case ID", file=sys.stderr)
        return 2

    compile_config = _compile_config(args, args.baseline_ra)
    old = Compiler(compile_config.to_options()).compile(old_source)
    result = plan_update(old, new_source, config=_update_config(args))
    report = verify_update(result)
    print(f"verify {label} (ra={args.ra} da={args.da})")
    print(report.render())
    return 0 if report.ok else 1


def _parse_crash(text: str):
    """``node@round`` or ``node@round:reboot`` → :class:`NodeCrash`."""
    from .net.faults import NodeCrash

    try:
        node_part, when = text.split("@", 1)
        if ":" in when:
            round_part, reboot_part = when.split(":", 1)
            reboot = int(reboot_part)
        else:
            round_part, reboot = when, None
        return NodeCrash(
            node=int(node_part), round=int(round_part), reboot_round=reboot
        )
    except (ValueError, TypeError) as error:
        raise ValueError(
            f"bad --crash {text!r} (want node@round or node@round:reboot): "
            f"{error}"
        ) from None


def _parse_partition(text: str):
    """``start-end:n1,n2,...`` → :class:`PartitionWindow`."""
    from .net.faults import PartitionWindow

    try:
        window, nodes_part = text.split(":", 1)
        start_part, end_part = window.split("-", 1)
        nodes = tuple(int(n) for n in nodes_part.split(",") if n)
        return PartitionWindow(
            start=int(start_part), end=int(end_part), nodes=nodes
        )
    except (ValueError, TypeError) as error:
        raise ValueError(
            f"bad --partition {text!r} (want start-end:n1,n2,...): {error}"
        ) from None


def cmd_campaign(args) -> int:
    import random

    from .core.session import UpdateSession
    from .net.faults import FaultPlan, generate_fault_plan
    from .net.profiles import get_profile
    from .net.topology import grid

    if args.case:
        case = CASES.get(args.case)
        if case is None:
            print(f"unknown case {args.case!r}; available: {', '.join(CASES)}",
                  file=sys.stderr)
            return 2
        old_source, new_source = case.old_source, case.new_source
        label = f"case {case.case_id}"
    elif args.old and args.new:
        old_source, new_source = _read(args.old), _read(args.new)
        label = f"{args.old} -> {args.new}"
    else:
        print("campaign needs OLD NEW files or --case ID", file=sys.stderr)
        return 2

    topology = grid(args.grid, args.grid)
    try:
        if args.random_faults:
            rng = random.Random(f"repro-campaign-cli:{args.fault_seed}")
            plan = generate_fault_plan(
                rng,
                topology.node_count,
                max_rounds=args.rounds,
                intensity=args.intensity,
            )
        else:
            plan = FaultPlan(
                crashes=tuple(_parse_crash(text) for text in args.crash),
                partitions=tuple(
                    _parse_partition(text) for text in args.partition
                ),
                corrupt_prob=args.corrupt,
                duplicate_prob=args.duplicate,
                seed=args.fault_seed,
            )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2

    from_version = args.from_version
    to_version = (
        args.to_version if args.to_version is not None else from_version + 1
    )
    if to_version <= from_version:
        print(f"--to-version {to_version} must exceed --from-version "
              f"{from_version}", file=sys.stderr)
        return 2
    coding = _coding_params(args.coding)
    if coding is not None and not _coding_fits_protocol(
        coding, args.protocol
    ):
        print(f"--coding {args.coding} does not fit --protocol "
              f"{args.protocol} (lt rides flood, xor rides "
              f"trickle/gossip)", file=sys.stderr)
        return 2

    compile_config = _compile_config(args, args.baseline_ra)
    old = Compiler(compile_config.to_options()).compile(old_source)
    session = UpdateSession(
        old, topology=topology, loss=args.loss, loss_seed=args.seed,
        config=_update_config(args), version=from_version,
    )
    profile = get_profile(args.profile) if args.profile else None
    result = session.push_campaign(
        {to_version: new_source}, plan=plan, max_rounds=args.rounds,
        protocol=args.protocol, coding=coding, profile=profile,
    )
    print(f"campaign {label} (ra={args.ra} da={args.da}, "
          f"{topology.node_count} nodes, loss={args.loss:g}, "
          f"protocol={args.protocol}, v{from_version} -> v{to_version}"
          + (f", coding={args.coding}" if coding is not None else "")
          + (f", profile={args.profile}" if profile is not None else "")
          + ")")
    print(f"faults   : {plan.describe()}")
    print(result.report.render())
    return 0 if result.converged else 1


def _coding_params(name: str):
    """Map the --coding flag to CodedTransferParams (None for 'none')."""
    if name == "none":
        return None
    from .net.coding import CodedTransferParams

    return CodedTransferParams(scheme=name)


def _coding_fits_protocol(coding, protocol: str) -> bool:
    return (coding.scheme == "lt") == (protocol == "flood")


def cmd_plan_versions(args) -> int:
    from .config import VersionGraphConfig
    from .net.topology import grid
    from .versioning import build_version_graph, plan_cohorts
    from .versioning.planner import predicted_wave_energy_j

    if len(args.sources) < 2:
        print("plan-versions needs at least two release sources",
              file=sys.stderr)
        return 2
    if args.versions:
        try:
            labels = [int(v) for v in args.versions.split(",")]
        except ValueError:
            print(f"bad --versions {args.versions!r} (want e.g. 3,5,7)",
                  file=sys.stderr)
            return 2
        if len(labels) != len(args.sources) or labels != sorted(set(labels)):
            print("--versions must list one strictly-increasing label per "
                  "source", file=sys.stderr)
            return 2
    else:
        labels = list(range(1, len(args.sources) + 1))
    releases = {
        label: _read(path) for label, path in zip(labels, args.sources)
    }

    topology = grid(args.grid, args.grid)
    target = labels[-1]
    fleet = {node: target for node in range(topology.node_count)}
    if args.cohorts:
        try:
            cursor = 1  # node 0 is the sink
            for part in args.cohorts.split(","):
                version_text, count_text = part.split(":")
                version, count = int(version_text), int(count_text)
                for node in range(cursor, cursor + count):
                    fleet[node] = version
                cursor += count
        except (ValueError, KeyError):
            print(f"bad --cohorts {args.cohorts!r} (want v:count,...)",
                  file=sys.stderr)
            return 2
        if cursor > topology.node_count:
            print(f"--cohorts places {cursor - 1} nodes but the grid holds "
                  f"{topology.node_count - 1} sensors", file=sys.stderr)
            return 2
    else:
        for node in range(1, topology.node_count):
            fleet[node] = labels[0]

    config = VersionGraphConfig(loss=args.loss)
    graph = build_version_graph(releases, config=config)
    plans = plan_cohorts(graph, fleet, target)
    print(f"version graph {'-'.join(f'v{v}' for v in labels)} "
          f"-> v{target} over {topology.node_count} nodes "
          f"(loss={args.loss:g})")
    if not plans:
        print("fleet already at the target; nothing to plan")
        return 0
    total = 0.0
    total_full = 0.0
    for plan in plans:
        arrow = "->".join(f"v{v}" for v in plan.path)
        full = graph.full_edge(plan.from_version, plan.to_version)
        full_energy = predicted_wave_energy_j(
            full.script_bytes, node_count=topology.node_count,
            mean_degree=4.0, config=graph.config,
        )
        total += plan.predicted_energy_j
        total_full += full_energy
        print(f"  cohort v{plan.from_version} ({len(plan.nodes)} nodes): "
              f"{plan.strategy} {arrow}, {plan.script_bytes} B, "
              f"predicted {plan.predicted_energy_j:.4f} J "
              f"(full image would cost {full_energy:.4f} J)")
    if total > 0.0:
        print(f"total predicted energy: {total:.4f} J vs "
              f"{total_full:.4f} J full-image "
              f"({total_full / total:.2f}x saving)")
    return 0


def cmd_fuzz(args) -> int:
    from .fuzz import GenConfig, run_fuzz

    if args.faults or args.versioned:
        from .fuzz import run_fault_fuzz, run_versioned_fuzz

        def on_fault_progress(iteration, outcome):
            if args.quiet:
                return
            if (iteration + 1) % 25 == 0:
                print(f"... {iteration + 1}/{args.iters} campaigns")

        if args.versioned:
            if args.profile is not None:
                print("--profile applies to the --faults sweep, not "
                      "--versioned", file=sys.stderr)
                return 2
            fault_report = run_versioned_fuzz(
                seed=args.seed,
                iters=args.iters,
                intensity=args.intensity,
                update_config=_update_config(args),
                on_progress=on_fault_progress,
            )
        else:
            fault_report = run_fault_fuzz(
                seed=args.seed,
                iters=args.iters,
                intensity=args.intensity,
                update_config=_update_config(args),
                on_progress=on_fault_progress,
                profile=args.profile,
            )
        print(fault_report.render())
        return 0 if fault_report.ok else 1

    if args.profile is not None:
        print("--profile needs --faults (the deployment sweep)",
              file=sys.stderr)
        return 2

    config = GenConfig(
        max_funcs=args.max_funcs,
        scheduler_iters=args.scheduler_iters,
    )

    def on_progress(iteration, verdict):
        if args.quiet:
            return
        if not verdict.ok:
            print(f"iteration {iteration}: {verdict.summary()}")
        elif (iteration + 1) % 25 == 0:
            print(f"... {iteration + 1}/{args.iters} iterations")

    report = run_fuzz(
        seed=args.seed,
        iters=args.iters,
        max_edits=args.max_edits,
        corpus_dir=args.corpus,
        config=config,
        on_progress=on_progress,
        shrink_findings=not args.no_shrink,
        update_config=_update_config(args),
    )
    print(report.render())
    return 0 if report.ok else 1


def cmd_profile(args) -> int:
    # Lazy: repro.obs.profile imports the whole pipeline.
    from .obs.profile import profile_update

    if args.case:
        case = CASES.get(args.case)
        if case is None:
            print(f"unknown case {args.case!r}; available: {', '.join(CASES)}",
                  file=sys.stderr)
            return 2
        old_source, new_source = case.old_source, case.new_source
        label = f"case {case.case_id}"
    elif args.old and args.new:
        old_source, new_source = _read(args.old), _read(args.new)
        label = f"{args.old} -> {args.new}"
    else:
        print("profile needs OLD NEW files or --case ID", file=sys.stderr)
        return 2

    report = profile_update(
        old_source,
        new_source,
        grid_side=args.grid,
        loss=args.loss,
        simulate=not args.no_sim,
        label=label,
        config=_update_config(args),
    )
    print(report.render())
    if args.trace:
        report.write_chrome_trace(args.trace)
        print(f"\nwrote Chrome trace to {args.trace} "
              "(load via chrome://tracing or https://ui.perfetto.dev)")
    if args.jsonl:
        report.write_jsonl(args.jsonl)
        print(f"wrote span events to {args.jsonl}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UCC (PLDI 2007) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a ucc-C file")
    p_compile.add_argument("file")
    _add_strategy_flags(p_compile, baseline=False)
    p_compile.add_argument("--no-opt", action="store_true")
    p_compile.add_argument("--disasm", action="store_true")
    p_compile.add_argument("-o", "--output")
    p_compile.set_defaults(func=cmd_compile)

    p_run = sub.add_parser("run", help="compile and simulate")
    p_run.add_argument("file")
    _add_strategy_flags(p_run, baseline=False)
    p_run.add_argument("--timer", type=int, default=500)
    p_run.add_argument("--max-cycles", type=int, default=5_000_000)
    p_run.add_argument("--profile", action="store_true")
    p_run.set_defaults(func=cmd_run)

    p_update = sub.add_parser("update", help="plan an OTA update")
    p_update.add_argument("old")
    p_update.add_argument("new")
    _add_strategy_flags(p_update)
    p_update.add_argument("--cycles", action="store_true",
                          help="simulate both versions for Diff_cycle")
    p_update.add_argument("--script", action="store_true",
                          help="print the edit script")
    p_update.set_defaults(func=cmd_update)

    p_case = sub.add_parser("case", help="replay a paper update case")
    p_case.add_argument("id")
    _add_strategy_flags(p_case)
    p_case.set_defaults(func=cmd_case)

    p_batch = sub.add_parser(
        "batch", help="plan a fleet of updates through the batched, "
                      "cached, process-parallel update service"
    )
    p_batch.add_argument("jobs", help="JSON job file (see docs/API.md)")
    p_batch.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: file or cpu count)")
    p_batch.add_argument("--serial", action="store_true",
                         help="run in-process, no worker pool")
    p_batch.add_argument("--timeout", type=float, default=None,
                         help="per-job timeout in seconds")
    p_batch.add_argument("--retries", type=int, default=1,
                         help="retries per job on worker failure")
    p_batch.add_argument("--repeat", type=int, default=1,
                         help="run the batch N times (cache warm-up demo)")
    p_batch.set_defaults(func=cmd_batch)

    p_verify = sub.add_parser(
        "verify", help="statically verify a planned update"
    )
    p_verify.add_argument("old", nargs="?")
    p_verify.add_argument("new", nargs="?")
    p_verify.add_argument("--case", help="verify a paper case instead of files")
    _add_strategy_flags(p_verify)
    p_verify.set_defaults(func=cmd_verify)

    p_fuzz = sub.add_parser(
        "fuzz", help="run the end-to-end update fuzzing campaign"
    )
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--iters", type=int, default=100)
    p_fuzz.add_argument("--max-edits", type=int, default=3,
                        help="max semantic edits per generated pair")
    p_fuzz.add_argument("--corpus", default=None,
                        help="directory for shrunk failing reproducers")
    _add_strategy_flags(p_fuzz, baseline=False)
    p_fuzz.add_argument("--max-funcs", type=int, default=3,
                        help="max helper functions per generated program")
    p_fuzz.add_argument("--scheduler-iters", type=int, default=24,
                        help="iterations of main's scheduler loop")
    p_fuzz.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging of failing cases")
    p_fuzz.add_argument("--quiet", action="store_true")
    p_fuzz.add_argument("--faults", action="store_true",
                        help="fuzz fault plans against the campaign "
                             "controller instead of update pairs")
    p_fuzz.add_argument("--versioned", action="store_true",
                        help="fuzz version-heterogeneous fleets through "
                             "the version-graph planner and versioned "
                             "campaign (docs/VERSIONING.md)")
    p_fuzz.add_argument("--profile", default=None,
                        choices=list(PROFILE_NAMES),
                        help="device profile for the --faults sweep "
                             "(mica2, lorawan-dr3, batteryless); an "
                             "energy-limited profile adds seeded "
                             "intermittent-power traces and the "
                             "golden-image oracle")
    p_fuzz.add_argument("--intensity", type=float, default=1.0,
                        help="fault-plan intensity for --faults/"
                             "--versioned (default 1.0)")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_campaign = sub.add_parser(
        "campaign", help="drive one fault-tolerant OTA campaign to "
                         "fleet convergence"
    )
    p_campaign.add_argument("old", nargs="?")
    p_campaign.add_argument("new", nargs="?")
    p_campaign.add_argument("--case",
                            help="run a paper case instead of files")
    _add_strategy_flags(p_campaign)
    p_campaign.add_argument("--grid", type=int, default=3,
                            help="dissemination grid side (NxN nodes)")
    p_campaign.add_argument("--loss", type=float, default=0.0,
                            help="per-link loss probability")
    p_campaign.add_argument("--seed", type=int, default=1,
                            help="link-loss RNG seed")
    p_campaign.add_argument("--rounds", type=int, default=200,
                            help="campaign round budget")
    p_campaign.add_argument("--protocol", default="flood",
                            choices=("flood", "trickle", "gossip"),
                            help="dissemination protocol: synchronous "
                                 "NACK-repair flood (default) or the "
                                 "event-kernel trickle/gossip protocols")
    p_campaign.add_argument("--crash", action="append", default=[],
                            metavar="NODE@ROUND[:REBOOT]",
                            help="schedule a node crash (repeatable)")
    p_campaign.add_argument("--partition", action="append", default=[],
                            metavar="START-END:N1,N2",
                            help="partition an island of nodes (repeatable)")
    p_campaign.add_argument("--corrupt", type=float, default=0.0,
                            help="per-delivery payload corruption probability")
    p_campaign.add_argument("--duplicate", type=float, default=0.0,
                            help="per-delivery duplicate probability")
    p_campaign.add_argument("--fault-seed", type=int, default=0,
                            help="fault-plan RNG seed")
    p_campaign.add_argument("--from-version", type=int, default=0,
                            help="version label of the deployed image")
    p_campaign.add_argument("--to-version", type=int, default=None,
                            help="version label of the release "
                                 "(default: from-version + 1)")
    p_campaign.add_argument("--coding", default="none",
                            choices=("none", "lt", "xor"),
                            help="coded transfer: 'lt' fountain (flood) "
                                 "or 'xor' burst parity (trickle/gossip)")
    p_campaign.add_argument("--profile", default=None,
                            choices=list(PROFILE_NAMES),
                            help="device profile: radio draws, MTU "
                                 "fragmentation, kernel-enforced airtime "
                                 "budget, capacitor brownout model "
                                 "(docs/SIMULATOR.md)")
    p_campaign.add_argument("--random-faults", action="store_true",
                            help="generate the fault plan from --fault-seed")
    p_campaign.add_argument("--intensity", type=float, default=1.0,
                            help="generated fault-plan intensity")
    p_campaign.set_defaults(func=cmd_campaign)

    p_plan = sub.add_parser(
        "plan-versions", help="build a version graph over releases and "
                              "print the cheapest per-cohort update plans"
    )
    p_plan.add_argument("sources", nargs="+",
                        help="ucc-C release files, oldest first")
    p_plan.add_argument("--versions",
                        help="comma-separated version labels, one per "
                             "source (default: 0,1,2,...)")
    p_plan.add_argument("--cohorts",
                        metavar="V:COUNT[,V:COUNT...]",
                        help="fleet composition by deployed version "
                             "(default: every sensor at the oldest)")
    p_plan.add_argument("--grid", type=int, default=6,
                        help="dissemination grid side (NxN nodes)")
    p_plan.add_argument("--loss", type=float, default=0.0,
                        help="per-link loss probability in the cost model")
    p_plan.set_defaults(func=cmd_plan_versions)

    p_profile = sub.add_parser(
        "profile", help="trace one end-to-end update and print a "
                        "per-phase time/energy breakdown"
    )
    p_profile.add_argument("old", nargs="?")
    p_profile.add_argument("new", nargs="?")
    p_profile.add_argument("--case", help="profile a paper case instead of files")
    _add_strategy_flags(p_profile, baseline=False)
    p_profile.add_argument("--grid", type=int, default=4,
                           help="dissemination grid side (NxN nodes)")
    p_profile.add_argument("--loss", type=float, default=0.0,
                           help="per-link loss probability (lossy flood)")
    p_profile.add_argument("--no-sim", action="store_true",
                           help="skip the Diff_cycle simulation runs")
    p_profile.add_argument("--trace", metavar="FILE",
                           help="write chrome://tracing JSON here")
    p_profile.add_argument("--jsonl", metavar="FILE",
                           help="write raw span events (JSONL) here")
    p_profile.set_defaults(func=cmd_profile)

    from repro.lint import cli as lint_cli

    p_lint = sub.add_parser(
        "lint", help="run the determinism/safety static analysis suite "
                     "(see docs/LINT.md)"
    )
    lint_cli.add_arguments(p_lint)
    p_lint.set_defaults(func=lint_cli.run)

    from repro.bench import cli as bench_cli

    p_bench = sub.add_parser(
        "bench", help="run the pinned benchmark workloads and write "
                      "BENCH_<area>.json reports (see docs/BENCHMARKS.md)"
    )
    bench_cli.add_arguments(p_bench)
    p_bench.set_defaults(func=bench_cli.run)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
