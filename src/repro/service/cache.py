"""Content-addressed caches backing the fleet update service.

A :class:`ContentCache` is a bounded LRU from content digest (any
string, typically a SHA-256 hex from :mod:`repro.config`) to an
arbitrary value.  It is deliberately dumb: it neither computes digests
nor publishes telemetry — call sites own their key derivation and emit
their own literal metric names (`docs/OBSERVABILITY.md` requires
metric names to be literals at the call site, so a generic cache must
not publish on behalf of its users).

Two caches matter in practice:

* the **compile cache** — ``(source digest, CompileConfig digest)`` →
  :class:`~repro.core.compiler.CompiledProgram`; shared by every job
  of a batch that redeploys the same old program;
* the **job cache** — :meth:`repro.config.FleetJob.digest` →
  :class:`~repro.service.fleet.JobOutcome`; a warm batch replays
  without planning anything.

(The third content-addressed cache, for canonicalised ILP models,
lives with the solver in :mod:`repro.ilp.canonical`.)
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Optional


def source_digest(source: str) -> str:
    """SHA-256 content address of one source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def compile_key(source: str, config_digest: str) -> str:
    """Cache key of one compile: source content x configuration."""
    return f"{source_digest(source)}:{config_digest}"


class ContentCache:
    """A bounded LRU keyed by content digest."""

    def __init__(self, maxsize: int = 1024, name: str = "cache"):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.name = name
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    def get(self, digest: str) -> Optional[Any]:
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        return entry

    def put(self, digest: str, value: Any) -> None:
        self._entries[digest] = value
        self._entries.move_to_end(digest)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


__all__ = ["ContentCache", "compile_key", "source_digest"]
