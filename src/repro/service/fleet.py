"""The fleet update service: batched, cached, process-parallel planning.

The paper's sink plans one update at a time; a production fleet plans
*many* — several program versions across several node groups, often
with heavy overlap between jobs.  :class:`FleetUpdateService` executes
a batch of :class:`~repro.config.FleetJob`s with three accelerations:

* **content-addressed caching** — compiles are memoised on ``(source
  digest, CompileConfig digest)``, whole jobs on
  :meth:`~repro.config.FleetJob.digest`, and register-allocation ILPs
  on their canonical model (:mod:`repro.ilp.canonical`), so a warm
  batch replays without redoing any of the work;
* **process parallelism** — cache misses fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor` with deterministic
  result ordering (outcomes always return in job order), a per-job
  timeout, bounded retries, and graceful degradation to in-process
  serial execution when the pool cannot be created or breaks;
* **telemetry** — ``service.*`` spans and metrics (see
  ``docs/OBSERVABILITY.md``) report batch/job wall time, cache
  hit-rates, retries, and fallbacks.

Jobs are plain frozen dataclasses of sources and configs — cheap to
pickle, deterministic to digest — and outcomes are flat metric
records, so nothing heavyweight (IR, images, solver state) ever
crosses a process boundary.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..config import FleetJob
from ..obs import metrics, trace
from .cache import ContentCache, compile_key


@dataclass(frozen=True)
class JobOutcome:
    """Flat, picklable record of one executed (or failed) job.

    Everything except ``index``/``job_id``/``cached``/``attempts``/
    ``wall_ms`` is a pure function of the job's content — that is what
    :meth:`key_metrics` exposes and what the determinism tests pin.
    """

    index: int
    job_id: str
    ok: bool
    error: str = ""
    cached: bool = False
    attempts: int = 1
    wall_ms: float = 0.0
    # -- plan metrics (the paper's vocabulary) ---------------------------
    ra: str = ""
    da: str = ""
    cp: str = ""
    diff_inst: int = 0
    diff_words: int = 0
    reused_instructions: int = 0
    script_bytes: int = 0
    code_script_bytes: int = 0
    data_script_bytes: int = 0
    packet_count: int = 0
    bytes_on_air: int = 0
    old_instructions: int = 0
    new_instructions: int = 0
    moves_inserted: int = 0
    #: first bytes of the edit script's rendering digest — lets tests
    #: assert bit-identical scripts without shipping the script itself
    script_digest: str = ""
    # -- dissemination (zeros when the job had no topology) --------------
    nodes_patched: int = 0
    network_energy_j: float = 0.0
    dissemination_rounds: int = 0
    # -- campaign (empty/zero unless the job carried a fault plan) -------
    #: "converged" or "partial"; "" for plain dissemination jobs
    campaign_outcome: str = ""
    nodes_quarantined: int = 0
    #: sha256 of the canonical CampaignReport JSON — pins determinism
    campaign_digest: str = ""
    # -- simulation (None unless measure_cycles) -------------------------
    old_cycles: Optional[int] = None
    new_cycles: Optional[int] = None

    def key_metrics(self) -> dict:
        """The deterministic slice of the outcome (execution-mode and
        cache-state independent)."""
        skip = {"index", "job_id", "cached", "attempts", "wall_ms"}
        return {
            name: value
            for name, value in self.__dict__.items()
            if name not in skip
        }


@dataclass
class FleetResult:
    """Outcome of one batch, in job order."""

    outcomes: List[JobOutcome]
    wall_ms: float = 0.0
    workers: int = 1
    #: "serial", "parallel", "cached", "serial-fallback", or
    #: "parallel+serial-fallback"
    mode: str = "serial"
    job_cache_hits: int = 0
    job_cache_misses: int = 0
    compile_cache_hits: int = 0
    compile_cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def cache_hit_rate(self) -> float:
        total = self.job_cache_hits + self.job_cache_misses
        return self.job_cache_hits / total if total else 0.0

    def render(self) -> str:
        lines = [
            f"fleet batch: {len(self.outcomes)} jobs, mode={self.mode}, "
            f"workers={self.workers}, wall={self.wall_ms:.1f} ms",
            f"job cache  : {self.job_cache_hits} hits / "
            f"{self.job_cache_misses} misses "
            f"(hit rate {100.0 * self.cache_hit_rate:.0f}%)",
            "",
            f"{'job':<14} {'ra/da/cp':<16} {'Diff_inst':>9} {'script B':>8} "
            f"{'packets':>7} {'wall ms':>8}  status",
        ]
        for outcome in self.outcomes:
            status = "ok" if outcome.ok else f"FAIL: {outcome.error}"
            if outcome.ok and outcome.campaign_outcome == "partial":
                status = (
                    f"partial ({outcome.nodes_quarantined} quarantined)"
                )
            if outcome.cached:
                status += " (cached)"
            strategy = f"{outcome.ra}/{outcome.da}/{outcome.cp}"
            lines.append(
                f"{outcome.job_id:<14} {strategy:<16} {outcome.diff_inst:>9} "
                f"{outcome.script_bytes:>8} {outcome.packet_count:>7} "
                f"{outcome.wall_ms:>8.1f}  {status}"
            )
        return "\n".join(lines)


def _failed(job: FleetJob, index: int, error: str, attempts: int) -> JobOutcome:
    return JobOutcome(
        index=index,
        job_id=job.job_id or str(index),
        ok=False,
        error=error,
        attempts=attempts,
        ra=job.update.ra,
        da=job.update.da,
        cp=job.update.resolved_cp(),
    )


def execute_job(
    job: FleetJob,
    index: int = 0,
    compile_cache: Optional[ContentCache] = None,
) -> JobOutcome:
    """Plan (and optionally disseminate/simulate) one job, serially.

    Never raises: expected failures — bad source, infeasible update,
    incomplete dissemination — come back as ``ok=False`` outcomes with
    the exception message, so a batch always yields one outcome per
    job.  Shared by the in-process serial path and the pool workers.
    """
    # Imported here so a forked worker only pays for what it runs.
    import hashlib

    from ..core.update import UpdatePlanner, measure_cycles
    from ..net.campaign import run_campaign
    from ..net.dissemination import disseminate
    from ..net.errors import DisseminationIncomplete
    from ..net.lossy import disseminate_lossy

    start = time.perf_counter()
    with trace.span("service.job", index=index, ra=job.update.ra):
        try:
            old = _compile_cached(job.old_source, job.compile, compile_cache)
            planner = UpdatePlanner(old, config=job.update)
            result = planner.plan(job.new_source)
            nodes = 0
            energy_j = 0.0
            rounds = 0
            campaign_outcome = ""
            nodes_quarantined = 0
            campaign_digest = ""
            if job.topology is not None:
                topology = job.topology.build()
                if job.fault_plan is not None:
                    # Fault-tolerant campaign: graceful degradation —
                    # an unconverged fleet is a structured partial
                    # outcome, never an exception.
                    blob = (
                        result.diff.script.to_bytes()
                        + result.data_script.to_bytes()
                    )
                    report = run_campaign(
                        topology,
                        blob,
                        job.fault_plan,
                        loss=job.loss,
                        seed=job.loss_seed,
                        max_rounds=job.max_rounds,
                        payload_per_packet=result.packets.payload_per_packet,
                        overhead_per_packet=result.packets.overhead_per_packet,
                    )
                    nodes = len(report.converged_nodes)
                    energy_j = report.total_energy_j
                    rounds = report.rounds
                    campaign_outcome = report.outcome
                    nodes_quarantined = len(report.quarantined)
                    campaign_digest = report.digest()
                elif job.loss > 0.0:
                    dissemination = disseminate_lossy(
                        topology,
                        result.packets,
                        loss=job.loss,
                        seed=job.loss_seed,
                    )
                    if not dissemination.complete:
                        raise DisseminationIncomplete(
                            missing=dissemination.missing,
                            rounds=dissemination.rounds,
                            packets=dissemination.packets,
                        )
                    nodes = topology.node_count - 1
                    energy_j = dissemination.total_energy_j
                    rounds = dissemination.rounds
                else:
                    dissemination = disseminate(topology, result.packets)
                    nodes = topology.node_count - 1
                    energy_j = dissemination.total_energy_j
                    rounds = dissemination.rounds
            if job.measure_cycles:
                measure_cycles(result)
            script_digest = hashlib.sha256(
                result.diff.script.render().encode("utf-8")
            ).hexdigest()
        except Exception as exc:  # noqa: BLE001 — the contract is one
            # outcome per job, whatever the planner raises.
            detail = traceback.format_exc(limit=2).strip().splitlines()[-1]
            outcome = _failed(job, index, f"{type(exc).__name__}: {exc}", 1)
            return replace(
                outcome,
                error=f"{outcome.error} ({detail})" if detail else outcome.error,
                wall_ms=(time.perf_counter() - start) * 1000.0,
            )
        return JobOutcome(
            index=index,
            job_id=job.job_id or str(index),
            ok=True,
            wall_ms=(time.perf_counter() - start) * 1000.0,
            ra=result.ra_strategy,
            da=result.da_strategy,
            cp=result.new.placement.algorithm,
            diff_inst=result.diff_inst,
            diff_words=result.diff_words,
            reused_instructions=result.reused_instructions,
            script_bytes=result.script_bytes,
            code_script_bytes=result.code_script_bytes,
            data_script_bytes=result.data_script_bytes,
            packet_count=result.packets.packet_count,
            bytes_on_air=result.packets.bytes_on_air,
            old_instructions=result.diff.old_instructions,
            new_instructions=result.diff.new_instructions,
            moves_inserted=result.moves_inserted(),
            script_digest=script_digest,
            nodes_patched=nodes,
            network_energy_j=energy_j,
            dissemination_rounds=rounds,
            campaign_outcome=campaign_outcome,
            nodes_quarantined=nodes_quarantined,
            campaign_digest=campaign_digest,
            old_cycles=result.old_cycles,
            new_cycles=result.new_cycles,
        )


def _compile_cached(source, config, cache: Optional[ContentCache]):
    from ..core.compiler import Compiler

    if cache is None:
        return Compiler(config.to_options()).compile(source)
    key = compile_key(source, config.digest())
    program = cache.get(key)
    if program is not None:
        metrics.counter("service.cache.compile_hits").inc()
        return program
    metrics.counter("service.cache.compile_misses").inc()
    program = Compiler(config.to_options()).compile(source)
    cache.put(key, program)
    return program


#: Per-worker-process compile cache (module global: survives across the
#: jobs one worker executes; with fork start, seeds from the parent).
_WORKER_COMPILE_CACHE = ContentCache(maxsize=256, name="worker-compile")


def _worker_run(payload: Tuple[int, FleetJob]) -> JobOutcome:
    index, job = payload
    return execute_job(job, index=index, compile_cache=_WORKER_COMPILE_CACHE)


class FleetUpdateService:
    """Executes batches of update jobs with caching and parallelism.

    One service instance owns the parent-side caches; reuse it across
    batches to keep them warm.  ``workers=1`` (or
    ``use_processes=False``) forces the in-process serial path —
    results are identical either way, only wall time changes.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        use_processes: bool = True,
        job_cache_size: int = 1024,
        compile_cache_size: int = 256,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.workers = workers or min(8, os.cpu_count() or 1)
        self.timeout_s = timeout_s
        self.retries = retries
        self.use_processes = use_processes
        self.job_cache = ContentCache(job_cache_size, name="job")
        self.compile_cache = ContentCache(compile_cache_size, name="compile")

    # -- public API -----------------------------------------------------

    def run(self, jobs: Sequence[FleetJob]) -> FleetResult:
        """Execute a batch; outcomes come back in job order."""
        jobs = list(jobs)
        start = time.perf_counter()
        job_hits_before = self.job_cache.hits
        job_misses_before = self.job_cache.misses
        compile_hits_before = self.compile_cache.hits
        compile_misses_before = self.compile_cache.misses
        with trace.span("service.batch", jobs=len(jobs), workers=self.workers):
            metrics.counter("service.batches").inc()
            metrics.gauge("service.workers").set(self.workers)
            outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
            pending: List[Tuple[int, str, FleetJob]] = []
            for index, job in enumerate(jobs):
                digest = job.digest()
                hit = self.job_cache.get(digest)
                if hit is not None:
                    metrics.counter("service.cache.job_hits").inc()
                    metrics.counter("service.jobs").inc()
                    outcomes[index] = replace(
                        hit,
                        index=index,
                        job_id=job.job_id or str(index),
                        cached=True,
                    )
                else:
                    metrics.counter("service.cache.job_misses").inc()
                    pending.append((index, digest, job))

            mode = "cached"
            if pending:
                parallel_worthwhile = (
                    self.use_processes and self.workers > 1 and len(pending) > 1
                )
                if parallel_worthwhile:
                    mode = self._run_parallel(pending, outcomes)
                else:
                    self._run_serial(pending, outcomes)
                    mode = "serial"

        wall_ms = (time.perf_counter() - start) * 1000.0
        metrics.histogram("service.batch_wall_ms").observe(wall_ms)
        done = [outcome for outcome in outcomes if outcome is not None]
        assert len(done) == len(jobs), "every job must produce an outcome"
        return FleetResult(
            outcomes=done,
            wall_ms=wall_ms,
            workers=self.workers,
            mode=mode,
            job_cache_hits=self.job_cache.hits - job_hits_before,
            job_cache_misses=self.job_cache.misses - job_misses_before,
            compile_cache_hits=self.compile_cache.hits - compile_hits_before,
            compile_cache_misses=self.compile_cache.misses - compile_misses_before,
        )

    # -- execution paths ------------------------------------------------

    def _finish(
        self,
        index: int,
        digest: str,
        outcome: JobOutcome,
        outcomes: List[Optional[JobOutcome]],
    ) -> None:
        outcomes[index] = outcome
        metrics.counter("service.jobs").inc()
        metrics.histogram("service.job_wall_ms").observe(outcome.wall_ms)
        if outcome.ok:
            self.job_cache.put(digest, outcome)
        else:
            metrics.counter("service.job_failures").inc()

    def _run_serial(
        self,
        pending: List[Tuple[int, str, FleetJob]],
        outcomes: List[Optional[JobOutcome]],
    ) -> None:
        for index, digest, job in pending:
            outcome = execute_job(job, index=index, compile_cache=self.compile_cache)
            self._finish(index, digest, outcome, outcomes)

    def _run_parallel(
        self,
        pending: List[Tuple[int, str, FleetJob]],
        outcomes: List[Optional[JobOutcome]],
    ) -> str:
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending))
            )
        except Exception:
            metrics.counter("service.serial_fallbacks").inc()
            self._run_serial(pending, outcomes)
            return "serial-fallback"

        attempts = {index: 0 for index, _, _ in pending}
        remaining = list(pending)
        degraded = False
        try:
            while remaining:
                futures = [
                    (index, digest, job, pool.submit(_worker_run, (index, job)))
                    for index, digest, job in remaining
                ]
                retry: List[Tuple[int, str, FleetJob]] = []
                for index, digest, job, future in futures:
                    attempts[index] += 1
                    try:
                        outcome = future.result(timeout=self.timeout_s)
                        outcome = replace(outcome, attempts=attempts[index])
                    except FutureTimeoutError:
                        future.cancel()
                        metrics.counter("service.job_timeouts").inc()
                        outcome = _failed(
                            job,
                            index,
                            f"timeout after {self.timeout_s:g}s",
                            attempts[index],
                        )
                    except BrokenProcessPool:
                        raise
                    except Exception as exc:  # infrastructure failure
                        if attempts[index] <= self.retries:
                            metrics.counter("service.job_retries").inc()
                            retry.append((index, digest, job))
                            continue
                        # Last resort: run it here, in-process.
                        metrics.counter("service.serial_fallbacks").inc()
                        degraded = True
                        outcome = execute_job(
                            job, index=index, compile_cache=self.compile_cache
                        )
                        if outcome.ok:
                            outcome = replace(outcome, attempts=attempts[index])
                        else:
                            outcome = replace(
                                outcome,
                                attempts=attempts[index],
                                error=f"{outcome.error} (after pool error: "
                                f"{type(exc).__name__})",
                            )
                    self._finish(index, digest, outcome, outcomes)
                remaining = retry
        except (BrokenProcessPool, OSError):
            # The pool is gone; degrade every job still unaccounted for.
            metrics.counter("service.serial_fallbacks").inc()
            degraded = True
            leftovers = [
                (index, digest, job)
                for index, digest, job in pending
                if outcomes[index] is None
            ]
            self._run_serial(leftovers, outcomes)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return "parallel+serial-fallback" if degraded else "parallel"


def run_batch(
    jobs: Sequence[FleetJob],
    workers: Optional[int] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    use_processes: bool = True,
) -> FleetResult:
    """One-shot convenience: a fresh service, one batch."""
    service = FleetUpdateService(
        workers=workers,
        timeout_s=timeout_s,
        retries=retries,
        use_processes=use_processes,
    )
    return service.run(jobs)


__all__ = [
    "FleetResult",
    "FleetUpdateService",
    "JobOutcome",
    "execute_job",
    "run_batch",
]
