"""Fleet update service: batched, cached, process-parallel planning.

Public entry points:

* :class:`FleetUpdateService` — owns the caches, runs batches;
* :func:`run_batch` — one-shot convenience wrapper;
* :class:`~repro.config.FleetJob` (re-exported from :mod:`repro.config`)
  — one unit of work;
* :class:`JobOutcome` / :class:`FleetResult` — what comes back.
"""

from ..config import CompileConfig, FleetJob, TopologySpec, UpdateConfig
from .cache import ContentCache, compile_key, source_digest
from .fleet import FleetResult, FleetUpdateService, JobOutcome, execute_job, run_batch

__all__ = [
    "CompileConfig",
    "ContentCache",
    "FleetJob",
    "FleetResult",
    "FleetUpdateService",
    "JobOutcome",
    "TopologySpec",
    "UpdateConfig",
    "compile_key",
    "execute_job",
    "run_batch",
    "source_digest",
]
