"""The code-update test cases (paper Figures 9 and 16).

Thirteen register-allocation cases spanning small / medium / large
changes plus the two data-layout cases D1/D2, reconstructed from the
descriptions in the paper:

* small — constant changes, variable changes, parameter changes,
  instruction changes, control-flow changes (cases 1-5);
* medium — new globals used in new branches, extended live ranges (the
  Figure 4 scenario), new parameters, new functions, new else branches
  (cases 6-11, including the two Figure 9 quotes: *"insert a global
  variable and use it in a new if/then branch in TOSH_run_next_task"*
  and *"add an else branch for an if statement in Timer_HandleFire"*);
* large — application replacement (cases 12: CntToRfm →
  CntToLedsAndRfm, 13: CntToLeds → CntToRfm);
* D1 — insert several global variables into CntToRfm;
* D2 — shuffle the order of global variables and rename them in
  CntToLeds.

Each case is a source-to-source edit applied with
:func:`_edit`, which raises if the anchor text is missing — the cases
cannot silently rot.
"""

from __future__ import annotations

from dataclasses import dataclass

from .programs import (
    AES,
    BLINK,
    CNT_TO_LEDS,
    CNT_TO_LEDS_AND_RFM,
    CNT_TO_RFM,
)


@dataclass(frozen=True)
class UpdateCase:
    """One code-update scenario."""

    case_id: str
    level: str  # "small" | "medium" | "large" | "data"
    program: str  # benchmark name of the old version
    description: str
    old_source: str
    new_source: str


def _edit(source: str, *replacements: tuple[str, str]) -> str:
    """Apply exact-match replacements; refuse silent no-ops."""
    out = source
    for old, new in replacements:
        if old not in out:
            raise ValueError(f"update-case anchor not found: {old!r}")
        out = out.replace(old, new, 1)
    return out


def _build_cases() -> list[UpdateCase]:
    cases: list[UpdateCase] = []

    # -- small changes (local to a basic block) --------------------------------

    cases.append(
        UpdateCase(
            case_id="1",
            level="small",
            program="CntToLeds",
            description="change the colour of blink: display a different LED subset",
            old_source=CNT_TO_LEDS,
            new_source=_edit(CNT_TO_LEDS, ("u8 display_mask = 7;", "u8 display_mask = 5;")),
        )
    )
    cases.append(
        UpdateCase(
            case_id="2",
            level="small",
            program="Blink",
            description="constant change: toggle the yellow LED instead of the red",
            old_source=BLINK,
            new_source=_edit(BLINK, ("led_state ^ 1", "led_state ^ 2")),
        )
    )
    cases.append(
        UpdateCase(
            case_id="3",
            level="small",
            program="CntToRfm",
            description="instruction change: send cnt+1 instead of cnt",
            old_source=CNT_TO_RFM,
            new_source=_edit(CNT_TO_RFM, ("send_int_msg(cnt);", "send_int_msg(cnt + 1);")),
        )
    )
    cases.append(
        UpdateCase(
            case_id="4",
            level="small",
            program="CntToLeds",
            description="variable change: advance the counter by a stride global",
            old_source=_edit(
                CNT_TO_LEDS, ("u8 display_mask = 7;", "u8 display_mask = 7;\nu8 stride = 1;")
            ),
            new_source=_edit(
                CNT_TO_LEDS,
                ("u8 display_mask = 7;", "u8 display_mask = 7;\nu8 stride = 1;"),
                ("cnt = cnt + 1;", "cnt = cnt + stride;"),
            ),
        )
    )
    cases.append(
        UpdateCase(
            case_id="5",
            level="small",
            program="Blink",
            description="parameter change: mask the value passed to led_set",
            old_source=BLINK,
            new_source=_edit(BLINK, ("led_set(led_state);", "led_set(led_state & 3);")),
        )
    )

    # -- medium changes (larger function / cross-function, structure kept) ------

    cases.append(
        UpdateCase(
            case_id="6",
            level="medium",
            program="Blink",
            description=(
                "insert a global variable and use it in a new if/then "
                "branch in tosh_run_next_task (paper Fig. 9 medium case)"
            ),
            old_source=BLINK,
            new_source=_edit(
                BLINK,
                ("u8 led_state = 0;", "u8 led_state = 0;\nu16 fire_count = 0;"),
                (
                    "    if (timer_fired()) {\n        timer_handle_fire();\n    }",
                    "    if (timer_fired()) {\n        fire_count = fire_count + 1;\n"
                    "        if (fire_count > 10) {\n            led_set(7);\n        }\n"
                    "        timer_handle_fire();\n    }",
                ),
            ),
        )
    )
    cases.append(
        UpdateCase(
            case_id="7",
            level="medium",
            program="CntToLeds",
            description=(
                "extend a live range across an inserted use "
                "(the paper's Figure 4 motivation)"
            ),
            old_source=_edit(
                CNT_TO_LEDS,
                (
                    "void timer_handle_fire() {\n    cnt = cnt + 1;\n    led_set(cnt & display_mask);\n}",
                    "void timer_handle_fire() {\n    u8 shown = cnt & display_mask;\n"
                    "    cnt = cnt + 1;\n    led_set(shown);\n}",
                ),
            ),
            new_source=_edit(
                CNT_TO_LEDS,
                (
                    "void timer_handle_fire() {\n    cnt = cnt + 1;\n    led_set(cnt & display_mask);\n}",
                    "void timer_handle_fire() {\n    u8 shown = cnt & display_mask;\n"
                    "    u8 bumped = shown + 1;\n    cnt = cnt + 1;\n"
                    "    led_set(shown);\n    led_set(bumped & display_mask);\n}",
                ),
            ),
        )
    )
    cases.append(
        UpdateCase(
            case_id="8",
            level="medium",
            program="CntToRfm",
            description="add a parameter: am_send_header takes a length byte",
            old_source=CNT_TO_RFM,
            new_source=_edit(
                CNT_TO_RFM,
                (
                    "void am_send_header(u8 kind, u8 seq) {\n    radio_send(kind);\n    radio_send(seq);\n}",
                    "void am_send_header(u8 kind, u8 seq, u8 length) {\n    radio_send(kind);\n"
                    "    radio_send(seq);\n    radio_send(length);\n}",
                ),
                ("am_send_header(am_type, msg_seq);", "am_send_header(am_type, msg_seq, 2);"),
            ),
        )
    )
    cases.append(
        UpdateCase(
            case_id="9",
            level="medium",
            program="CntToLedsAndRfm",
            description="add a new helper function called from the event handler",
            old_source=CNT_TO_LEDS_AND_RFM,
            new_source=_edit(
                CNT_TO_LEDS_AND_RFM,
                (
                    "void timer_handle_fire() {",
                    "u8 saturate(u16 value) {\n    if (value > 250) {\n        return 250;\n    }\n"
                    "    return value;\n}\n\nvoid timer_handle_fire() {",
                ),
                ("show_on_leds(cnt);", "show_on_leds(saturate(cnt));"),
            ),
        )
    )
    cases.append(
        UpdateCase(
            case_id="10",
            level="medium",
            program="AES",
            description="count encrypted blocks in a new global (key schedule kept)",
            old_source=AES,
            new_source=_edit(
                AES,
                ("u8 round_keys[176];", "u8 round_keys[176];\nu16 blocks_done = 0;"),
                (
                    "    sub_bytes();\n    shift_rows();\n    add_round_key(10);",
                    "    sub_bytes();\n    shift_rows();\n    add_round_key(10);\n"
                    "    blocks_done = blocks_done + 1;",
                ),
            ),
        )
    )
    cases.append(
        UpdateCase(
            case_id="11",
            level="medium",
            program="Blink",
            description=(
                "add an else branch for an if statement in "
                "timer_handle_fire (paper Fig. 9 case 11)"
            ),
            old_source=_edit(
                BLINK,
                (
                    "void timer_handle_fire() {\n    led_state = led_state ^ 1;  // red LED is bit 0\n    led_set(led_state);\n}",
                    "void timer_handle_fire() {\n    if (led_state == 0) {\n        led_state = 1;\n    }\n"
                    "    led_set(led_state);\n    led_state = led_state ^ 1;\n}",
                ),
            ),
            new_source=_edit(
                BLINK,
                (
                    "void timer_handle_fire() {\n    led_state = led_state ^ 1;  // red LED is bit 0\n    led_set(led_state);\n}",
                    "void timer_handle_fire() {\n    if (led_state == 0) {\n        led_state = 1;\n    } else {\n"
                    "        led_state = led_state << 1;\n    }\n"
                    "    led_set(led_state);\n    led_state = led_state ^ 1;\n}",
                ),
            ),
        )
    )

    # -- large changes (application replacement) -------------------------------------

    cases.append(
        UpdateCase(
            case_id="12",
            level="large",
            program="CntToRfm",
            description="change the application from CntToRfm to CntToLedsAndRfm",
            old_source=CNT_TO_RFM,
            new_source=CNT_TO_LEDS_AND_RFM,
        )
    )
    cases.append(
        UpdateCase(
            case_id="13",
            level="large",
            program="CntToLeds",
            description="change the application from CntToLeds to CntToRfm",
            old_source=CNT_TO_LEDS,
            new_source=CNT_TO_RFM,
        )
    )

    # -- data-layout cases (paper Figure 16) ----------------------------------------------

    cases.append(
        UpdateCase(
            case_id="D1",
            level="data",
            program="CntToRfm",
            description="insert several global variables into CntToRfm",
            old_source=CNT_TO_RFM,
            new_source=_edit(
                CNT_TO_RFM,
                (
                    "u16 cnt = 0;",
                    "u16 cnt = 0;\nu16 boot_count = 0;\nu8 tx_power = 10;\nu8 group_id = 1;",
                ),
                (
                    "void send_int_msg(u16 value) {\n    am_send_header(am_type, msg_seq);",
                    "void send_int_msg(u16 value) {\n    boot_count = boot_count + 0;\n"
                    "    am_send_header(am_type, msg_seq ^ group_id ^ tx_power);",
                ),
            ),
        )
    )
    cases.append(
        UpdateCase(
            case_id="D2",
            level="data",
            program="CntToLeds",
            description="shuffle the order of global variables and change their names",
            old_source=_edit(
                CNT_TO_LEDS,
                ("u16 cnt = 0;\nu8 display_mask = 7;", "u16 cnt = 0;\nu8 display_mask = 7;\nu8 blink_rate = 4;"),
            ),
            new_source=_edit(
                CNT_TO_LEDS,
                (
                    "u16 cnt = 0;\nu8 display_mask = 7;",
                    "u8 led_mask = 7;\nu8 rate_hz = 4;\nu16 tick_count = 0;",
                ),
                ("cnt = cnt + 1;", "tick_count = tick_count + 1;"),
                ("led_set(cnt & display_mask);", "led_set(tick_count & led_mask);"),
                ("    cnt = 0;\n", "    tick_count = 0;\n"),
            ),
        )
    )
    return cases


#: All cases keyed by id ("1".."13", "D1", "D2").
CASES: dict[str, UpdateCase] = {case.case_id: case for case in _build_cases()}

#: The register-allocation evaluation cases of Figure 10/11 (1-12).
RA_CASE_IDS = [str(i) for i in range(1, 13)]

#: The data-layout cases of Figure 16.
DATA_CASE_IDS = ["D1", "D2"]


def get_case(case_id: str) -> UpdateCase:
    return CASES[case_id]
