"""Extra workloads beyond the paper's Figure 8 set.

Two classic TinyOS-era applications, used to exercise the compiler and
the update machinery on larger, more data-driven programs:

* ``SURGE`` — periodic sensing with a circular send queue and a
  multihop-style packet header (the canonical TinyOS Surge app);
* ``OSCILLOSCOPE`` — batched sampling: fill a buffer of readings, then
  stream the whole batch (TinyOS OscilloscopeRF).

They are deliberately heavier on arrays, u16 arithmetic, and
inter-procedural structure than the Figure 8 benchmarks.
"""

from __future__ import annotations

SURGE = """
// Surge: sample the ADC on each timer event, queue the reading, and
// drain the queue as AM packets with a multihop-style header.
u16 queue[8];
u8 queue_head = 0;
u8 queue_len = 0;
u8 node_id = 7;
u8 parent_id = 1;
u8 seq_no = 0;
u16 samples_taken = 0;
u16 packets_sent = 0;

u8 queue_full() {
    return queue_len >= 8;
}

void enqueue(u16 value) {
    u8 slot;
    if (queue_full()) {
        return;  // drop on overflow, like the real Surge
    }
    slot = (queue_head + queue_len) % 8;
    queue[slot] = value;
    queue_len = queue_len + 1;
}

u16 dequeue() {
    u16 value = queue[queue_head];
    queue_head = (queue_head + 1) % 8;
    queue_len = queue_len - 1;
    return value;
}

void send_reading(u16 value) {
    radio_send(node_id);
    radio_send(parent_id);
    radio_send(seq_no);
    radio_send(value);
    seq_no = seq_no + 1;
    packets_sent = packets_sent + 1;
}

void sense_task() {
    u16 sample = adc_read();
    samples_taken = samples_taken + 1;
    enqueue(sample >> 4);
}

void drain_task() {
    if (queue_len > 0) {
        send_reading(dequeue());
    }
}

void tosh_run_next_task() {
    if (timer_fired()) {
        sense_task();
    }
    drain_task();
}

void main() {
    u16 iter;
    for (iter = 0; iter < 600; iter++) {
        tosh_run_next_task();
    }
    halt();
}
"""

OSCILLOSCOPE = """
// OscilloscopeRF: fill a buffer of ADC readings, then stream the batch.
u16 buffer[10];
u8 fill = 0;
u8 batches_sent = 0;
u16 max_seen = 0;

void record(u16 value) {
    buffer[fill] = value;
    fill = fill + 1;
    if (value > max_seen) {
        max_seen = value;
    }
}

void flush_batch() {
    u8 i;
    led_set(batches_sent & 7);
    radio_send(0xBEEF);
    for (i = 0; i < 10; i++) {
        radio_send(buffer[i]);
    }
    fill = 0;
    batches_sent = batches_sent + 1;
}

void tosh_run_next_task() {
    if (timer_fired()) {
        record(adc_read());
        if (fill >= 10) {
            flush_batch();
        }
    }
}

void main() {
    u16 iter;
    for (iter = 0; iter < 800; iter++) {
        tosh_run_next_task();
    }
    halt();
}
"""

EXTRA_PROGRAMS: dict[str, str] = {
    "Surge": SURGE,
    "Oscilloscope": OSCILLOSCOPE,
}


def _edit(source: str, *replacements: tuple[str, str]) -> str:
    out = source
    for old, new in replacements:
        if old not in out:
            raise ValueError(f"extra-case anchor not found: {old!r}")
        out = out.replace(old, new, 1)
    return out


#: Extended update cases over the extra workloads (E1-E4), exercising
#: the update machinery on larger programs than Figure 9's.
EXTRA_CASES: dict[str, tuple[str, str, str]] = {
    # id: (description, old_source, new_source)
    "E1": (
        "Surge: re-parent the node (data-only change)",
        SURGE,
        _edit(SURGE, ("u8 parent_id = 1;", "u8 parent_id = 3;")),
    ),
    "E2": (
        "Surge: count dropped readings in a new global",
        SURGE,
        _edit(
            SURGE,
            ("u16 packets_sent = 0;", "u16 packets_sent = 0;\nu16 drops = 0;"),
            (
                "    if (queue_full()) {\n        return;  // drop on overflow, like the real Surge\n    }",
                "    if (queue_full()) {\n        drops = drops + 1;\n        return;\n    }",
            ),
        ),
    ),
    "E3": (
        "Surge: add a low-battery beacon branch to the drain task",
        SURGE,
        _edit(
            SURGE,
            ("u8 seq_no = 0;", "u8 seq_no = 0;\nu8 beacon_due = 0;"),
            (
                "void drain_task() {\n    if (queue_len > 0) {\n        send_reading(dequeue());\n    }\n}",
                "void drain_task() {\n    beacon_due = beacon_due + 1;\n"
                "    if (beacon_due >= 64) {\n        radio_send(0xFEED);\n"
                "        beacon_due = 0;\n    }\n"
                "    if (queue_len > 0) {\n        send_reading(dequeue());\n    }\n}",
            ),
        ),
    ),
    "E4": (
        "Oscilloscope: halve the batch size (constant + loop bounds)",
        OSCILLOSCOPE,
        _edit(
            OSCILLOSCOPE,
            ("if (fill >= 10) {", "if (fill >= 5) {"),
            ("for (i = 0; i < 10; i++) {", "for (i = 0; i < 5; i++) {"),
        ),
    ),
}
