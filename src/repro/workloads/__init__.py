"""Benchmark programs and update cases (paper Figures 8, 9, 16)."""

from .programs import (
    AES,
    AES_EXPECTED_CIPHERTEXT,
    BLINK,
    CNT_TO_LEDS,
    CNT_TO_LEDS_AND_RFM,
    CNT_TO_RFM,
    PROGRAMS,
)
from .updates import CASES, DATA_CASE_IDS, RA_CASE_IDS, UpdateCase, get_case

__all__ = [
    "AES",
    "AES_EXPECTED_CIPHERTEXT",
    "BLINK",
    "CASES",
    "CNT_TO_LEDS",
    "CNT_TO_LEDS_AND_RFM",
    "CNT_TO_RFM",
    "DATA_CASE_IDS",
    "PROGRAMS",
    "RA_CASE_IDS",
    "UpdateCase",
    "get_case",
]
