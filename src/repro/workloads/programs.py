"""The benchmark programs (paper Figure 8), rewritten in ucc-C.

Five programs mirroring the paper's benchmarks:

* ``BLINK``             — 1 Hz timer toggles the red LED;
* ``CNT_TO_LEDS``       — 4 Hz counter, low three bits on the LEDs;
* ``CNT_TO_RFM``        — counter sent in an IntMsg-style packet on
  each increment;
* ``CNT_TO_LEDS_AND_RFM`` — combines the two;
* ``AES``               — AES-128 block encryption (the Crypto++
  benchmark's stand-in), a real implementation checked against the
  FIPS-197 test vector in the test suite.

All follow the TinyOS idiom the paper's cases reference: a
``tosh_run_next_task`` polling loop and a ``timer_handle_fire`` event
handler.  ``main`` runs a bounded number of scheduler iterations and
halts, so a simulation run is finite and deterministic (``Diff_cycle``
is measured over one such run, like the paper's "single run").
"""

from __future__ import annotations

BLINK = """
// Blink: start a 1Hz timer and toggle the red LED every time it fires.
u8 led_state = 0;

void timer_handle_fire() {
    led_state = led_state ^ 1;  // red LED is bit 0
    led_set(led_state);
}

void tosh_run_next_task() {
    if (timer_fired()) {
        timer_handle_fire();
    }
}

void main() {
    u16 iter;
    led_set(0);
    for (iter = 0; iter < 600; iter++) {
        tosh_run_next_task();
    }
    halt();
}
"""

CNT_TO_LEDS = """
// CntToLeds: maintain a counter on a 4Hz timer and display the lowest
// three bits of the counter value on the LEDs.
u16 cnt = 0;
u8 display_mask = 7;

void timer_handle_fire() {
    cnt = cnt + 1;
    led_set(cnt & display_mask);
}

void tosh_run_next_task() {
    if (timer_fired()) {
        timer_handle_fire();
    }
}

void main() {
    u16 iter;
    cnt = 0;
    for (iter = 0; iter < 600; iter++) {
        tosh_run_next_task();
    }
    halt();
}
"""

CNT_TO_RFM = """
// CntToRfm: maintain a counter on a 4Hz timer and send out the value
// of the counter in an IntMsg-style AM packet on each increment.
u16 cnt = 0;
u8 am_type = 4;
u8 msg_seq = 0;

void am_send_header(u8 kind, u8 seq) {
    radio_send(kind);
    radio_send(seq);
}

void send_int_msg(u16 value) {
    am_send_header(am_type, msg_seq);
    radio_send(value);
    msg_seq = msg_seq + 1;
}

void timer_handle_fire() {
    cnt = cnt + 1;
    send_int_msg(cnt);
}

void tosh_run_next_task() {
    if (timer_fired()) {
        timer_handle_fire();
    }
}

void main() {
    u16 iter;
    cnt = 0;
    for (iter = 0; iter < 600; iter++) {
        tosh_run_next_task();
    }
    halt();
}
"""

CNT_TO_LEDS_AND_RFM = """
// CntToLedsAndRfm: maintain a counter on a 4Hz timer; combine the
// tasks performed by CntToRfm and CntToLeds.
u16 cnt = 0;
u8 display_mask = 7;
u8 am_type = 4;
u8 msg_seq = 0;

void am_send_header(u8 kind, u8 seq) {
    radio_send(kind);
    radio_send(seq);
}

void send_int_msg(u16 value) {
    am_send_header(am_type, msg_seq);
    radio_send(value);
    msg_seq = msg_seq + 1;
}

void show_on_leds(u16 value) {
    led_set(value & display_mask);
}

void timer_handle_fire() {
    cnt = cnt + 1;
    show_on_leds(cnt);
    send_int_msg(cnt);
}

void tosh_run_next_task() {
    if (timer_fired()) {
        timer_handle_fire();
    }
}

void main() {
    u16 iter;
    cnt = 0;
    for (iter = 0; iter < 600; iter++) {
        tosh_run_next_task();
    }
    halt();
}
"""


def _aes_source() -> str:
    """Build the AES-128 source with the real S-box and Rcon tables."""
    sbox = _AES_SBOX
    sbox_rows = []
    for row in range(0, 256, 16):
        sbox_rows.append(
            ", ".join(f"0x{v:02x}" for v in sbox[row : row + 16])
        )
    sbox_init = ",\n    ".join(sbox_rows)
    rcon = ", ".join(f"0x{v:02x}" for v in _AES_RCON)
    return f"""
// AES-128 block encryption (FIPS-197), the Crypto++ benchmark of the
// paper.  Encrypts the 16-byte `state` in place under `round_keys`.
const u8 sbox[256] = {{
    {sbox_init}
}};
const u8 rcon[11] = {{{rcon}}};

u8 cipher_key[16] = {{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                     0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f}};
u8 state[16] = {{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}};
u8 round_keys[176];

u8 xtime(u8 x) {{
    u8 high = x & 0x80;
    u8 r = x << 1;
    if (high != 0) {{
        r = r ^ 0x1b;
    }}
    return r;
}}

void expand_key() {{
    u8 i;
    u8 pos;
    u8 t0; u8 t1; u8 t2; u8 t3;
    for (i = 0; i < 16; i++) {{
        round_keys[i] = cipher_key[i];
    }}
    for (i = 4; i < 44; i++) {{
        pos = i * 4;
        t0 = round_keys[pos - 4];
        t1 = round_keys[pos - 3];
        t2 = round_keys[pos - 2];
        t3 = round_keys[pos - 1];
        if (i % 4 == 0) {{
            u8 tmp = t0;
            t0 = sbox[t1] ^ rcon[i / 4];
            t1 = sbox[t2];
            t2 = sbox[t3];
            t3 = sbox[tmp];
        }}
        round_keys[pos] = round_keys[pos - 16] ^ t0;
        round_keys[pos + 1] = round_keys[pos - 15] ^ t1;
        round_keys[pos + 2] = round_keys[pos - 14] ^ t2;
        round_keys[pos + 3] = round_keys[pos - 13] ^ t3;
    }}
}}

void add_round_key(u8 round) {{
    u8 i;
    u8 base = round * 16;
    for (i = 0; i < 16; i++) {{
        state[i] = state[i] ^ round_keys[base + i];
    }}
}}

void sub_bytes() {{
    u8 i;
    for (i = 0; i < 16; i++) {{
        state[i] = sbox[state[i]];
    }}
}}

void shift_rows() {{
    u8 tmp;
    // row 1: rotate left by 1
    tmp = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = tmp;
    // row 2: rotate left by 2
    tmp = state[2];
    state[2] = state[10];
    state[10] = tmp;
    tmp = state[6];
    state[6] = state[14];
    state[14] = tmp;
    // row 3: rotate left by 3
    tmp = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = tmp;
}}

void mix_columns() {{
    u8 col;
    u8 a0; u8 a1; u8 a2; u8 a3;
    u8 all;
    for (col = 0; col < 4; col++) {{
        u8 base = col * 4;
        a0 = state[base];
        a1 = state[base + 1];
        a2 = state[base + 2];
        a3 = state[base + 3];
        all = a0 ^ a1 ^ a2 ^ a3;
        state[base] = state[base] ^ all ^ xtime(a0 ^ a1);
        state[base + 1] = state[base + 1] ^ all ^ xtime(a1 ^ a2);
        state[base + 2] = state[base + 2] ^ all ^ xtime(a2 ^ a3);
        state[base + 3] = state[base + 3] ^ all ^ xtime(a3 ^ a0);
    }}
}}

void aes_encrypt() {{
    u8 round;
    expand_key();
    add_round_key(0);
    for (round = 1; round < 10; round++) {{
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(round);
    }}
    sub_bytes();
    shift_rows();
    add_round_key(10);
}}

void main() {{
    u8 i;
    aes_encrypt();
    for (i = 0; i < 16; i++) {{
        radio_send(state[i]);
    }}
    halt();
}}
"""


def _make_sbox() -> list[int]:
    """Compute the AES S-box (multiplicative inverse + affine map)."""
    # Build GF(2^8) inverse table via exp/log over generator 3.
    exp = [0] * 512
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        # multiply x by 3 in GF(2^8)
        x ^= (x << 1) ^ (0x11B if x & 0x80 else 0)
        x &= 0xFF
    for i in range(255, 512):
        exp[i] = exp[i - 255]

    sbox = [0] * 256
    for value in range(256):
        inv = 0 if value == 0 else exp[255 - log[value]]
        s = inv
        result = inv
        for _ in range(4):
            s = ((s << 1) | (s >> 7)) & 0xFF
            result ^= s
        sbox[value] = result ^ 0x63
    return sbox


_AES_SBOX = _make_sbox()
_AES_RCON = [0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

AES = _aes_source()

#: name -> source, in the order of paper Figure 8.
PROGRAMS: dict[str, str] = {
    "Blink": BLINK,
    "CntToLeds": CNT_TO_LEDS,
    "CntToRfm": CNT_TO_RFM,
    "CntToLedsAndRfm": CNT_TO_LEDS_AND_RFM,
    "AES": AES,
}

#: Expected FIPS-197 appendix C.1 ciphertext for the AES program above.
AES_EXPECTED_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
