"""Solver facade: pick a backend, solve, return values + statistics.

Every solve is traced (``ilp.solve`` span) and publishes its effort
into the :mod:`repro.obs` metrics registry — iterations, LP solves,
branch-and-bound nodes — which is what ``repro profile`` and the
Figure 14/15 benches read back out.

Solves are memoised by default in a process-wide content-addressed
cache (:mod:`repro.ilp.canonical`): identical models — up to variable
naming and build order — return the original result without re-running
the simplex.  The effort counters only advance on cache misses, so
telemetry keeps describing work actually performed; hits and misses
are counted separately (``ilp.cache.*``).

On the fast path (:mod:`repro.fastpath`) a cache *near miss* — same
model structure, different warm-start hint — re-uses the memoised
optimum as the branch-and-bound incumbent when it is feasible and
strictly better than the caller's own hint (``ilp.cache.warm_starts``
counts adoptions).  A warm incumbent can only tighten pruning, never
steer the relaxation, so the solve still terminates at an optimal
solution; ``tests/test_ilp_fastpath.py`` certifies on the pinned
workloads that the answers match the reference path bit for bit.
"""

from __future__ import annotations

from ..fastpath import fastpath_enabled
from ..obs import metrics, trace
from .branch_bound import SolveResult, solve_branch_bound
from .canonical import SOLVE_CACHE, canonical_digests
from .model import IntegerProgram
from .scipy_backend import solve_scipy

BACKENDS = ("own", "scipy")

#: A memoised warm-start candidate must beat the caller's incumbent by
#: more than this margin to be adopted.
_WARM_MARGIN = 1e-6


def solve(
    problem: IntegerProgram,
    backend: str = "own",
    incumbent: dict[str, int] | None = None,
    node_limit: int = 20_000,
    cache: bool = True,
) -> SolveResult:
    """Solve a 0/1 integer program.

    ``backend="own"`` uses the instrumented pure-Python simplex +
    branch & bound (iteration counts available); ``backend="scipy"``
    uses HiGHS via :mod:`scipy.optimize` (fast, no pivot counts).
    ``incumbent`` warm-starts the own backend (e.g. with the
    preferred-register greedy allocation).  ``cache=False`` bypasses
    the canonical solve cache (and leaves it untouched).
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    digest = None
    structure = None
    with trace.span(
        "ilp.solve",
        backend=backend,
        variables=problem.num_variables,
        constraints=problem.num_constraints,
    ) as span:
        if cache:
            digest, structure = canonical_digests(
                problem, backend=backend, incumbent=incumbent, node_limit=node_limit
            )
            cached = SOLVE_CACHE.get(digest, problem)
            if cached is not None:
                span.set(status=cached.status, cached=True)
                metrics.counter("ilp.cache.hits").inc()
                return cached
            metrics.counter("ilp.cache.misses").inc()
            if backend == "own" and fastpath_enabled():
                # Near miss: a structure-identical model was already
                # solved to optimality under a different hint.  Its
                # optimum is the best incumbent this model can have —
                # adopt it (fast path only) when it is feasible here
                # and strictly better than what the caller supplied.
                warm = SOLVE_CACHE.get_warm(structure, problem)
                if (
                    warm is not None
                    and problem.is_feasible(warm)
                    and (
                        incumbent is None
                        or not problem.is_feasible(incumbent)
                        or problem.evaluate(warm)
                        < problem.evaluate(incumbent) - _WARM_MARGIN
                    )
                ):
                    incumbent = warm
                    span.set(warm_start=True)
                    metrics.counter("ilp.cache.warm_starts").inc()
        if backend == "own":
            result = solve_branch_bound(
                problem, incumbent=incumbent, node_limit=node_limit
            )
        else:
            result = solve_scipy(problem)
        span.set(status=result.status)
    if digest is not None:
        SOLVE_CACHE.put(digest, problem, result, structure=structure)
    metrics.counter("ilp.solves").inc()
    metrics.counter("ilp.simplex_iterations").inc(result.stats.simplex_iterations)
    metrics.counter("ilp.lp_solves").inc(result.stats.lp_solves)
    metrics.counter("ilp.bb_nodes").inc(result.stats.nodes)
    if result.status == "node_limit":
        metrics.counter("ilp.node_limit_hits").inc()
    if result.status == "infeasible":
        metrics.counter("ilp.infeasible").inc()
    return result
