"""Solver facade: pick a backend, solve, return values + statistics."""

from __future__ import annotations

from .branch_bound import SolveResult, solve_branch_bound
from .model import IntegerProgram
from .scipy_backend import solve_scipy

BACKENDS = ("own", "scipy")


def solve(
    problem: IntegerProgram,
    backend: str = "own",
    incumbent: dict[str, int] | None = None,
    node_limit: int = 20_000,
) -> SolveResult:
    """Solve a 0/1 integer program.

    ``backend="own"`` uses the instrumented pure-Python simplex +
    branch & bound (iteration counts available); ``backend="scipy"``
    uses HiGHS via :mod:`scipy.optimize` (fast, no pivot counts).
    ``incumbent`` warm-starts the own backend (e.g. with the
    preferred-register greedy allocation).
    """
    if backend == "own":
        return solve_branch_bound(problem, incumbent=incumbent, node_limit=node_limit)
    if backend == "scipy":
        return solve_scipy(problem)
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
