"""Solver facade: pick a backend, solve, return values + statistics.

Every solve is traced (``ilp.solve`` span) and publishes its effort
into the :mod:`repro.obs` metrics registry — iterations, LP solves,
branch-and-bound nodes — which is what ``repro profile`` and the
Figure 14/15 benches read back out.

Solves are memoised by default in a process-wide content-addressed
cache (:mod:`repro.ilp.canonical`): identical models — up to variable
naming and build order — return the original result without re-running
the simplex.  The effort counters only advance on cache misses, so
telemetry keeps describing work actually performed; hits and misses
are counted separately (``ilp.cache.*``).
"""

from __future__ import annotations

from ..obs import metrics, trace
from .branch_bound import SolveResult, solve_branch_bound
from .canonical import SOLVE_CACHE, canonical_digest
from .model import IntegerProgram
from .scipy_backend import solve_scipy

BACKENDS = ("own", "scipy")


def solve(
    problem: IntegerProgram,
    backend: str = "own",
    incumbent: dict[str, int] | None = None,
    node_limit: int = 20_000,
    cache: bool = True,
) -> SolveResult:
    """Solve a 0/1 integer program.

    ``backend="own"`` uses the instrumented pure-Python simplex +
    branch & bound (iteration counts available); ``backend="scipy"``
    uses HiGHS via :mod:`scipy.optimize` (fast, no pivot counts).
    ``incumbent`` warm-starts the own backend (e.g. with the
    preferred-register greedy allocation).  ``cache=False`` bypasses
    the canonical solve cache (and leaves it untouched).
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    digest = None
    with trace.span(
        "ilp.solve",
        backend=backend,
        variables=problem.num_variables,
        constraints=problem.num_constraints,
    ) as span:
        if cache:
            digest = canonical_digest(
                problem, backend=backend, incumbent=incumbent, node_limit=node_limit
            )
            cached = SOLVE_CACHE.get(digest, problem)
            if cached is not None:
                span.set(status=cached.status, cached=True)
                metrics.counter("ilp.cache.hits").inc()
                return cached
            metrics.counter("ilp.cache.misses").inc()
        if backend == "own":
            result = solve_branch_bound(
                problem, incumbent=incumbent, node_limit=node_limit
            )
        else:
            result = solve_scipy(problem)
        span.set(status=result.status)
    if digest is not None:
        SOLVE_CACHE.put(digest, problem, result)
    metrics.counter("ilp.solves").inc()
    metrics.counter("ilp.simplex_iterations").inc(result.stats.simplex_iterations)
    metrics.counter("ilp.lp_solves").inc(result.stats.lp_solves)
    metrics.counter("ilp.bb_nodes").inc(result.stats.nodes)
    if result.status == "node_limit":
        metrics.counter("ilp.node_limit_hits").inc()
    if result.status == "infeasible":
        metrics.counter("ilp.infeasible").inc()
    return result
