"""Integer-program model builder.

A tiny modelling layer, in the spirit of the LP files the paper feeds to
LP_solve [2]: named 0/1 variables, linear constraints, a linear
objective.  The register-allocation model builder
(:mod:`repro.regalloc.ilp_model`) targets this interface, and both
solver backends (our own simplex+branch&bound, scipy's HiGHS) consume
it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LinTerm:
    """``coefficient * variable``."""

    coeff: float
    var: str


@dataclass
class Constraint:
    """``sum(terms) sense rhs`` with sense one of ``<=``, ``>=``, ``=``."""

    terms: list[LinTerm]
    sense: str
    rhs: float
    name: str = ""

    def __post_init__(self):
        if self.sense not in ("<=", ">=", "="):
            raise ValueError(f"bad constraint sense {self.sense!r}")


@dataclass
class IntegerProgram:
    """A 0/1 integer program: minimise ``objective`` over binary vars.

    Variables are referenced by name and created on first use.  A
    variable may be *fixed* to 0 or 1 (used to pin boundary decisions to
    the old allocation).  Objectives may carry a constant term (the
    energy of the changed instructions themselves — eq. 11 — is constant
    w.r.t. the decisions, and the paper keeps it in the objective).
    """

    name: str = "ilp"
    variables: list[str] = field(default_factory=list)
    _var_index: dict[str, int] = field(default_factory=dict)
    objective: dict[str, float] = field(default_factory=dict)
    objective_constant: float = 0.0
    constraints: list[Constraint] = field(default_factory=list)
    fixed: dict[str, int] = field(default_factory=dict)

    # -- building ---------------------------------------------------------

    def var(self, name: str) -> str:
        """Declare (or re-reference) a binary variable."""
        if name not in self._var_index:
            self._var_index[name] = len(self.variables)
            self.variables.append(name)
        return name

    def fix(self, name: str, value: int) -> None:
        """Pin a variable to 0 or 1."""
        if value not in (0, 1):
            raise ValueError("binary variables can only be fixed to 0 or 1")
        self.var(name)
        self.fixed[name] = value

    def add_objective(self, name: str, coeff: float) -> None:
        self.var(name)
        self.objective[name] = self.objective.get(name, 0.0) + coeff

    def add_constraint(
        self,
        terms: list[tuple[float, str]],
        sense: str,
        rhs: float,
        name: str = "",
    ) -> Constraint:
        lin = [LinTerm(c, self.var(v)) for c, v in terms if c != 0.0]
        constraint = Constraint(terms=lin, sense=sense, rhs=rhs, name=name)
        self.constraints.append(constraint)
        return constraint

    # -- lowering ----------------------------------------------------------

    def constraint_coo(
        self,
    ) -> "tuple[list[int], list[int], list[float], list[str], list[float]]":
        """Flat COO view of the constraint system, for bulk lowering.

        Returns ``(rows, cols, coeffs, senses, rhs)`` where the first
        three lists hold one entry per term, in constraint order then
        term order — the same accumulation order the per-row reference
        lowering uses, so a bulk scatter-add reproduces its float64
        sums bit-for-bit.
        """
        index = self._var_index
        rows: list[int] = []
        cols: list[int] = []
        coeffs: list[float] = []
        senses: list[str] = []
        rhs: list[float] = []
        for i, con in enumerate(self.constraints):
            senses.append(con.sense)
            rhs.append(con.rhs)
            for term in con.terms:
                rows.append(i)
                cols.append(index[term.var])
                coeffs.append(term.coeff)
        return rows, cols, coeffs, senses, rhs

    # -- stats -------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    def evaluate(self, values: dict[str, int]) -> float:
        """Objective value (including the constant) of an assignment."""
        total = self.objective_constant
        for var, coeff in self.objective.items():
            total += coeff * values.get(var, 0)
        return total

    def is_feasible(self, values: dict[str, int], tol: float = 1e-9) -> bool:
        """Does ``values`` satisfy every constraint and fixing?"""
        for var, val in self.fixed.items():
            if values.get(var, 0) != val:
                return False
        for con in self.constraints:
            lhs = sum(t.coeff * values.get(t.var, 0) for t in con.terms)
            if con.sense == "<=" and lhs > con.rhs + tol:
                return False
            if con.sense == ">=" and lhs < con.rhs - tol:
                return False
            if con.sense == "=" and abs(lhs - con.rhs) > tol:
                return False
        return True

    def render_lp(self) -> str:
        """Render in (a subset of) LP format, for debugging and tests."""
        lines = ["/* " + self.name + " */", "min:"]
        obj = " + ".join(
            f"{coeff:g} {var}" for var, coeff in sorted(self.objective.items())
        )
        lines.append("  " + (obj or "0") + ";")
        for i, con in enumerate(self.constraints):
            terms = " + ".join(f"{t.coeff:g} {t.var}" for t in con.terms)
            label = con.name or f"c{i}"
            lines.append(f"{label}: {terms or '0'} {con.sense} {con.rhs:g};")
        for var, val in sorted(self.fixed.items()):
            lines.append(f"fix: {var} = {val};")
        lines.append("bin " + ", ".join(self.variables) + ";")
        return "\n".join(lines)
