"""0/1 integer programming: model builder, simplex, branch & bound."""

from .branch_bound import SolveResult, SolveStats, solve_branch_bound
from .canonical import SOLVE_CACHE, SolveCache, canonical_digest, canonical_form
from .model import Constraint, IntegerProgram, LinTerm
from .scipy_backend import solve_scipy
from .simplex import LPError, LPResult, SimplexStats, solve_lp
from .solver import BACKENDS, solve

__all__ = [
    "BACKENDS",
    "Constraint",
    "SOLVE_CACHE",
    "SolveCache",
    "canonical_digest",
    "canonical_form",
    "IntegerProgram",
    "LPError",
    "LPResult",
    "LinTerm",
    "SimplexStats",
    "SolveResult",
    "SolveStats",
    "solve",
    "solve_branch_bound",
    "solve_lp",
    "solve_scipy",
]
