"""0/1 branch & bound over the LP relaxation.

The reproduction's MILP engine: best-first branch & bound where each
node's bound comes from :mod:`repro.ilp.simplex`.  The solver records
the statistics the paper plots — total simplex iterations (Figure 14),
wall time per iteration (Figure 15) — and accepts a warm-start
incumbent (the preferred-register greedy solution), which is how the
paper's observation that *"the preferred register tag is a hint to the
solver and can reduce the number of iterations"* manifests here: a good
incumbent prunes most of the tree.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from ..fastpath import fastpath_enabled
from .model import IntegerProgram
from .simplex import LPResult, SimplexStats, solve_lp

_TOL = 1e-6


@dataclass
class SolveStats:
    """Statistics of one MILP solve."""

    simplex_iterations: int = 0
    lp_solves: int = 0
    nodes: int = 0
    wall_time: float = 0.0
    num_variables: int = 0
    num_constraints: int = 0

    @property
    def time_per_iteration(self) -> float:
        if self.simplex_iterations == 0:
            return 0.0
        return self.wall_time / self.simplex_iterations


@dataclass
class SolveResult:
    """Outcome of a MILP solve."""

    status: str  # "optimal" | "infeasible" | "node_limit"
    values: dict[str, int] = field(default_factory=dict)
    objective: float = 0.0
    stats: SolveStats = field(default_factory=SolveStats)


@dataclass
class _Matrices:
    c: np.ndarray
    a_ub: np.ndarray
    b_ub: np.ndarray
    a_eq: np.ndarray
    b_eq: np.ndarray
    names: list[str]


def build_matrices(problem: IntegerProgram) -> _Matrices:
    """Lower the modelling layer to dense matrices (>= rows negated)."""
    if fastpath_enabled():
        return _build_matrices_fast(problem)
    return _build_matrices_reference(problem)


def _build_matrices_reference(problem: IntegerProgram) -> _Matrices:
    """Reference lowering: one dense row allocated per constraint."""
    names = list(problem.variables)
    index = {name: j for j, name in enumerate(names)}
    n = len(names)
    c = np.zeros(n)
    for var, coeff in problem.objective.items():
        c[index[var]] = coeff

    ub_rows, ub_rhs, eq_rows, eq_rhs = [], [], [], []
    for con in problem.constraints:
        row = np.zeros(n)
        for term in con.terms:
            row[index[term.var]] += term.coeff
        if con.sense == "<=":
            ub_rows.append(row)
            ub_rhs.append(con.rhs)
        elif con.sense == ">=":
            ub_rows.append(-row)
            ub_rhs.append(-con.rhs)
        else:
            eq_rows.append(row)
            eq_rhs.append(con.rhs)
    for var, value in problem.fixed.items():
        row = np.zeros(n)
        row[index[var]] = 1.0
        eq_rows.append(row)
        eq_rhs.append(float(value))

    return _Matrices(
        c=c,
        a_ub=np.array(ub_rows) if ub_rows else np.zeros((0, n)),
        b_ub=np.array(ub_rhs) if ub_rhs else np.zeros(0),
        a_eq=np.array(eq_rows) if eq_rows else np.zeros((0, n)),
        b_eq=np.array(eq_rhs) if eq_rhs else np.zeros(0),
        names=names,
    )


def _build_matrices_fast(problem: IntegerProgram) -> _Matrices:
    """Fast lowering: one scatter-add over a COO view of all terms.

    ``np.add.at`` applies duplicate-index additions in entry order,
    which is exactly the per-row ``+=`` order of the reference
    lowering, and whole-row negation of ``>=`` constraints is exact in
    IEEE-754 — so both lowerings produce bit-equal matrices.
    """
    names = list(problem.variables)
    index = problem._var_index
    n = len(names)
    c = np.zeros(n)
    if problem.objective:
        c[[index[var] for var in problem.objective]] = list(problem.objective.values())

    rows, cols, coeffs, senses, rhs_list = problem.constraint_coo()
    n_cons = len(senses)
    dense = np.zeros((n_cons, n))
    if rows:
        np.add.at(dense, (rows, cols), coeffs)
    rhs = np.asarray(rhs_list, dtype=float) if n_cons else np.zeros(0)
    codes = np.fromiter(
        (0 if s == "<=" else 1 if s == ">=" else 2 for s in senses),
        dtype=np.int8,
        count=n_cons,
    )
    ge = codes == 1
    if ge.any():
        dense[ge] = -dense[ge]
        rhs[ge] = -rhs[ge]

    ub_mask = codes <= 1
    eq_mask = codes == 2
    a_eq = dense[eq_mask]
    b_eq = rhs[eq_mask]
    if problem.fixed:
        fixed_cols = np.asarray([index[var] for var in problem.fixed], dtype=np.intp)
        fixed_rows = np.zeros((fixed_cols.size, n))
        fixed_rows[np.arange(fixed_cols.size), fixed_cols] = 1.0
        a_eq = np.vstack([a_eq, fixed_rows]) if a_eq.shape[0] else fixed_rows
        fixed_rhs = np.asarray(list(problem.fixed.values()), dtype=float)
        b_eq = np.concatenate([b_eq, fixed_rhs])

    return _Matrices(
        c=c,
        a_ub=dense[ub_mask],
        b_ub=rhs[ub_mask],
        a_eq=a_eq,
        b_eq=b_eq,
        names=names,
    )


def solve_branch_bound(
    problem: IntegerProgram,
    incumbent: dict[str, int] | None = None,
    node_limit: int = 20_000,
) -> SolveResult:
    """Solve ``problem`` to optimality with best-first branch & bound."""
    start = time.perf_counter()
    mat = build_matrices(problem)
    n = len(mat.names)
    stats = SolveStats(
        num_variables=problem.num_variables,
        num_constraints=problem.num_constraints,
    )
    simplex_stats = SimplexStats()

    best_values: dict[str, int] | None = None
    best_objective = np.inf
    if incumbent is not None and problem.is_feasible(incumbent):
        best_values = {name: incumbent.get(name, 0) for name in mat.names}
        best_objective = problem.evaluate(best_values) - problem.objective_constant

    fast = fastpath_enabled()

    def solve_node(lo: np.ndarray, hi: np.ndarray) -> LPResult:
        # Variables fixed to 1 by branching become bound rows
        # (x_j >= 1  ->  -x_j <= -1), in ascending variable order on
        # both paths.
        a_ub = mat.a_ub
        b_ub = mat.b_ub
        if fast:
            ones = np.flatnonzero(lo > 0.5)
            if ones.size:
                extra = np.zeros((ones.size, n))
                extra[np.arange(ones.size), ones] = -1.0
                a_ub = np.vstack([a_ub, extra]) if len(a_ub) else extra
                b_ub = np.concatenate([b_ub, np.full(ones.size, -1.0)])
        else:
            extra_rows = []
            extra_rhs = []
            for j in range(n):
                if lo[j] > 0.5:
                    row = np.zeros(n)
                    row[j] = -1.0
                    extra_rows.append(row)
                    extra_rhs.append(-1.0)
            if extra_rows:
                a_ub = (
                    np.vstack([a_ub, np.array(extra_rows)]) if len(a_ub) else np.array(extra_rows)
                )
                b_ub = (
                    np.concatenate([b_ub, np.array(extra_rhs)])
                    if len(b_ub)
                    else np.array(extra_rhs)
                )
        return solve_lp(
            mat.c, a_ub, b_ub, mat.a_eq, mat.b_eq, ub=hi, stats=simplex_stats
        )

    counter = itertools.count()
    root_lo = np.zeros(n)
    root_hi = np.ones(n)
    root = solve_node(root_lo, root_hi)
    stats.lp_solves += 1
    if root.status == "infeasible":
        stats.simplex_iterations = simplex_stats.iterations
        stats.wall_time = time.perf_counter() - start
        return SolveResult(status="infeasible", stats=stats)

    heap = [(root.objective, next(counter), root_lo, root_hi, root)]
    status = "optimal"

    while heap:
        bound, _, lo, hi, relax = heapq.heappop(heap)
        if bound >= best_objective - _TOL:
            continue
        stats.nodes += 1
        if stats.nodes > node_limit:
            status = "node_limit"
            break

        frac_j = _most_fractional(relax.x)
        if frac_j is None:
            # Integral solution.
            values = {name: int(round(relax.x[j])) for j, name in enumerate(mat.names)}
            if relax.objective < best_objective - _TOL:
                best_objective = relax.objective
                best_values = values
            continue

        for branch_value in (_round_dir(relax.x[frac_j]), 1 - _round_dir(relax.x[frac_j])):
            child_lo = lo.copy()
            child_hi = hi.copy()
            if branch_value == 1:
                child_lo[frac_j] = 1.0
            else:
                child_hi[frac_j] = 0.0
            child = solve_node(child_lo, child_hi)
            stats.lp_solves += 1
            if child.status != "optimal":
                continue
            if child.objective >= best_objective - _TOL:
                continue
            frac = _most_fractional(child.x)
            if frac is None:
                values = {
                    name: int(round(child.x[j])) for j, name in enumerate(mat.names)
                }
                if child.objective < best_objective - _TOL:
                    best_objective = child.objective
                    best_values = values
            else:
                heapq.heappush(
                    heap, (child.objective, next(counter), child_lo, child_hi, child)
                )

    stats.simplex_iterations = simplex_stats.iterations
    stats.wall_time = time.perf_counter() - start
    if best_values is None:
        return SolveResult(status="infeasible", stats=stats)
    return SolveResult(
        status=status,
        values=best_values,
        objective=best_objective + problem.objective_constant,
        stats=stats,
    )


def _most_fractional(x: np.ndarray) -> int | None:
    frac = np.abs(x - np.round(x))
    j = int(np.argmax(frac))
    if frac[j] < _TOL:
        return None
    return j


def _round_dir(value: float) -> int:
    return 1 if value >= 0.5 else 0
