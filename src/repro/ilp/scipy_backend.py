"""scipy/HiGHS backend for the integer-program models.

The paper solves its ILPs with LP_solve; our primary artefact is the
pure-Python solver in :mod:`repro.ilp.branch_bound` (it exposes the
iteration counts Figures 14-15 plot).  For larger end-to-end runs this
module offers ``scipy.optimize.milp`` (HiGHS) as a fast drop-in
backend producing the same optima.
"""

from __future__ import annotations

import time

import numpy as np

from .branch_bound import SolveResult, SolveStats, build_matrices
from .model import IntegerProgram


def solve_scipy(problem: IntegerProgram) -> SolveResult:
    """Solve with ``scipy.optimize.milp``; same result contract as
    :func:`repro.ilp.branch_bound.solve_branch_bound`."""
    from scipy.optimize import Bounds, LinearConstraint, milp

    start = time.perf_counter()
    mat = build_matrices(problem)
    n = len(mat.names)
    stats = SolveStats(
        num_variables=problem.num_variables,
        num_constraints=problem.num_constraints,
    )
    if n == 0:
        stats.wall_time = time.perf_counter() - start
        return SolveResult(
            status="optimal",
            values={},
            objective=problem.objective_constant,
            stats=stats,
        )

    constraints = []
    if len(mat.a_ub):
        constraints.append(
            LinearConstraint(mat.a_ub, -np.inf * np.ones(len(mat.b_ub)), mat.b_ub)
        )
    if len(mat.a_eq):
        constraints.append(LinearConstraint(mat.a_eq, mat.b_eq, mat.b_eq))

    result = milp(
        c=mat.c,
        constraints=constraints,
        integrality=np.ones(n),
        bounds=Bounds(np.zeros(n), np.ones(n)),
    )
    stats.wall_time = time.perf_counter() - start
    if not result.success:
        return SolveResult(status="infeasible", stats=stats)
    values = {name: int(round(result.x[j])) for j, name in enumerate(mat.names)}
    return SolveResult(
        status="optimal",
        values=values,
        objective=float(result.fun) + problem.objective_constant,
        stats=stats,
    )
