"""A dense two-phase primal simplex LP solver.

This is the reproduction's stand-in for the LP engine inside LP_solve
5.5 [paper ref 2].  Every pivot is counted, which is exactly the
"number of iterations" quantity Figures 14 and 15 of the paper report.

Solves::

    min  c^T x
    s.t. A_ub x <= b_ub
         A_eq x  = b_eq
         0 <= x <= ub

Upper bounds are handled by adding explicit rows (fine at the problem
sizes the register-allocation models produce for a chunk).

Two implementations of the pivot kernel coexist (see
:mod:`repro.fastpath`):

* the **reference** kernel — the original per-row Python loops, kept
  verbatim as the correctness oracle;
* the **fast** kernel — the same arithmetic expressed as whole-matrix
  numpy operations (masked outer-product row elimination, vectorized
  entering/leaving selection).

Both kernels perform identical IEEE-754 operations in identical order,
so solutions, objectives, *and pivot counts* are bit-for-bit equal —
``tests/test_ilp_fastpath.py`` certifies this differentially.

Pivot selection is Dantzig's rule (most-negative reduced cost, lowest
column index on ties) with the leaving row chosen by minimum ratio,
ties broken deterministically by Bland ordering (lowest basis index,
then row).  Dantzig's rule can cycle on degenerate tableaus, so after
``DEGENERATE_BLAND_AFTER`` consecutive degenerate pivots (zero-ratio
steps that leave the objective unchanged) the entering rule switches to
Bland's anti-cycling rule — lowest eligible column index — until
progress resumes, which guarantees termination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fastpath import fastpath_enabled

_TOL = 1e-9

#: Consecutive degenerate (zero-ratio) pivots tolerated under Dantzig's
#: rule before switching the entering selection to Bland's anti-cycling
#: ordering.  Large enough that well-behaved problems never switch, so
#: their pivot sequences are unchanged.
DEGENERATE_BLAND_AFTER = 24


class LPError(Exception):
    """Raised on infeasible or unbounded linear programs."""


@dataclass
class LPResult:
    x: np.ndarray
    objective: float
    iterations: int
    status: str  # "optimal" | "infeasible" | "unbounded"


@dataclass
class SimplexStats:
    """Cumulative pivot counts across many solves (branch & bound)."""

    iterations: int = 0
    solves: int = 0


class _Unbounded(Exception):
    pass


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray | None,
    b_ub: np.ndarray | None,
    a_eq: np.ndarray | None,
    b_eq: np.ndarray | None,
    ub: np.ndarray | None = None,
    stats: SimplexStats | None = None,
    max_iterations: int = 200_000,
    bland_after: int | None = None,
) -> LPResult:
    """Solve the LP; raises :class:`LPError` only on internal failure,
    infeasible/unbounded are reported via ``status``."""
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    fast = fastpath_enabled()
    if bland_after is None:
        bland_after = DEGENERATE_BLAND_AFTER

    if fast:
        a, b, codes = _assemble_fast(a_ub, b_ub, a_eq, b_eq, ub, n)
        m = a.shape[0]
    else:
        rows_a = []
        rows_b = []
        senses = []
        if a_ub is not None and len(a_ub):
            for row, rhs in zip(np.asarray(a_ub, dtype=float), np.asarray(b_ub, dtype=float)):
                rows_a.append(row)
                rows_b.append(rhs)
                senses.append("<=")
        if ub is not None:
            for j, bound in enumerate(np.asarray(ub, dtype=float)):
                if np.isfinite(bound):
                    row = np.zeros(n)
                    row[j] = 1.0
                    rows_a.append(row)
                    rows_b.append(bound)
                    senses.append("<=")
        if a_eq is not None and len(a_eq):
            for row, rhs in zip(np.asarray(a_eq, dtype=float), np.asarray(b_eq, dtype=float)):
                rows_a.append(row)
                rows_b.append(rhs)
                senses.append("=")
        m = len(rows_a)

    if m == 0:
        # Unconstrained binary relaxation: minimise by setting x_j = 0
        # for c_j >= 0; negative costs would be unbounded without ub.
        if np.any(c < -_TOL):
            return LPResult(np.zeros(n), 0.0, 0, "unbounded")
        return LPResult(np.zeros(n), 0.0, 0, "optimal")

    if fast:
        # The fast path builds the augmented matrix [tableau | rhs]
        # directly — each eliminated row (and the objective row, which
        # shares the layout) then updates with a single in-place numpy
        # op — with slack/surplus/artificial placement done by bulk
        # indexing.  ``tableau``/``rhs`` are views into it, so the
        # shared phase-setup and drive-out code below mutates the same
        # storage.
        aug, artificial_rows, total, basis_arr = _place_fast(a, b, codes, n)
        tableau = aug[:, :total]
        rhs = aug[:, total]
        basis = basis_arr.tolist()
    else:
        aug = None
        a = np.vstack(rows_a)
        b = np.asarray(rows_b, dtype=float)

        # Normalise to non-negative rhs.
        for i in range(m):
            if b[i] < 0:
                a[i] = -a[i]
                b[i] = -b[i]
                senses[i] = {"<=": ">=", ">=": "<=", "=": "="}[senses[i]]

        # Build the phase-1 tableau with slack/surplus/artificial columns.
        slack_cols = sum(1 for s in senses if s in ("<=", ">="))
        artificial_rows = [i for i, s in enumerate(senses) if s in (">=", "=")]
        total = n + slack_cols + len(artificial_rows)

        tableau = np.zeros((m, total))
        tableau[:, :n] = a
        basis = [-1] * m

        col = n
        for i, sense in enumerate(senses):
            if sense == "<=":
                tableau[i, col] = 1.0
                basis[i] = col
                col += 1
            elif sense == ">=":
                tableau[i, col] = -1.0
                col += 1
        for i in artificial_rows:
            tableau[i, col] = 1.0
            basis[i] = col
            col += 1

        rhs = b.copy()
        #: Mirror of ``basis`` as an array, maintained by both pivot
        #: kernels; the fast leaving-row tie-break indexes it in bulk.
        basis_arr = np.asarray(basis, dtype=np.intp)
    iterations = 0

    def pivot(tab, rhs_vec, obj, basis_list, col_in, row_out):
        """Reference pivot kernel: per-row elimination loop."""
        nonlocal iterations
        iterations += 1
        pivot_val = tab[row_out, col_in]
        tab[row_out] /= pivot_val
        rhs_vec[row_out] /= pivot_val
        for r in range(tab.shape[0]):
            if r != row_out and abs(tab[r, col_in]) > _TOL:
                factor = tab[r, col_in]
                tab[r] -= factor * tab[row_out]
                rhs_vec[r] -= factor * rhs_vec[row_out]
        if abs(obj[col_in]) > _TOL:
            factor = obj[col_in]
            obj[:-1] -= factor * tab[row_out]
            obj[-1] -= factor * rhs_vec[row_out]
        basis_list[row_out] = col_in
        basis_arr[row_out] = col_in

    # Buffers reused by every fast pivot, allocated once per solve so
    # steady-state pivots allocate nothing row- or column-sized.  The
    # per-row views are hoisted too: the elimination loop then pays no
    # slicing cost per touched row.
    if fast:
        scratch_row = np.empty(total + 1)
        row_views = [aug[r] for r in range(m)]
        abs_buf = np.empty(m)
        touch_buf = np.empty(m, dtype=bool)
    else:
        scratch_row = None
        row_views = None
        abs_buf = None
        touch_buf = None

    def pivot_fast(obj, basis_list, col_in, row_out, column):
        """Fast pivot kernel: in-place row elimination on ``aug``.

        ``aug = [tableau | rhs]`` and the objective row share one
        column layout, so each row (and the objective) updates with a
        single in-place pass.  ``column`` is the contiguous copy of
        entering column ``col_in`` the ratio test already made; the
        factor snapshot taken from it equals the reference kernel's
        sequential ``tab[r, col_in]`` reads (row ``row_out``, the only
        row normalisation touches, is zeroed out of the snapshot).  The
        eliminated rows — which the reference kernel finds with its
        per-row scalar ``abs`` probe, its main cost — are selected with
        one vectorized tolerance test; each then gets the identical
        ``row - factor * pivot_row`` two-rounding float64 update via
        the preallocated scratch row, so tableaus stay bit-equal
        between kernels.
        """
        nonlocal iterations
        iterations += 1
        pivot_row = row_views[row_out]
        pivot_val = pivot_row[col_in]
        pivot_row /= pivot_val
        factors = column
        factors[row_out] = 0.0
        np.absolute(factors, out=abs_buf)
        np.greater(abs_buf, _TOL, out=touch_buf)
        for r in touch_buf.nonzero()[0]:
            row = row_views[r]
            factor = factors[r]
            # Two thirds of the factors in these 0/1 incidence-style
            # tableaus are exactly ±1, where the update collapses to a
            # single one-pass ufunc: 1.0*x is the exact identity, and
            # IEEE-754 defines x - (-p) == x + p bit for bit, so both
            # shortcuts reproduce the reference multiply-then-subtract
            # exactly.
            if factor == 1.0:
                np.subtract(row, pivot_row, out=row)
            elif factor == -1.0:
                np.add(row, pivot_row, out=row)
            else:
                np.multiply(pivot_row, factor, out=scratch_row)
                np.subtract(row, scratch_row, out=row)
        if abs(obj[col_in]) > _TOL:
            np.multiply(pivot_row, obj[col_in], out=scratch_row)
            np.subtract(obj, scratch_row, out=obj)
        basis_list[row_out] = col_in
        basis_arr[row_out] = col_in

    def run_phase(tab, rhs_vec, obj, basis_list, allowed_cols):
        """Reference phase driver: Python-loop pivot selection."""
        nonlocal iterations
        degenerate_run = 0
        while True:
            if iterations > max_iterations:
                raise LPError("simplex iteration limit exceeded")
            # Dantzig rule; Bland anti-cycling ordering under sustained
            # degeneracy.
            reduced = obj[:-1]
            candidates = [j for j in allowed_cols if reduced[j] < -_TOL]
            if not candidates:
                return
            if degenerate_run >= bland_after:
                col_in = min(candidates)
            else:
                col_in = min(candidates, key=lambda j, r=reduced: (r[j], j))
            ratios = []
            for r in range(tab.shape[0]):
                if tab[r, col_in] > _TOL:
                    ratios.append((rhs_vec[r] / tab[r, col_in], basis_list[r], r))
            if not ratios:
                raise _Unbounded()
            ratios.sort()
            min_ratio, _, row_out = ratios[0]
            if min_ratio < _TOL:
                degenerate_run += 1
            else:
                degenerate_run = 0
            pivot(tab, rhs_vec, obj, basis_list, col_in, row_out)

    def run_phase_fast(tab, rhs_vec, obj, basis_list, allowed_cols):
        """Fast phase driver: vectorized pivot selection over ``aug``.

        Selection order matches the reference driver exactly —
        ``np.argmin`` returns the *first* (lowest-index) minimiser, the
        ratio tie-break indexes the same ``basis`` values the reference
        tuple sort compares — so both drivers pick the same pivot at
        every step.
        """
        nonlocal iterations
        degenerate_run = 0
        allowed_mask = np.zeros(total, dtype=bool)
        allowed_mask[allowed_cols] = True
        rhs_col = aug[:, total]
        eligible_buf = np.empty(total, dtype=bool)
        column = np.empty(m)
        sel_buf = np.empty(total)
        pos_buf = np.empty(m, dtype=bool)
        ratio_buf = np.empty(m)
        basis_buf = np.empty(m, dtype=np.intp)
        basis_sentinel = np.iinfo(np.intp).max
        while True:
            if iterations > max_iterations:
                raise LPError("simplex iteration limit exceeded")
            reduced = obj[:total]
            np.less(reduced, -_TOL, out=eligible_buf)
            eligible_buf &= allowed_mask
            if not eligible_buf.any():
                return
            if degenerate_run >= bland_after:
                # Bland: lowest eligible column == first True.
                col_in = int(eligible_buf.argmax())
            else:
                # Dantzig via masked argmin: ineligible columns are
                # +inf, and argmin returns the first (lowest-index)
                # minimiser — the reference's (value, index) min.
                sel_buf.fill(np.inf)
                np.copyto(sel_buf, reduced, where=eligible_buf)
                col_in = int(sel_buf.argmin())
            np.copyto(column, aug[:, col_in])
            np.greater(column, _TOL, out=pos_buf)
            if not pos_buf.any():
                raise _Unbounded()
            ratio_buf.fill(np.inf)
            np.divide(rhs_col, column, out=ratio_buf, where=pos_buf)
            min_ratio = ratio_buf.min()
            # Exact-equality ratio ties broken by lowest basis entry,
            # again via masked argmin (basis entries are distinct, so
            # the reference's (ratio, basis, row) sort never reaches
            # its row component).
            np.equal(ratio_buf, min_ratio, out=pos_buf)
            basis_buf.fill(basis_sentinel)
            np.copyto(basis_buf, basis_arr, where=pos_buf)
            row_out = int(basis_buf.argmin())
            if min_ratio < _TOL:
                degenerate_run += 1
            else:
                degenerate_run = 0
            pivot_fast(obj, basis_list, col_in, row_out, column)

    phase = run_phase_fast if fast else run_phase

    # Phase 1: minimise the sum of artificial variables.
    art_start = total - len(artificial_rows)
    obj1 = np.zeros(total + 1)
    obj1[art_start:total] = 1.0  # phase-1 cost: sum of artificials
    for i in artificial_rows:
        obj1[:-1] -= tableau[i]
        obj1[-1] -= rhs[i]
    allowed = list(range(total))
    try:
        phase(tableau, rhs, obj1, basis, allowed)
    except _Unbounded:  # pragma: no cover - phase 1 is always bounded
        return LPResult(np.zeros(n), 0.0, iterations, "infeasible")
    if -obj1[-1] > 1e-7:
        _bump(stats, iterations)
        return LPResult(np.zeros(n), 0.0, iterations, "infeasible")

    # Drive remaining artificial variables out of the basis.  Rare and
    # cheap, so both modes share the reference kernel.
    for r in range(m):
        if basis[r] >= art_start:
            for j in range(art_start):
                if abs(tableau[r, j]) > _TOL:
                    pivot(tableau, rhs, obj1, basis, j, r)
                    break

    # Phase 2.
    obj2 = np.zeros(total + 1)
    obj2[:n] = c
    for r in range(m):
        j = basis[r]
        if j < total and abs(obj2[j]) > _TOL:
            factor = obj2[j]
            obj2[:-1] -= factor * tableau[r]
            obj2[-1] -= factor * rhs[r]
    allowed = list(range(art_start))
    try:
        phase(tableau, rhs, obj2, basis, allowed)
    except _Unbounded:
        _bump(stats, iterations)
        return LPResult(np.zeros(n), 0.0, iterations, "unbounded")

    x = np.zeros(total)
    for r in range(m):
        if basis[r] < total:
            x[basis[r]] = rhs[r]
    _bump(stats, iterations)
    return LPResult(x[:n], float(np.dot(c, x[:n])), iterations, "optimal")


def _assemble_fast(
    a_ub: np.ndarray | None,
    b_ub: np.ndarray | None,
    a_eq: np.ndarray | None,
    b_eq: np.ndarray | None,
    ub: np.ndarray | None,
    n: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bulk constraint-row assembly for the fast path.

    Returns ``(a, b, codes)`` with rows in the exact order the
    reference loops emit them (``a_ub`` block, finite ``ub`` bound
    rows, ``a_eq`` block) and senses encoded as 0 (``<=``), 1 (``>=``),
    2 (``=``).  Rows with negative rhs are whole-row negated — exact in
    IEEE-754 — and their inequality sense flipped, matching the
    reference normalisation element-for-element.
    """
    blocks = []
    rhs_parts = []
    code_parts = []
    if a_ub is not None and len(a_ub):
        arr = np.asarray(a_ub, dtype=float)
        blocks.append(arr)
        rhs_parts.append(np.asarray(b_ub, dtype=float))
        code_parts.append(np.zeros(arr.shape[0], dtype=np.int8))
    if ub is not None:
        bounds = np.asarray(ub, dtype=float)
        fin = np.flatnonzero(np.isfinite(bounds))
        if fin.size:
            bound_rows = np.zeros((fin.size, n))
            bound_rows[np.arange(fin.size), fin] = 1.0
            blocks.append(bound_rows)
            rhs_parts.append(bounds[fin])
            code_parts.append(np.zeros(fin.size, dtype=np.int8))
    if a_eq is not None and len(a_eq):
        arr = np.asarray(a_eq, dtype=float)
        blocks.append(arr)
        rhs_parts.append(np.asarray(b_eq, dtype=float))
        code_parts.append(np.full(arr.shape[0], 2, dtype=np.int8))
    if not blocks:
        return np.zeros((0, n)), np.zeros(0), np.zeros(0, dtype=np.int8)
    a = np.vstack(blocks)
    b = np.concatenate(rhs_parts)
    codes = np.concatenate(code_parts)

    neg = b < 0
    if neg.any():
        a[neg] = -a[neg]
        b[neg] = -b[neg]
        flip = neg & (codes != 2)
        codes[flip] ^= 1  # "<=" (0) <-> ">=" (1)
    return a, b, codes


def _place_fast(
    a: np.ndarray, b: np.ndarray, codes: np.ndarray, n: int
) -> tuple[np.ndarray, list[int], int, np.ndarray]:
    """Build the augmented phase-1 tableau with bulk column placement.

    Slack/surplus columns go to inequality rows in row order, then
    artificial columns to ``>=``/``=`` rows in row order — the same
    column numbering the reference placement loops produce.  Returns
    ``(aug, artificial_rows, total, basis_arr)``.
    """
    m = a.shape[0]
    slack_rows = np.flatnonzero(codes <= 1)
    art_rows = np.flatnonzero(codes >= 1)
    total = n + slack_rows.size + art_rows.size
    aug = np.zeros((m, total + 1))
    aug[:, :n] = a
    aug[:, total] = b

    slack_cols = n + np.arange(slack_rows.size)
    le = codes[slack_rows] == 0
    aug[slack_rows, slack_cols] = np.where(le, 1.0, -1.0)
    art_cols = n + slack_rows.size + np.arange(art_rows.size)
    aug[art_rows, art_cols] = 1.0

    basis_arr = np.full(m, -1, dtype=np.intp)
    basis_arr[slack_rows[le]] = slack_cols[le]
    basis_arr[art_rows] = art_cols
    return aug, art_rows.tolist(), total, basis_arr


def _bump(stats: SimplexStats | None, iterations: int) -> None:
    if stats is not None:
        stats.iterations += iterations
        stats.solves += 1
