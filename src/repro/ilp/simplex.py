"""A dense two-phase primal simplex LP solver.

This is the reproduction's stand-in for the LP engine inside LP_solve
5.5 [paper ref 2].  It is written for clarity and instrumentation
rather than speed: every pivot is counted, which is exactly the
"number of iterations" quantity Figures 14 and 15 of the paper report.

Solves::

    min  c^T x
    s.t. A_ub x <= b_ub
         A_eq x  = b_eq
         0 <= x <= ub

Upper bounds are handled by adding explicit rows (fine at the problem
sizes the register-allocation models produce for a chunk).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_TOL = 1e-9


class LPError(Exception):
    """Raised on infeasible or unbounded linear programs."""


@dataclass
class LPResult:
    x: np.ndarray
    objective: float
    iterations: int
    status: str  # "optimal" | "infeasible" | "unbounded"


@dataclass
class SimplexStats:
    """Cumulative pivot counts across many solves (branch & bound)."""

    iterations: int = 0
    solves: int = 0


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray | None,
    b_ub: np.ndarray | None,
    a_eq: np.ndarray | None,
    b_eq: np.ndarray | None,
    ub: np.ndarray | None = None,
    stats: SimplexStats | None = None,
    max_iterations: int = 200_000,
) -> LPResult:
    """Solve the LP; raises :class:`LPError` only on internal failure,
    infeasible/unbounded are reported via ``status``."""
    c = np.asarray(c, dtype=float)
    n = c.shape[0]

    rows_a = []
    rows_b = []
    senses = []
    if a_ub is not None and len(a_ub):
        for row, rhs in zip(np.asarray(a_ub, dtype=float), np.asarray(b_ub, dtype=float)):
            rows_a.append(row)
            rows_b.append(rhs)
            senses.append("<=")
    if ub is not None:
        for j, bound in enumerate(np.asarray(ub, dtype=float)):
            if np.isfinite(bound):
                row = np.zeros(n)
                row[j] = 1.0
                rows_a.append(row)
                rows_b.append(bound)
                senses.append("<=")
    if a_eq is not None and len(a_eq):
        for row, rhs in zip(np.asarray(a_eq, dtype=float), np.asarray(b_eq, dtype=float)):
            rows_a.append(row)
            rows_b.append(rhs)
            senses.append("=")

    m = len(rows_a)
    if m == 0:
        # Unconstrained binary relaxation: minimise by setting x_j = 0
        # for c_j >= 0; negative costs would be unbounded without ub.
        if np.any(c < -_TOL):
            return LPResult(np.zeros(n), 0.0, 0, "unbounded")
        return LPResult(np.zeros(n), 0.0, 0, "optimal")

    a = np.vstack(rows_a)
    b = np.asarray(rows_b, dtype=float)

    # Normalise to non-negative rhs.
    for i in range(m):
        if b[i] < 0:
            a[i] = -a[i]
            b[i] = -b[i]
            senses[i] = {"<=": ">=", ">=": "<=", "=": "="}[senses[i]]

    # Build the phase-1 tableau with slack/surplus/artificial columns.
    slack_cols = sum(1 for s in senses if s in ("<=", ">="))
    artificial_rows = [i for i, s in enumerate(senses) if s in (">=", "=")]
    total = n + slack_cols + len(artificial_rows)

    tableau = np.zeros((m, total))
    tableau[:, :n] = a
    basis = [-1] * m

    col = n
    for i, sense in enumerate(senses):
        if sense == "<=":
            tableau[i, col] = 1.0
            basis[i] = col
            col += 1
        elif sense == ">=":
            tableau[i, col] = -1.0
            col += 1
    for i in artificial_rows:
        tableau[i, col] = 1.0
        basis[i] = col
        col += 1

    rhs = b.copy()
    iterations = 0

    def pivot(tab, rhs_vec, obj, basis_list, col_in, row_out):
        nonlocal iterations
        iterations += 1
        pivot_val = tab[row_out, col_in]
        tab[row_out] /= pivot_val
        rhs_vec[row_out] /= pivot_val
        for r in range(tab.shape[0]):
            if r != row_out and abs(tab[r, col_in]) > _TOL:
                factor = tab[r, col_in]
                tab[r] -= factor * tab[row_out]
                rhs_vec[r] -= factor * rhs_vec[row_out]
        if abs(obj[col_in]) > _TOL:
            factor = obj[col_in]
            obj[:-1] -= factor * tab[row_out]
            obj[-1] -= factor * rhs_vec[row_out]
        basis_list[row_out] = col_in

    def run_phase(tab, rhs_vec, obj, basis_list, allowed_cols):
        nonlocal iterations
        while True:
            if iterations > max_iterations:
                raise LPError("simplex iteration limit exceeded")
            # Dantzig rule with Bland fallback under degeneracy.
            reduced = obj[:-1]
            candidates = [j for j in allowed_cols if reduced[j] < -_TOL]
            if not candidates:
                return
            col_in = min(candidates, key=lambda j, r=reduced: (r[j], j))
            ratios = []
            for r in range(tab.shape[0]):
                if tab[r, col_in] > _TOL:
                    ratios.append((rhs_vec[r] / tab[r, col_in], basis_list[r], r))
            if not ratios:
                raise _Unbounded()
            ratios.sort()
            _, _, row_out = ratios[0]
            pivot(tab, rhs_vec, obj, basis_list, col_in, row_out)

    class _Unbounded(Exception):
        pass

    # Phase 1: minimise the sum of artificial variables.
    art_start = total - len(artificial_rows)
    obj1 = np.zeros(total + 1)
    obj1[art_start:total] = 1.0  # phase-1 cost: sum of artificials
    for i in artificial_rows:
        obj1[:-1] -= tableau[i]
        obj1[-1] -= rhs[i]
    allowed = list(range(total))
    try:
        run_phase(tableau, rhs, obj1, basis, allowed)
    except _Unbounded:  # pragma: no cover - phase 1 is always bounded
        return LPResult(np.zeros(n), 0.0, iterations, "infeasible")
    if -obj1[-1] > 1e-7:
        _bump(stats, iterations)
        return LPResult(np.zeros(n), 0.0, iterations, "infeasible")

    # Drive remaining artificial variables out of the basis.
    for r in range(m):
        if basis[r] >= art_start:
            for j in range(art_start):
                if abs(tableau[r, j]) > _TOL:
                    pivot(tableau, rhs, obj1, basis, j, r)
                    break

    # Phase 2.
    obj2 = np.zeros(total + 1)
    obj2[:n] = c
    for r in range(m):
        j = basis[r]
        if j < total and abs(obj2[j]) > _TOL:
            factor = obj2[j]
            obj2[:-1] -= factor * tableau[r]
            obj2[-1] -= factor * rhs[r]
    allowed = list(range(art_start))
    try:
        run_phase(tableau, rhs, obj2, basis, allowed)
    except _Unbounded:
        _bump(stats, iterations)
        return LPResult(np.zeros(n), 0.0, iterations, "unbounded")

    x = np.zeros(total)
    for r in range(m):
        if basis[r] < total:
            x[basis[r]] = rhs[r]
    _bump(stats, iterations)
    return LPResult(x[:n], float(np.dot(c, x[:n])), iterations, "optimal")


def _bump(stats: SimplexStats | None, iterations: int) -> None:
    if stats is not None:
        stats.iterations += iterations
        stats.solves += 1
