"""Canonicalisation and content-addressed caching of integer programs.

The fleet service plans many updates whose register-allocation ILPs are
frequently *identical up to variable naming* — the same function edited
the same way in two jobs builds the same chunk model with different
vreg uids.  :func:`canonical_form` renders an
:class:`~repro.ilp.model.IntegerProgram` into a name-free canonical
text: variables become their first-use indices, constraint terms are
sorted by variable index, and the constraints themselves are sorted by
their canonical rendering (so build order does not matter either).
Hashing that text gives a content address under which
:class:`SolveCache` memoises :class:`~repro.ilp.branch_bound
.SolveResult`s.

Correctness notes:

* the solver inputs that can change the *answer* — backend, node
  limit, and the warm-start incumbent — are folded into the key, so a
  hit is exact, never heuristic;
* cached values are re-keyed onto the requesting problem's variable
  names and returned as a fresh dict, so callers can mutate their
  result without poisoning the cache;
* statistics are replayed from the original solve (they describe the
  work the answer *cost*, not the lookup).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, replace

from .branch_bound import SolveResult
from .model import IntegerProgram


def canonical_form(
    problem: IntegerProgram,
    backend: str = "",
    incumbent: dict[str, int] | None = None,
    node_limit: int = 0,
) -> str:
    """Name-free canonical text of a solve request."""
    index = {name: i for i, name in enumerate(problem.variables)}
    lines = [f"vars {len(problem.variables)}"]
    lines.append(f"backend {backend} node_limit {node_limit}")
    obj = sorted(
        (index[name], coeff)
        for name, coeff in problem.objective.items()
        if coeff != 0.0
    )
    lines.append(
        "min " + " ".join(f"{i}:{coeff!r}" for i, coeff in obj)
        + f" + {problem.objective_constant!r}"
    )
    lines.append(
        "fixed "
        + " ".join(
            f"{i}:{value}"
            for i, value in sorted(
                (index[name], value) for name, value in problem.fixed.items()
            )
        )
    )
    rendered = []
    for constraint in problem.constraints:
        terms = sorted((index[t.var], t.coeff) for t in constraint.terms)
        rendered.append(
            " ".join(f"{i}:{coeff!r}" for i, coeff in terms)
            + f" {constraint.sense} {constraint.rhs!r}"
        )
    lines.extend(sorted(rendered))
    if incumbent:
        warm = sorted(
            (index[name], value)
            for name, value in incumbent.items()
            if name in index
        )
        lines.append("incumbent " + " ".join(f"{i}:{v}" for i, v in warm))
    return "\n".join(lines)


def canonical_digest(
    problem: IntegerProgram,
    backend: str = "",
    incumbent: dict[str, int] | None = None,
    node_limit: int = 0,
) -> str:
    """SHA-256 content address of a solve request."""
    form = canonical_form(
        problem, backend=backend, incumbent=incumbent, node_limit=node_limit
    )
    return hashlib.sha256(form.encode("utf-8")).hexdigest()


@dataclass
class _CachedSolve:
    """A solve result keyed by canonical variable index."""

    status: str
    objective: float
    values_by_index: tuple[tuple[int, int], ...]
    stats: object


class SolveCache:
    """Bounded LRU of solve results, keyed by canonical digest."""

    def __init__(self, maxsize: int = 4096):
        self.maxsize = maxsize
        self._entries: OrderedDict[str, _CachedSolve] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def get(self, digest: str, problem: IntegerProgram) -> SolveResult | None:
        """The memoised result re-keyed onto ``problem``'s names."""
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        names = problem.variables
        values = {names[i]: value for i, value in entry.values_by_index}
        return SolveResult(
            status=entry.status,
            values=values,
            objective=entry.objective,
            stats=replace(entry.stats),  # type: ignore[type-var]
        )

    def put(self, digest: str, problem: IntegerProgram, result: SolveResult) -> None:
        index = {name: i for i, name in enumerate(problem.variables)}
        values = tuple(
            sorted(
                (index[name], value)
                for name, value in result.values.items()
                if name in index
            )
        )
        self._entries[digest] = _CachedSolve(
            status=result.status,
            objective=result.objective,
            values_by_index=values,
            stats=replace(result.stats),  # type: ignore[type-var]
        )
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)


#: Process-wide solve cache used by :func:`repro.ilp.solver.solve`.
SOLVE_CACHE = SolveCache()


__all__ = [
    "SOLVE_CACHE",
    "SolveCache",
    "canonical_digest",
    "canonical_form",
]
