"""Canonicalisation and content-addressed caching of integer programs.

The fleet service plans many updates whose register-allocation ILPs are
frequently *identical up to variable naming* — the same function edited
the same way in two jobs builds the same chunk model with different
vreg uids.  :func:`canonical_form` renders an
:class:`~repro.ilp.model.IntegerProgram` into a name-free canonical
text: variables become their first-use indices, constraint terms are
sorted by variable index, and the constraints themselves are sorted by
their canonical rendering (so build order does not matter either).
Hashing that text gives a content address under which
:class:`SolveCache` memoises :class:`~repro.ilp.branch_bound
.SolveResult`s.

Correctness notes:

* the solver inputs that can change the *answer* — backend, node
  limit, and the warm-start incumbent — are folded into the key, so a
  hit is exact, never heuristic;
* cached values are re-keyed onto the requesting problem's variable
  names and returned as a fresh dict, so callers can mutate their
  result without poisoning the cache;
* statistics are replayed from the original solve (they describe the
  work the answer *cost*, not the lookup).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, replace

from .branch_bound import SolveResult
from .model import IntegerProgram


def canonical_form(
    problem: IntegerProgram,
    backend: str = "",
    incumbent: dict[str, int] | None = None,
    node_limit: int = 0,
) -> str:
    """Name-free canonical text of a solve request."""
    index = {name: i for i, name in enumerate(problem.variables)}
    lines = [f"vars {len(problem.variables)}"]
    lines.append(f"backend {backend} node_limit {node_limit}")
    obj = sorted(
        (index[name], coeff)
        for name, coeff in problem.objective.items()
        if coeff != 0.0
    )
    lines.append(
        "min " + " ".join(f"{i}:{coeff!r}" for i, coeff in obj)
        + f" + {problem.objective_constant!r}"
    )
    lines.append(
        "fixed "
        + " ".join(
            f"{i}:{value}"
            for i, value in sorted(
                (index[name], value) for name, value in problem.fixed.items()
            )
        )
    )
    rendered = []
    for constraint in problem.constraints:
        terms = sorted((index[t.var], t.coeff) for t in constraint.terms)
        rendered.append(
            " ".join(f"{i}:{coeff!r}" for i, coeff in terms)
            + f" {constraint.sense} {constraint.rhs!r}"
        )
    lines.extend(sorted(rendered))
    if incumbent:
        warm = sorted(
            (index[name], value)
            for name, value in incumbent.items()
            if name in index
        )
        lines.append("incumbent " + " ".join(f"{i}:{v}" for i, v in warm))
    return "\n".join(lines)


def canonical_digest(
    problem: IntegerProgram,
    backend: str = "",
    incumbent: dict[str, int] | None = None,
    node_limit: int = 0,
) -> str:
    """SHA-256 content address of a solve request."""
    form = canonical_form(
        problem, backend=backend, incumbent=incumbent, node_limit=node_limit
    )
    return hashlib.sha256(form.encode("utf-8")).hexdigest()


def canonical_digests(
    problem: IntegerProgram,
    backend: str = "",
    incumbent: dict[str, int] | None = None,
    node_limit: int = 0,
) -> tuple[str, str]:
    """``(exact, structure)`` digests of a solve request, in one render.

    The *exact* digest is :func:`canonical_digest` — it folds in the
    warm-start incumbent, so equal digests mean equal answers.  The
    *structure* digest drops only the incumbent line: two requests with
    equal structure digests pose the same model (same canonical
    variable indexing included) and differ at most in the hint given to
    the solver.  The canonical form appends the incumbent line last, so
    the structure text is a prefix of the exact text and both hashes
    come from a single render.
    """
    structure_form = canonical_form(
        problem, backend=backend, incumbent=None, node_limit=node_limit
    )
    structure = hashlib.sha256(structure_form.encode("utf-8")).hexdigest()
    if not incumbent:
        return structure, structure
    index = {name: i for i, name in enumerate(problem.variables)}
    warm = sorted(
        (index[name], value) for name, value in incumbent.items() if name in index
    )
    exact_form = (
        structure_form + "\nincumbent " + " ".join(f"{i}:{v}" for i, v in warm)
    )
    exact = hashlib.sha256(exact_form.encode("utf-8")).hexdigest()
    return exact, structure


@dataclass
class _CachedSolve:
    """A solve result keyed by canonical variable index."""

    status: str
    objective: float
    values_by_index: tuple[tuple[int, int], ...]
    stats: object


class SolveCache:
    """Bounded LRU of solve results, keyed by canonical digest.

    A secondary index maps *structure* digests (the canonical form
    minus the incumbent line — see :func:`canonical_digests`) to the
    most recently memoised exact entry of that structure.  A *near
    miss* — same model, different warm-start hint — can then recover
    the previous optimum as a warm-start incumbent via
    :meth:`get_warm` instead of solving from scratch.
    """

    def __init__(self, maxsize: int = 4096):
        self.maxsize = maxsize
        self._entries: OrderedDict[str, _CachedSolve] = OrderedDict()
        self._by_structure: dict[str, str] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._by_structure.clear()
        self.hits = 0
        self.misses = 0

    def get(self, digest: str, problem: IntegerProgram) -> SolveResult | None:
        """The memoised result re-keyed onto ``problem``'s names."""
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        names = problem.variables
        values = {names[i]: value for i, value in entry.values_by_index}
        return SolveResult(
            status=entry.status,
            values=values,
            objective=entry.objective,
            stats=replace(entry.stats),  # type: ignore[type-var]
        )

    def get_warm(
        self, structure: str, problem: IntegerProgram
    ) -> dict[str, int] | None:
        """Optimal values of the last solve with this structure digest.

        Returns the values re-keyed onto ``problem``'s variable names
        (structure-equal problems share the canonical indexing), or
        ``None`` when no optimal entry of that structure is live.  The
        caller decides whether the candidate actually helps — see
        :func:`repro.ilp.solver.solve`.
        """
        exact = self._by_structure.get(structure)
        if exact is None:
            return None
        entry = self._entries.get(exact)
        if entry is None or entry.status != "optimal":
            # The exact entry fell out of the LRU (or never converged);
            # drop the stale structure mapping.
            self._by_structure.pop(structure, None)
            return None
        names = problem.variables
        return {names[i]: value for i, value in entry.values_by_index}

    def put(
        self,
        digest: str,
        problem: IntegerProgram,
        result: SolveResult,
        structure: str | None = None,
    ) -> None:
        index = {name: i for i, name in enumerate(problem.variables)}
        values = tuple(
            sorted(
                (index[name], value)
                for name, value in result.values.items()
                if name in index
            )
        )
        self._entries[digest] = _CachedSolve(
            status=result.status,
            objective=result.objective,
            values_by_index=values,
            stats=replace(result.stats),  # type: ignore[type-var]
        )
        if structure is not None:
            self._by_structure[structure] = digest
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)


#: Process-wide solve cache used by :func:`repro.ilp.solver.solve`.
SOLVE_CACHE = SolveCache()


__all__ = [
    "SOLVE_CACHE",
    "SolveCache",
    "canonical_digest",
    "canonical_digests",
    "canonical_form",
]
