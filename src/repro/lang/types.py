"""The ucc-C type system.

ucc-C deliberately mirrors what AVR sensor firmware actually uses:
unsigned 8-bit and 16-bit scalars, fixed-size arrays of those, and
``void`` for procedures.  A ``u8`` occupies one machine register; a
``u16`` occupies an even-aligned register *pair* — this is what makes
the paper's consecutive-register constraint (eq. 9) bite in the ILP
register allocator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Type:
    """A scalar or array type."""

    name: str  # "u8" | "u16" | "void"
    array_length: int | None = None  # None for scalars

    @property
    def is_void(self) -> bool:
        return self.name == "void" and self.array_length is None

    @property
    def is_array(self) -> bool:
        return self.array_length is not None

    @property
    def element_size(self) -> int:
        """Size in bytes of one element (or of the scalar itself)."""
        return {"u8": 1, "u16": 2, "void": 0}[self.name]

    @property
    def size_bytes(self) -> int:
        """Total storage size in bytes."""
        if self.is_array:
            return self.element_size * self.array_length
        return self.element_size

    @property
    def bits(self) -> int:
        return self.element_size * 8

    @property
    def max_value(self) -> int:
        """Largest representable value of the scalar/element type."""
        return (1 << self.bits) - 1

    def element_type(self) -> "Type":
        """The scalar type of one element of an array type."""
        if not self.is_array:
            raise ValueError(f"{self} is not an array type")
        return Type(self.name)

    def __str__(self) -> str:
        if self.is_array:
            return f"{self.name}[{self.array_length}]"
        return self.name


U8 = Type("u8")
U16 = Type("u16")
VOID = Type("void")

SCALARS = {"u8": U8, "u16": U16}


def scalar(name: str) -> Type:
    """Look up a scalar type by keyword name (``u8``/``u16``/``void``)."""
    if name == "void":
        return VOID
    return SCALARS[name]


def common_type(left: Type, right: Type) -> Type:
    """The usual-arithmetic-conversion result of two scalar operands.

    ucc-C promotes to the wider of the two operand types; all arithmetic
    is unsigned and wraps modulo the result width (AVR semantics).
    """
    if left.is_array or right.is_array:
        raise ValueError("arrays have no common arithmetic type")
    return U16 if U16 in (left, right) else U8
