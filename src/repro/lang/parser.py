"""Recursive-descent parser for ucc-C.

Grammar (EBNF, ``//`` comments handled by the lexer)::

    program      = { global_decl | function_def } ;
    global_decl  = ["const"] type IDENT [ "[" INT "]" ] [ "=" init ] ";" ;
    function_def = type IDENT "(" [ params ] ")" block ;
    params       = type IDENT { "," type IDENT } ;
    block        = "{" { statement } "}" ;
    statement    = decl | if | while | for | return | break ";"
                 | continue ";" | block | expr_or_assign ";" ;
    init         = expr | "{" expr { "," expr } "}" ;

Expressions use standard C precedence.  ``++``/``--`` are statement-level
sugar for ``x += 1`` / ``x -= 1`` (prefix or postfix, value unused).
"""

from __future__ import annotations

from . import ast_nodes as ast
from .errors import ParseError
from .lexer import Token, TokenKind, tokenize
from .types import Type, scalar

# Binary operator precedence, loosest binding first.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_COMPOUND_OPS = {
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "/",
    "%=": "%",
    "&=": "&",
    "|=": "|",
    "^=": "^",
    "<<=": "<<",
    ">>=": ">>",
}

_TYPE_KEYWORDS = ("u8", "u16", "void")


class Parser:
    """Parses a token stream into a :class:`~repro.lang.ast_nodes.Program`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.index = 0

    # -- token stream helpers ------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.EOF:
            self.index += 1
        return tok

    def _at(self, kind: TokenKind, value: object = None) -> bool:
        tok = self._peek()
        if tok.kind is not kind:
            return False
        return value is None or tok.value == value

    def _at_punct(self, value: str) -> bool:
        return self._at(TokenKind.PUNCT, value)

    def _at_keyword(self, value: str) -> bool:
        return self._at(TokenKind.KEYWORD, value)

    def _expect(self, kind: TokenKind, value: object = None) -> Token:
        tok = self._peek()
        if not self._at(kind, value):
            want = value if value is not None else kind.value
            raise ParseError(
                f"expected {want!r}, found {tok.text!r}", tok.location
            )
        return self._next()

    def _expect_punct(self, value: str) -> Token:
        return self._expect(TokenKind.PUNCT, value)

    # -- top level -------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while not self._at(TokenKind.EOF):
            item = self._parse_top_level()
            program.decl_order.append(item)
            if isinstance(item, ast.FunctionDef):
                program.functions.append(item)
            else:
                program.globals.append(item)
        return program

    def _parse_top_level(self):
        is_const = False
        if self._at_keyword("const"):
            self._next()
            is_const = True
        type_tok = self._peek()
        base_type = self._parse_type_name()
        name_tok = self._expect(TokenKind.IDENT)
        if self._at_punct("(") and not is_const:
            return self._parse_function_rest(type_tok, base_type, name_tok)
        return self._parse_global_rest(type_tok, base_type, name_tok, is_const)

    def _parse_type_name(self) -> Type:
        tok = self._peek()
        if tok.kind is TokenKind.KEYWORD and tok.value in _TYPE_KEYWORDS:
            self._next()
            return scalar(tok.value)
        raise ParseError(f"expected a type, found {tok.text!r}", tok.location)

    def _parse_array_suffix(self, base_type: Type) -> Type:
        if not self._at_punct("["):
            return base_type
        self._next()
        size_tok = self._expect(TokenKind.INT)
        self._expect_punct("]")
        if size_tok.value <= 0:
            raise ParseError("array length must be positive", size_tok.location)
        return Type(base_type.name, size_tok.value)

    def _parse_global_rest(self, type_tok, base_type, name_tok, is_const):
        var_type = self._parse_array_suffix(base_type)
        if var_type.is_void:
            raise ParseError("variables cannot have type void", type_tok.location)
        init = None
        init_list = None
        if self._at_punct("="):
            self._next()
            if self._at_punct("{"):
                init_list = self._parse_init_list()
            else:
                init = self.parse_expression()
        self._expect_punct(";")
        return ast.GlobalDecl(
            location=name_tok.location,
            var_type=var_type,
            name=name_tok.value,
            init=init,
            init_list=init_list,
            is_const=is_const,
        )

    def _parse_init_list(self) -> list[ast.Expr]:
        self._expect_punct("{")
        items = [self.parse_expression()]
        while self._at_punct(","):
            self._next()
            if self._at_punct("}"):  # trailing comma
                break
            items.append(self.parse_expression())
        self._expect_punct("}")
        return items

    def _parse_function_rest(self, type_tok, return_type, name_tok):
        if return_type.is_array:
            raise ParseError("functions cannot return arrays", type_tok.location)
        self._expect_punct("(")
        params: list[ast.Param] = []
        if not self._at_punct(")"):
            while True:
                ptype_tok = self._peek()
                ptype = self._parse_type_name()
                if ptype.is_void:
                    raise ParseError(
                        "parameters cannot have type void", ptype_tok.location
                    )
                pname = self._expect(TokenKind.IDENT)
                params.append(
                    ast.Param(
                        location=pname.location,
                        param_type=ptype,
                        name=pname.value,
                    )
                )
                if not self._at_punct(","):
                    break
                self._next()
        self._expect_punct(")")
        body = self.parse_block()
        return ast.FunctionDef(
            location=name_tok.location,
            return_type=return_type,
            name=name_tok.value,
            params=params,
            body=body,
        )

    # -- statements -------------------------------------------------------

    def parse_block(self) -> ast.Block:
        open_tok = self._expect_punct("{")
        statements = []
        while not self._at_punct("}"):
            if self._at(TokenKind.EOF):
                raise ParseError("unterminated block", open_tok.location)
            statements.append(self.parse_statement())
        self._expect_punct("}")
        return ast.Block(location=open_tok.location, statements=statements)

    def parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind is TokenKind.KEYWORD:
            if tok.value in _TYPE_KEYWORDS or tok.value == "const":
                return self._parse_decl_stmt()
            if tok.value == "if":
                return self._parse_if()
            if tok.value == "while":
                return self._parse_while()
            if tok.value == "for":
                return self._parse_for()
            if tok.value == "return":
                return self._parse_return()
            if tok.value == "break":
                self._next()
                self._expect_punct(";")
                return ast.BreakStmt(location=tok.location)
            if tok.value == "continue":
                self._next()
                self._expect_punct(";")
                return ast.ContinueStmt(location=tok.location)
        if self._at_punct("{"):
            return self.parse_block()
        stmt = self._parse_expr_or_assign()
        self._expect_punct(";")
        return stmt

    def _parse_decl_stmt(self) -> ast.DeclStmt:
        is_const = False
        if self._at_keyword("const"):
            self._next()
            is_const = True
        type_tok = self._peek()
        base_type = self._parse_type_name()
        name_tok = self._expect(TokenKind.IDENT)
        var_type = self._parse_array_suffix(base_type)
        if var_type.is_void:
            raise ParseError("variables cannot have type void", type_tok.location)
        init = None
        init_list = None
        if self._at_punct("="):
            self._next()
            if self._at_punct("{"):
                init_list = self._parse_init_list()
            else:
                init = self.parse_expression()
        self._expect_punct(";")
        return ast.DeclStmt(
            location=name_tok.location,
            var_type=var_type,
            name=name_tok.value,
            init=init,
            init_list=init_list,
            is_const=is_const,
        )

    def _parse_if(self) -> ast.IfStmt:
        tok = self._next()
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        then_body = self._parse_body_as_block()
        else_body = None
        if self._at_keyword("else"):
            self._next()
            if self._at_keyword("if"):
                nested = self._parse_if()
                else_body = ast.Block(location=nested.location, statements=[nested])
            else:
                else_body = self._parse_body_as_block()
        return ast.IfStmt(
            location=tok.location, cond=cond, then_body=then_body, else_body=else_body
        )

    def _parse_body_as_block(self) -> ast.Block:
        if self._at_punct("{"):
            return self.parse_block()
        stmt = self.parse_statement()
        return ast.Block(location=stmt.location, statements=[stmt])

    def _parse_while(self) -> ast.WhileStmt:
        tok = self._next()
        self._expect_punct("(")
        cond = self.parse_expression()
        self._expect_punct(")")
        body = self._parse_body_as_block()
        return ast.WhileStmt(location=tok.location, cond=cond, body=body)

    def _parse_for(self) -> ast.ForStmt:
        tok = self._next()
        self._expect_punct("(")
        init = None
        if not self._at_punct(";"):
            if self._peek().kind is TokenKind.KEYWORD and self._peek().value in (
                _TYPE_KEYWORDS + ("const",)
            ):
                init = self._parse_decl_stmt()  # consumes the ';'
            else:
                init = self._parse_expr_or_assign()
                self._expect_punct(";")
        else:
            self._next()
        cond = None
        if not self._at_punct(";"):
            cond = self.parse_expression()
        self._expect_punct(";")
        step = None
        if not self._at_punct(")"):
            step = self._parse_expr_or_assign()
        self._expect_punct(")")
        body = self._parse_body_as_block()
        return ast.ForStmt(
            location=tok.location, init=init, cond=cond, step=step, body=body
        )

    def _parse_return(self) -> ast.ReturnStmt:
        tok = self._next()
        value = None
        if not self._at_punct(";"):
            value = self.parse_expression()
        self._expect_punct(";")
        return ast.ReturnStmt(location=tok.location, value=value)

    def _parse_expr_or_assign(self) -> ast.Stmt:
        """Parse an expression statement, assignment, or ++/-- sugar."""
        tok = self._peek()
        # Prefix ++x / --x.
        if self._at_punct("++") or self._at_punct("--"):
            op = self._next().value
            target = self._parse_postfix_target()
            return self._incdec(tok, target, op)
        expr = self.parse_expression()
        if self._at_punct("++") or self._at_punct("--"):
            op = self._next().value
            return self._incdec(tok, expr, op)
        if self._at_punct("="):
            self._next()
            value = self.parse_expression()
            self._check_assignable(expr)
            return ast.AssignStmt(location=tok.location, target=expr, op="", value=value)
        for compound, base_op in _COMPOUND_OPS.items():
            if self._at_punct(compound):
                self._next()
                value = self.parse_expression()
                self._check_assignable(expr)
                return ast.AssignStmt(
                    location=tok.location, target=expr, op=base_op, value=value
                )
        return ast.ExprStmt(location=tok.location, expr=expr)

    def _parse_postfix_target(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._at_punct("["):
            self._next()
            index = self.parse_expression()
            self._expect_punct("]")
            expr = ast.IndexExpr(location=expr.location, base=expr, index=index)
        return expr

    def _incdec(self, tok: Token, target: ast.Expr, op: str) -> ast.AssignStmt:
        self._check_assignable(target)
        one = ast.IntLiteral(location=tok.location, value=1)
        base_op = "+" if op == "++" else "-"
        return ast.AssignStmt(location=tok.location, target=target, op=base_op, value=one)

    @staticmethod
    def _check_assignable(expr: ast.Expr) -> None:
        if not isinstance(expr, (ast.NameRef, ast.IndexExpr)):
            raise ParseError("invalid assignment target", expr.location)

    # -- expressions --------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while any(self._at_punct(op) for op in _PRECEDENCE[level]):
            op_tok = self._next()
            right = self._parse_binary(level + 1)
            left = ast.BinaryExpr(
                location=op_tok.location, op=op_tok.value, left=left, right=right
            )
        return left

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if self._at_punct("-") or self._at_punct("~") or self._at_punct("!"):
            self._next()
            operand = self._parse_unary()
            return ast.UnaryExpr(location=tok.location, op=tok.value, operand=operand)
        if self._at_punct("+"):  # unary plus is a no-op
            self._next()
            return self._parse_unary()
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._at_punct("["):
            self._next()
            index = self.parse_expression()
            self._expect_punct("]")
            expr = ast.IndexExpr(location=expr.location, base=expr, index=index)
        return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT:
            self._next()
            return ast.IntLiteral(location=tok.location, value=tok.value)
        if tok.kind is TokenKind.IDENT:
            self._next()
            if self._at_punct("("):
                self._next()
                args = []
                if not self._at_punct(")"):
                    args.append(self.parse_expression())
                    while self._at_punct(","):
                        self._next()
                        args.append(self.parse_expression())
                self._expect_punct(")")
                return ast.CallExpr(location=tok.location, callee=tok.value, args=args)
            return ast.NameRef(location=tok.location, name=tok.value)
        if self._at_punct("("):
            self._next()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.location)


def parse(source: str, filename: str = "<source>") -> ast.Program:
    """Parse ucc-C source text into an AST program."""
    return Parser(tokenize(source, filename)).parse_program()
