"""Lexer for ucc-C, the small C-like language used by the UCC reproduction.

ucc-C is the stand-in for the NesC/C sources the paper compiles with
avr-gcc.  The token set covers everything the shipped workloads need:
unsigned 8/16-bit scalars, fixed-size arrays, functions, the usual
C operators, and decimal/hex/char literals.

The lexer is a straightforward hand-written scanner.  It produces a flat
list of :class:`Token` and raises :class:`~repro.lang.errors.LexError`
on any character it does not understand.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import LexError, SourceLocation


class TokenKind(enum.Enum):
    """Lexical categories of ucc-C tokens."""

    IDENT = "ident"
    INT = "int"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "u8",
        "u16",
        "void",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "const",
    }
)

# Multi-character punctuators first so maximal munch works by scanning
# this tuple in order.
PUNCTUATORS = (
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` is the lexeme text for identifiers/keywords/punctuators and
    the decoded integer value (as ``int``) for integer literals.
    """

    kind: TokenKind
    value: object
    location: SourceLocation

    @property
    def text(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r}, {self.location})"


_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
}


class Lexer:
    """Converts ucc-C source text into a token stream."""

    def __init__(self, source: str, filename: str = "<source>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level cursor helpers -------------------------------------

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        if idx < len(self.source):
            return self.source[idx]
        return ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and // and /* */ comments."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._loc()
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start)
            else:
                return

    # -- token scanners ------------------------------------------------

    def _scan_number(self) -> Token:
        loc = self._loc()
        start = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if not self._peek().strip() or not _is_hex(self._peek()):
                raise LexError("malformed hex literal", loc)
            while _is_hex(self._peek()):
                self._advance()
            text = self.source[start : self.pos]
            return Token(TokenKind.INT, int(text, 16), loc)
        while self._peek().isdigit():
            self._advance()
        if self._peek().isalpha() or self._peek() == "_":
            raise LexError(
                f"invalid character {self._peek()!r} in number", self._loc()
            )
        text = self.source[start : self.pos]
        return Token(TokenKind.INT, int(text, 10), loc)

    def _scan_char(self) -> Token:
        loc = self._loc()
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "":
            raise LexError("unterminated character literal", loc)
        if ch == "\\":
            self._advance()
            esc = self._peek()
            if esc not in _ESCAPES:
                raise LexError(f"unknown escape '\\{esc}'", loc)
            value = _ESCAPES[esc]
            self._advance()
        else:
            value = ord(ch)
            self._advance()
        if self._peek() != "'":
            raise LexError("unterminated character literal", loc)
        self._advance()
        return Token(TokenKind.INT, value, loc)

    def _scan_word(self) -> Token:
        loc = self._loc()
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, loc)

    def _scan_punct(self) -> Token:
        loc = self._loc()
        rest = self.source[self.pos :]
        for punct in PUNCTUATORS:
            if rest.startswith(punct):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, loc)
        raise LexError(f"unexpected character {self._peek()!r}", loc)

    # -- public API ------------------------------------------------------

    def next_token(self) -> Token:
        """Return the next token, or an EOF token at end of input."""
        self._skip_trivia()
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", self._loc())
        ch = self._peek()
        if ch.isdigit():
            return self._scan_number()
        if ch == "'":
            return self._scan_char()
        if ch.isalpha() or ch == "_":
            return self._scan_word()
        return self._scan_punct()

    def tokenize(self) -> list[Token]:
        """Scan the whole input and return all tokens including the EOF."""
        tokens = []
        while True:
            tok = self.next_token()
            tokens.append(tok)
            if tok.kind is TokenKind.EOF:
                return tokens


def _is_hex(ch: str) -> bool:
    return bool(ch) and ch in "0123456789abcdefABCDEF"


def tokenize(source: str, filename: str = "<source>") -> list[Token]:
    """Convenience wrapper: tokenize ``source`` into a list of tokens."""
    return Lexer(source, filename).tokenize()
