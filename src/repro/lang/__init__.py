"""ucc-C front end: lexer, parser, AST, and semantic analysis.

ucc-C is the reproduction's stand-in for the NesC/C dialect the paper
compiles with avr-gcc (see DESIGN.md §2).  The public surface:

>>> from repro.lang import parse, check
>>> checked = check(parse("u8 x; void main() { x = 1; }"))
"""

from .ast_nodes import Program
from .errors import CompileError, LexError, ParseError, SemanticError, SourceLocation
from .lexer import Lexer, Token, TokenKind, tokenize
from .parser import Parser, parse
from .sema import (
    BUILTINS,
    CheckedFunction,
    CheckedProgram,
    FunctionSignature,
    SemanticChecker,
    Symbol,
    SymbolKind,
    check,
)
from .types import Type, U8, U16, VOID, common_type, scalar

__all__ = [
    "BUILTINS",
    "CheckedFunction",
    "CheckedProgram",
    "CompileError",
    "FunctionSignature",
    "Lexer",
    "LexError",
    "ParseError",
    "Parser",
    "Program",
    "SemanticChecker",
    "SemanticError",
    "SourceLocation",
    "Symbol",
    "SymbolKind",
    "Token",
    "TokenKind",
    "Type",
    "U16",
    "U8",
    "VOID",
    "check",
    "common_type",
    "parse",
    "scalar",
    "tokenize",
    "frontend",
]


def frontend(source: str, filename: str = "<source>") -> CheckedProgram:
    """Run the whole front end: tokenize, parse, and type-check."""
    return check(parse(source, filename))
