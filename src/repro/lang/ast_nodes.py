"""Abstract syntax tree for ucc-C.

Nodes are small frozen-ish dataclasses.  Expression nodes gain a
``ctype`` attribute during semantic analysis (:mod:`repro.lang.sema`);
until then it is ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import SourceLocation
from .types import Type

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions.  ``ctype`` is filled in by sema."""

    location: SourceLocation
    ctype: Type | None = field(default=None, init=False, compare=False)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class NameRef(Expr):
    """Reference to a variable (scalar or whole array)."""

    name: str = ""


@dataclass
class IndexExpr(Expr):
    """``base[index]`` where base names an array variable."""

    base: Expr = None
    index: Expr = None


@dataclass
class UnaryExpr(Expr):
    """Unary ``-``, ``~`` or ``!``."""

    op: str = ""
    operand: Expr = None


@dataclass
class BinaryExpr(Expr):
    """All binary operators including comparisons and ``&&``/``||``."""

    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class CallExpr(Expr):
    """Function call; ``callee`` is a plain identifier."""

    callee: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class CastExpr(Expr):
    """Implicit width conversion inserted by sema (no source syntax)."""

    target: Type = None
    operand: Expr = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    location: SourceLocation


@dataclass
class DeclStmt(Stmt):
    """Local variable declaration with optional initialiser."""

    var_type: Type = None
    name: str = ""
    init: Expr | None = None
    init_list: list[Expr] | None = None  # array initialiser
    is_const: bool = False


@dataclass
class AssignStmt(Stmt):
    """``target = value`` or compound ``target op= value``.

    ``target`` is a :class:`NameRef` or :class:`IndexExpr`.  Compound
    assignments store the underlying binary operator in ``op``
    (e.g. ``"+"`` for ``+=``); plain assignment uses ``op == ""``.
    """

    target: Expr = None
    op: str = ""
    value: Expr = None


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for side effects (calls, ++/--)."""

    expr: Expr = None


@dataclass
class IfStmt(Stmt):
    cond: Expr = None
    then_body: "Block" = None
    else_body: "Block | None" = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None
    body: "Block" = None


@dataclass
class ForStmt(Stmt):
    """C-style for; each clause may be ``None``."""

    init: Stmt | None = None
    cond: Expr | None = None
    step: Stmt | None = None
    body: "Block" = None


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Param:
    location: SourceLocation
    param_type: Type = None
    name: str = ""


@dataclass
class FunctionDef:
    location: SourceLocation
    return_type: Type = None
    name: str = ""
    params: list[Param] = field(default_factory=list)
    body: Block = None


@dataclass
class GlobalDecl:
    location: SourceLocation
    var_type: Type = None
    name: str = ""
    init: Expr | None = None
    init_list: list[Expr] | None = None
    is_const: bool = False


@dataclass
class Program:
    """A whole translation unit in declaration order."""

    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FunctionDef] = field(default_factory=list)
    # Original top-level order (mix of GlobalDecl and FunctionDef); some
    # passes (e.g. the data-layout baselines) care about declaration order.
    decl_order: list[object] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
