"""Diagnostics for the ucc-C front end.

Every front-end failure is reported as a :class:`CompileError` carrying a
source location, so callers (tests, the update planner, examples) can show
precise messages and tests can assert on the offending line/column.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a ucc-C source file (1-based line and column)."""

    line: int
    column: int
    filename: str = "<source>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class CompileError(Exception):
    """Base class for all front-end diagnostics."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location
        if location is not None:
            super().__init__(f"{location}: {message}")
        else:
            super().__init__(message)


class LexError(CompileError):
    """Raised on malformed tokens (bad characters, unterminated literals)."""


class ParseError(CompileError):
    """Raised on grammar violations."""


class SemanticError(CompileError):
    """Raised on type errors, undeclared names, arity mismatches, etc."""
