"""Semantic analysis for ucc-C.

The checker

* builds symbol tables (globals, per-function scopes),
* type-checks every expression and annotates it with ``ctype``,
* inserts :class:`~repro.lang.ast_nodes.CastExpr` nodes where a u8/u16
  width conversion happens implicitly,
* validates calls against function signatures and the device builtins,
* enforces structural rules (break/continue inside loops, return types,
  arrays only indexed, const not assigned).

The result is a :class:`CheckedProgram` that the IR builder consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from . import ast_nodes as ast
from .errors import SemanticError
from .types import Type, U8, U16, VOID, common_type


class SymbolKind(enum.Enum):
    GLOBAL = "global"
    LOCAL = "local"
    PARAM = "param"


@dataclass
class Symbol:
    """A named variable after semantic analysis."""

    name: str
    ctype: Type
    kind: SymbolKind
    is_const: bool = False
    function: str | None = None  # owning function; None for globals
    # A stable unique id (function-qualified for locals) used by the IR
    # and the data-layout algorithms.
    uid: str = ""

    def __post_init__(self):
        if not self.uid:
            prefix = self.function + "." if self.function else ""
            self.uid = prefix + self.name


@dataclass
class FunctionSignature:
    name: str
    return_type: Type
    param_types: list[Type]
    is_builtin: bool = False


#: Device builtins available without declaration.  They lower to
#: memory-mapped I/O in the IR builder; addresses live in repro.isa.
BUILTINS: dict[str, FunctionSignature] = {
    "led_set": FunctionSignature("led_set", VOID, [U8], is_builtin=True),
    "led_get": FunctionSignature("led_get", U8, [], is_builtin=True),
    "radio_send": FunctionSignature("radio_send", U16, [U16], is_builtin=True),
    "adc_read": FunctionSignature("adc_read", U16, [], is_builtin=True),
    "timer_fired": FunctionSignature("timer_fired", U8, [], is_builtin=True),
    "halt": FunctionSignature("halt", VOID, [], is_builtin=True),
}


@dataclass
class CheckedFunction:
    """Per-function results: the definition plus its local symbols."""

    definition: ast.FunctionDef
    signature: FunctionSignature
    params: list[Symbol] = field(default_factory=list)
    locals: list[Symbol] = field(default_factory=list)

    @property
    def all_variables(self) -> list[Symbol]:
        return list(self.params) + list(self.locals)


@dataclass
class CheckedProgram:
    """A fully type-checked translation unit."""

    program: ast.Program
    globals: list[Symbol] = field(default_factory=list)
    global_inits: dict[str, object] = field(default_factory=dict)
    functions: dict[str, CheckedFunction] = field(default_factory=dict)

    def global_symbol(self, name: str) -> Symbol:
        for sym in self.globals:
            if sym.name == name:
                return sym
        raise KeyError(name)


class _Scope:
    """A lexical scope mapping names to symbols, chained to a parent."""

    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.symbols: dict[str, Symbol] = {}

    def declare(self, symbol: Symbol, location) -> None:
        if symbol.name in self.symbols:
            raise SemanticError(
                f"redeclaration of {symbol.name!r} in the same scope", location
            )
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Symbol | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class SemanticChecker:
    """Runs all semantic checks over a parsed program."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.checked = CheckedProgram(program=program)
        self.signatures: dict[str, FunctionSignature] = dict(BUILTINS)
        self._global_scope = _Scope()
        self._current: CheckedFunction | None = None
        self._loop_depth = 0
        self._local_counter = 0

    # -- driver --------------------------------------------------------

    def check(self) -> CheckedProgram:
        self._collect_globals()
        self._collect_signatures()
        for fn in self.program.functions:
            self._check_function(fn)
        return self.checked

    # -- top-level collection -------------------------------------------

    def _collect_globals(self) -> None:
        for decl in self.program.globals:
            if decl.name in self.signatures:
                raise SemanticError(
                    f"{decl.name!r} conflicts with a builtin", decl.location
                )
            symbol = Symbol(
                name=decl.name,
                ctype=decl.var_type,
                kind=SymbolKind.GLOBAL,
                is_const=decl.is_const,
            )
            self._global_scope.declare(symbol, decl.location)
            self.checked.globals.append(symbol)
            self.checked.global_inits[decl.name] = self._fold_global_init(decl)

    def _fold_global_init(self, decl: ast.GlobalDecl):
        """Globals are initialised with compile-time constants only."""
        if decl.init_list is not None:
            if not decl.var_type.is_array:
                raise SemanticError(
                    "initialiser list on a scalar", decl.location
                )
            if len(decl.init_list) > decl.var_type.array_length:
                raise SemanticError(
                    "too many initialisers for array", decl.location
                )
            values = [self._const_value(e) for e in decl.init_list]
            values += [0] * (decl.var_type.array_length - len(values))
            return values
        if decl.init is not None:
            if decl.var_type.is_array:
                raise SemanticError(
                    "array initialiser must be a brace list", decl.location
                )
            return self._const_value(decl.init)
        if decl.var_type.is_array:
            return [0] * decl.var_type.array_length
        return 0

    def _const_value(self, expr: ast.Expr) -> int:
        """Evaluate a constant expression (literals and arithmetic only)."""
        if isinstance(expr, ast.IntLiteral):
            return expr.value
        if isinstance(expr, ast.UnaryExpr):
            value = self._const_value(expr.operand)
            if expr.op == "-":
                return (-value) & 0xFFFF
            if expr.op == "~":
                return (~value) & 0xFFFF
            if expr.op == "!":
                return 0 if value else 1
        if isinstance(expr, ast.BinaryExpr):
            left = self._const_value(expr.left)
            right = self._const_value(expr.right)
            try:
                return _eval_binop(expr.op, left, right, 0xFFFF)
            except ZeroDivisionError as error:
                raise SemanticError(
                    "division by zero in constant", expr.location
                ) from error
        raise SemanticError(
            "global initialisers must be compile-time constants", expr.location
        )

    def _collect_signatures(self) -> None:
        for fn in self.program.functions:
            if fn.name in self.signatures:
                raise SemanticError(
                    f"redefinition of function {fn.name!r}", fn.location
                )
            self.signatures[fn.name] = FunctionSignature(
                name=fn.name,
                return_type=fn.return_type,
                param_types=[p.param_type for p in fn.params],
            )

    # -- functions -------------------------------------------------------

    def _check_function(self, fn: ast.FunctionDef) -> None:
        checked_fn = CheckedFunction(
            definition=fn, signature=self.signatures[fn.name]
        )
        self._current = checked_fn
        self._local_counter = 0
        scope = _Scope(self._global_scope)
        for param in fn.params:
            if param.param_type.is_array:
                raise SemanticError(
                    "array parameters are not supported", param.location
                )
            symbol = Symbol(
                name=param.name,
                ctype=param.param_type,
                kind=SymbolKind.PARAM,
                function=fn.name,
            )
            scope.declare(symbol, param.location)
            checked_fn.params.append(symbol)
        self._check_block(fn.body, scope)
        self.checked.functions[fn.name] = checked_fn
        self._current = None

    # -- statements --------------------------------------------------------

    def _check_block(self, block: ast.Block, parent: _Scope) -> None:
        scope = _Scope(parent)
        for stmt in block.statements:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.DeclStmt):
            self._check_decl(stmt, scope)
        elif isinstance(stmt, ast.AssignStmt):
            self._check_assign(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.IfStmt):
            self._check_condition(stmt.cond, scope)
            self._check_block(stmt.then_body, scope)
            if stmt.else_body is not None:
                self._check_block(stmt.else_body, scope)
        elif isinstance(stmt, ast.WhileStmt):
            self._check_condition(stmt.cond, scope)
            self._loop_depth += 1
            self._check_block(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.ForStmt):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_condition(stmt.cond, inner)
            self._loop_depth += 1
            self._check_block(stmt.body, inner)
            if stmt.step is not None:
                self._check_stmt(stmt.step, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.ReturnStmt):
            self._check_return(stmt, scope)
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            if self._loop_depth == 0:
                kind = "break" if isinstance(stmt, ast.BreakStmt) else "continue"
                raise SemanticError(f"{kind} outside a loop", stmt.location)
        elif isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(f"unknown statement {type(stmt).__name__}", stmt.location)

    def _check_decl(self, stmt: ast.DeclStmt, scope: _Scope) -> None:
        assert self._current is not None
        symbol = Symbol(
            name=stmt.name,
            ctype=stmt.var_type,
            kind=SymbolKind.LOCAL,
            is_const=stmt.is_const,
            function=self._current.definition.name,
        )
        # Distinct shadowed locals need distinct uids for layout/IR.
        self._local_counter += 1
        if any(s.name == stmt.name for s in self._current.locals):
            symbol.uid = f"{symbol.function}.{stmt.name}#{self._local_counter}"
        scope.declare(symbol, stmt.location)
        self._current.locals.append(symbol)
        if stmt.init_list is not None:
            if not stmt.var_type.is_array:
                raise SemanticError("initialiser list on a scalar", stmt.location)
            if len(stmt.init_list) > stmt.var_type.array_length:
                raise SemanticError("too many initialisers for array", stmt.location)
            for expr in stmt.init_list:
                etype = self._check_expr(expr, scope)
                self._require_scalar(etype, expr)
        elif stmt.init is not None:
            if stmt.var_type.is_array:
                raise SemanticError(
                    "array initialiser must be a brace list", stmt.location
                )
            etype = self._check_expr(stmt.init, scope)
            self._require_scalar(etype, stmt.init)
            stmt.init = self._coerce(stmt.init, stmt.var_type)
        elif stmt.is_const:
            raise SemanticError("const variable needs an initialiser", stmt.location)

    def _check_assign(self, stmt: ast.AssignStmt, scope: _Scope) -> None:
        target_type = self._check_expr(stmt.target, scope)
        if isinstance(stmt.target, ast.NameRef):
            symbol = scope.lookup(stmt.target.name)
            if symbol is not None and symbol.is_const:
                raise SemanticError(
                    f"assignment to const {symbol.name!r}", stmt.location
                )
            if target_type.is_array:
                raise SemanticError("cannot assign to a whole array", stmt.location)
        value_type = self._check_expr(stmt.value, scope)
        self._require_scalar(value_type, stmt.value)
        stmt.value = self._coerce(stmt.value, target_type)

    def _check_return(self, stmt: ast.ReturnStmt, scope: _Scope) -> None:
        assert self._current is not None
        expected = self._current.signature.return_type
        if expected.is_void:
            if stmt.value is not None:
                raise SemanticError(
                    "void function returns a value", stmt.location
                )
            return
        if stmt.value is None:
            raise SemanticError("non-void function returns nothing", stmt.location)
        value_type = self._check_expr(stmt.value, scope)
        self._require_scalar(value_type, stmt.value)
        stmt.value = self._coerce(stmt.value, expected)

    def _check_condition(self, cond: ast.Expr, scope: _Scope) -> None:
        ctype = self._check_expr(cond, scope)
        self._require_scalar(ctype, cond)

    # -- expressions ---------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> Type:
        ctype = self._infer(expr, scope)
        expr.ctype = ctype
        return ctype

    def _infer(self, expr: ast.Expr, scope: _Scope) -> Type:
        if isinstance(expr, ast.IntLiteral):
            if expr.value < 0 or expr.value > 0xFFFF:
                raise SemanticError(
                    f"literal {expr.value} out of u16 range", expr.location
                )
            return U8 if expr.value <= 0xFF else U16
        if isinstance(expr, ast.NameRef):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                raise SemanticError(f"undeclared name {expr.name!r}", expr.location)
            return symbol.ctype
        if isinstance(expr, ast.IndexExpr):
            base_type = self._check_expr(expr.base, scope)
            if not base_type.is_array:
                raise SemanticError("indexing a non-array", expr.location)
            index_type = self._check_expr(expr.index, scope)
            self._require_scalar(index_type, expr.index)
            return base_type.element_type()
        if isinstance(expr, ast.UnaryExpr):
            operand_type = self._check_expr(expr.operand, scope)
            self._require_scalar(operand_type, expr.operand)
            if expr.op == "!":
                return U8
            return operand_type
        if isinstance(expr, ast.BinaryExpr):
            left = self._check_expr(expr.left, scope)
            right = self._check_expr(expr.right, scope)
            self._require_scalar(left, expr.left)
            self._require_scalar(right, expr.right)
            if expr.op in ("&&", "||"):
                return U8
            if expr.op in ("==", "!=", "<", "<=", ">", ">="):
                operand = common_type(left, right)
                expr.left = self._coerce(expr.left, operand)
                expr.right = self._coerce(expr.right, operand)
                return U8
            if expr.op in ("<<", ">>"):
                return left
            result = common_type(left, right)
            expr.left = self._coerce(expr.left, result)
            expr.right = self._coerce(expr.right, result)
            return result
        if isinstance(expr, ast.CallExpr):
            return self._check_call(expr, scope)
        if isinstance(expr, ast.CastExpr):  # pragma: no cover - sema-inserted
            return expr.target
        raise SemanticError(
            f"unknown expression {type(expr).__name__}", expr.location
        )  # pragma: no cover

    def _check_call(self, expr: ast.CallExpr, scope: _Scope) -> Type:
        signature = self.signatures.get(expr.callee)
        if signature is None:
            raise SemanticError(
                f"call to undefined function {expr.callee!r}", expr.location
            )
        if len(expr.args) != len(signature.param_types):
            raise SemanticError(
                f"{expr.callee} expects {len(signature.param_types)} argument(s), "
                f"got {len(expr.args)}",
                expr.location,
            )
        new_args = []
        for arg, expected in zip(expr.args, signature.param_types):
            arg_type = self._check_expr(arg, scope)
            self._require_scalar(arg_type, arg)
            new_args.append(self._coerce(arg, expected))
        expr.args = new_args
        return signature.return_type

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _require_scalar(ctype: Type, expr: ast.Expr) -> None:
        if ctype.is_array or ctype.is_void:
            raise SemanticError(
                f"expected a scalar value, got {ctype}", expr.location
            )

    @staticmethod
    def _coerce(expr: ast.Expr, target: Type) -> ast.Expr:
        """Insert a CastExpr when widths differ (u8<->u16)."""
        if expr.ctype == target:
            return expr
        cast = ast.CastExpr(location=expr.location, target=target, operand=expr)
        cast.ctype = target
        return cast


def _eval_binop(op: str, left: int, right: int, mask: int) -> int:
    """Evaluate a binary operator on unsigned values, wrapping to ``mask``."""
    if op == "+":
        return (left + right) & mask
    if op == "-":
        return (left - right) & mask
    if op == "*":
        return (left * right) & mask
    if op == "/":
        return left // right
    if op == "%":
        return left % right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<<":
        return (left << (right & 15)) & mask
    if op == ">>":
        return left >> (right & 15)
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    raise ValueError(f"unknown operator {op!r}")


def check(program: ast.Program) -> CheckedProgram:
    """Type-check a parsed program and return the checked form."""
    return SemanticChecker(program).check()
