"""Process-wide metrics registry (the ``metrics`` half of :mod:`repro.obs`).

Three instrument kinds, mirroring the usual telemetry vocabulary:

* :class:`Counter` — a monotonically increasing total (events, bytes,
  solver iterations);
* :class:`Gauge` — a last-written value (a configuration knob, a level);
* :class:`Histogram` — a value-distribution summary (count / sum / min /
  max / mean) for quantities that vary per observation, such as script
  sizes.

Instrumented modules publish through the module-level helpers::

    from ..obs import metrics

    metrics.counter("ilp.simplex_iterations").inc(stats.iterations)
    metrics.histogram("diff.script_bytes").observe(script.size_bytes)

Metrics are always on — each publication is a dict lookup plus an add,
and every call site sits at per-compile / per-run granularity, never
inside an instruction loop.  Metric names are dot-separated
``<package>.<quantity>`` identifiers; every name used in this
repository must appear in the catalogue in ``docs/OBSERVABILITY.md``
(enforced by ``tools/check_docs.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}

    def reset(self) -> None:
        self.value = 0.0


@dataclass
class Gauge:
    """A last-written value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}

    def reset(self) -> None:
        self.value = 0.0


@dataclass
class Histogram:
    """A streaming summary of observed values."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")


class MetricsRegistry:
    """Name → instrument map with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name=name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- inspection -----------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self, prefix: str = "") -> dict[str, dict]:
        """Full state of every metric whose name starts with ``prefix``."""
        return {
            name: metric.snapshot()  # type: ignore[attr-defined]
            for name, metric in sorted(self._metrics.items())
            if name.startswith(prefix)
        }

    def values(self, prefix: str = "") -> dict[str, float]:
        """Scalar view: counter/gauge values and histogram counts."""
        out: dict[str, float] = {}
        for name, metric in sorted(self._metrics.items()):
            if not name.startswith(prefix):
                continue
            if isinstance(metric, Histogram):
                out[name] = float(metric.count)
            else:
                out[name] = metric.value  # type: ignore[union-attr]
        return out

    def delta(self, before: dict[str, float], prefix: str = "") -> dict[str, float]:
        """Per-interval change vs an earlier :meth:`values` snapshot."""
        return {
            name: value - before.get(name, 0.0)
            for name, value in self.values(prefix).items()
        }

    def reset(self) -> None:
        """Zero every instrument (registrations are kept)."""
        for metric in self._metrics.values():
            metric.reset()  # type: ignore[attr-defined]

    def render(self, prefix: str = "") -> str:
        """Human-readable dump, one metric per line."""
        lines = []
        for name, snap in self.snapshot(prefix).items():
            if snap["type"] == "histogram":
                if snap["count"]:
                    lines.append(
                        f"{name}: count={snap['count']} sum={snap['sum']:g} "
                        f"min={snap['min']:g} max={snap['max']:g} "
                        f"mean={snap['mean']:g}"
                    )
                else:
                    lines.append(f"{name}: count=0")
            else:
                lines.append(f"{name}: {snap['value']:g}")
        return "\n".join(lines)


#: The process-wide registry every instrumented module publishes into.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
]
