"""The engine behind ``repro profile``: one traced end-to-end update.

:func:`profile_update` drives the whole pipeline — compile the old
program, plan the update, disseminate the packetised script over a
grid, simulate both versions — with the process-wide tracer enabled,
then folds the collected spans into a per-phase wall-time/energy
breakdown and a per-run metrics delta.

Kept separate from :mod:`repro.obs.trace`/:mod:`repro.obs.metrics` on
purpose: those two are dependency-free so every pipeline stage can
import them, while this driver imports the pipeline itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import UpdateConfig
from ..core.compiler import compile_source
from ..core.update import UpdateResult, measure_cycles, plan_update
from ..energy.model import DEFAULT_ENERGY_MODEL
from ..energy.power_model import MICA2
from ..net.dissemination import disseminate
from ..net.lossy import disseminate_lossy
from ..net.topology import grid
from . import metrics, trace

#: Span names a default ``repro profile`` run always emits — the
#: contract the integration tests and docs/OBSERVABILITY.md pin.
CORE_PHASES = (
    "profile.total",
    "compile.full",
    "compile.front_middle",
    "compile.regalloc",
    "compile.datalayout",
    "compile.backend",
    "update.plan",
    "update.regalloc",
    "update.datalayout",
    "diff.images",
    "update.verify",
    "net.disseminate",
    "sim.run",
)


@dataclass
class PhaseRow:
    """Aggregated timing of all spans sharing one name."""

    name: str
    calls: int = 0
    total_ms: float = 0.0
    #: total minus time spent in child spans
    self_ms: float = 0.0
    energy: str = ""
    first_start_us: float = 0.0


@dataclass
class ProfileReport:
    """Everything one profiled update run produced."""

    label: str
    ra: str
    da: str
    grid_side: int
    loss: float
    result: UpdateResult
    rows: list = field(default_factory=list)
    events: list = field(default_factory=list)
    metrics_delta: dict = field(default_factory=dict)
    dissemination_energy_j: float = 0.0
    nodes: int = 0

    def phase_names(self) -> list[str]:
        return [row.name for row in self.rows]

    def render(self) -> str:
        result = self.result
        lines = [
            f"profile {self.label} (ra={self.ra} da={self.da} "
            f"grid={self.grid_side}x{self.grid_side} loss={self.loss:g})",
            f"update        : Diff_inst={result.diff_inst} "
            f"script={result.script_bytes} B "
            f"packets={result.packets.packet_count}",
            f"dissemination : {self.nodes} nodes, "
            f"{self.dissemination_energy_j:.4g} J network total",
        ]
        if result.old_cycles is not None:
            lines.append(
                f"simulation    : old={result.old_cycles} "
                f"new={result.new_cycles} cycles "
                f"(Diff_cycle={result.diff_cycle:+d})"
            )
        lines.append("")
        lines.append(
            f"{'phase':<24} {'calls':>5} {'total ms':>10} "
            f"{'self ms':>10} {'share':>6}  energy"
        )
        budget = sum(row.self_ms for row in self.rows) or 1.0
        for row in self.rows:
            share = 100.0 * row.self_ms / budget
            lines.append(
                f"{row.name:<24} {row.calls:>5} {row.total_ms:>10.2f} "
                f"{row.self_ms:>10.2f} {share:>5.1f}%  {row.energy}"
            )
        interesting = {
            name: value
            for name, value in sorted(self.metrics_delta.items())
            if value and not name.startswith("fuzz.")
        }
        if interesting:
            lines.append("")
            lines.append("metrics (this run):")
            for name, value in interesting.items():
                lines.append(f"  {name:<30} {value:g}")
        return "\n".join(lines)

    # -- trace export ---------------------------------------------------------

    def to_jsonl(self) -> str:
        import json

        return "\n".join(json.dumps(ev.to_dict()) for ev in self.events)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
            if self.events:
                handle.write("\n")

    def chrome_trace(self) -> dict:
        scratch = trace.Tracer()
        scratch._events = list(self.events)
        return scratch.chrome_trace()

    def write_chrome_trace(self, path: str) -> None:
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)


def _self_times(events: list) -> dict[int, float]:
    """Per-event self time (duration minus child durations).

    Events arrive in completion order (children before parents), so a
    running per-depth accumulator of completed child time is exact.
    """
    acc: dict[int, float] = {}
    selfs: dict[int, float] = {}
    for index, ev in enumerate(events):
        child_time = acc.pop(ev.depth + 1, 0.0)
        selfs[index] = ev.duration_us - child_time
        acc[ev.depth] = acc.get(ev.depth, 0.0) + ev.duration_us
    return selfs


def aggregate_phases(events: list) -> list[PhaseRow]:
    """Fold spans into per-name rows, ordered by first start time."""
    selfs = _self_times(events)
    rows: dict[str, PhaseRow] = {}
    for index, ev in enumerate(events):
        row = rows.get(ev.name)
        if row is None:
            row = PhaseRow(name=ev.name, first_start_us=ev.start_us)
            rows[ev.name] = row
        row.calls += 1
        row.total_ms += ev.duration_us / 1000.0
        row.self_ms += selfs[index] / 1000.0
        row.first_start_us = min(row.first_start_us, ev.start_us)
    return sorted(rows.values(), key=lambda r: r.first_start_us)


def profile_update(
    old_source: str,
    new_source: str,
    ra: str = "ucc",
    da: str = "ucc",
    grid_side: int = 4,
    loss: float = 0.0,
    loss_seed: int = 1,
    simulate: bool = True,
    label: str = "update",
    config: UpdateConfig | None = None,
) -> ProfileReport:
    """Run one traced end-to-end update and aggregate the telemetry.

    Resets the process-wide tracer, enables it for the duration of the
    run (restoring the previous enablement after), and reports metric
    *deltas* so back-to-back profiles do not bleed into each other.
    ``config`` carries the full planning configuration (cp, checked
    mode, knobs); when given it wins over the loose ``ra``/``da``
    strings.
    """
    cfg = config if config is not None else UpdateConfig(ra=ra, da=da)
    ra, da = cfg.ra, cfg.da
    tracer = trace.TRACER
    was_enabled = tracer.enabled
    tracer.reset()
    tracer.enable()
    before = metrics.REGISTRY.values()
    try:
        with trace.span("profile.total", ra=ra, da=da):
            old = compile_source(old_source)
            result = plan_update(old, new_source, config=cfg)
            topology = grid(grid_side, grid_side)
            if loss > 0.0:
                dissemination = disseminate_lossy(
                    topology, result.packets, loss=loss, seed=loss_seed, power=MICA2
                )
            else:
                dissemination = disseminate(topology, result.packets, MICA2)
            if simulate:
                measure_cycles(result)
    finally:
        if not was_enabled:
            tracer.disable()

    events = tracer.events()
    delta = metrics.REGISTRY.delta(before)
    rows = aggregate_phases(events)
    energy = DEFAULT_ENERGY_MODEL
    sim_cycles = delta.get("sim.cycles", 0.0)
    energy_by_phase = {
        "net.disseminate": f"{dissemination.total_energy_j:.4g} J",
        "net.disseminate_lossy": f"{dissemination.total_energy_j:.4g} J",
        "diff.images": (
            f"{energy.e_trans_words(result.diff_words) + energy.e_trans_bytes(result.data_script_bytes):.4g} u tx"
        ),
        "sim.run": f"{energy.e_exe_cycles(sim_cycles):.4g} u exe",
    }
    for row in rows:
        row.energy = energy_by_phase.get(row.name, "-")

    return ProfileReport(
        label=label,
        ra=ra,
        da=da,
        grid_side=grid_side,
        loss=loss,
        result=result,
        rows=rows,
        events=events,
        metrics_delta=delta,
        dissemination_energy_j=dissemination.total_energy_j,
        nodes=topology.node_count - 1,
    )


__all__ = [
    "CORE_PHASES",
    "PhaseRow",
    "ProfileReport",
    "aggregate_phases",
    "profile_update",
]
