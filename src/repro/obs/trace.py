"""Hierarchical span tracer (the ``trace`` half of :mod:`repro.obs`).

Usage from instrumented code::

    from ..obs import trace

    with trace.span("ilp.solve", backend=backend) as sp:
        result = ...
        sp.set(status=result.status)

Spans nest: each completed span records its wall time, its nesting
depth, its arguments, and whether it exited through an exception.  The
default process-wide tracer (:data:`TRACER`) is **disabled** unless a
driver — ``repro profile``, a test, a bench — enables it, and a
disabled ``span()`` call returns a shared no-op context manager, so
instrumentation costs one attribute check on every hot path.

Completed traces export two ways (schema documented in
``docs/OBSERVABILITY.md``):

* :meth:`Tracer.to_jsonl` — one JSON object per span, in completion
  order (children complete before parents);
* :meth:`Tracer.chrome_trace` — a ``chrome://tracing`` /  Perfetto
  compatible ``{"traceEvents": [...]}`` document of complete
  (``"ph": "X"``) events.

Span names are dot-separated ``<package>.<operation>`` identifiers;
every name emitted by this repository is catalogued in
``docs/OBSERVABILITY.md`` (enforced by ``tools/check_docs.py``).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field


@dataclass
class TraceEvent:
    """One completed span."""

    name: str
    #: microseconds since the tracer's epoch (its enable() call)
    start_us: float
    duration_us: float
    #: nesting depth at the time the span was open (0 = root)
    depth: int
    args: dict = field(default_factory=dict)
    #: the span body raised
    error: bool = False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_us": round(self.start_us, 3),
            "dur_us": round(self.duration_us, 3),
            "depth": self.depth,
            "args": self.args,
            "error": self.error,
        }


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **args) -> None:
        """Ignore attributes recorded against a disabled span."""


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; created by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "name", "args", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0.0
        self._depth = 0

    def set(self, **args) -> None:
        """Attach (or overwrite) span arguments mid-flight."""
        self.args.update(args)

    def __enter__(self) -> "_Span":
        self._depth = self._tracer._enter()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        self._tracer._exit(self, end, error=exc_type is not None)
        return False  # never swallow the exception


class Tracer:
    """Collects :class:`TraceEvent` records from nested spans.

    Thread-safe in the simple sense: each thread keeps its own nesting
    depth, and the (GIL-atomic) event list is shared.  The reproduction
    is single-threaded today; the per-thread depth just keeps traces
    honest if that changes.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._events: list[TraceEvent] = []
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # -- collection -----------------------------------------------------------

    def span(self, name: str, **args):
        """Open a span; a context manager.  No-op while disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, args)

    def _enter(self) -> int:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        return depth

    def _exit(self, span: _Span, end: float, error: bool) -> None:
        self._local.depth = max(0, getattr(self._local, "depth", 1) - 1)
        if not self.enabled:  # disabled while the span was open
            return
        self._events.append(
            TraceEvent(
                name=span.name,
                start_us=(span._start - self._epoch) * 1e6,
                duration_us=(end - span._start) * 1e6,
                depth=span._depth,
                args=span.args,
                error=error,
            )
        )

    # -- control --------------------------------------------------------------

    def enable(self) -> None:
        """Start collecting; resets the epoch so timestamps start near 0."""
        self.enabled = True
        if not self._events:
            self._epoch = time.perf_counter()

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop collected events and restart the clock."""
        self._events = []
        self._local = threading.local()
        self._epoch = time.perf_counter()

    def events(self) -> list[TraceEvent]:
        """Completed spans, in completion order."""
        return list(self._events)

    # -- export ---------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per completed span, newline-delimited."""
        return "\n".join(json.dumps(ev.to_dict()) for ev in self._events)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
            if self._events:
                handle.write("\n")

    def chrome_trace(self) -> dict:
        """A ``chrome://tracing``-loadable trace document.

        Every span becomes a complete event (``"ph": "X"``) with
        microsecond timestamps, on one process/thread track.
        """
        events = [
            {
                "name": ev.name,
                "cat": ev.name.split(".", 1)[0],
                "ph": "X",
                "ts": round(ev.start_us, 3),
                "dur": round(ev.duration_us, 3),
                "pid": 1,
                "tid": 1,
                "args": dict(ev.args, **({"error": True} if ev.error else {})),
            }
            for ev in self._events
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)


#: The process-wide tracer every instrumented module reports into.
TRACER = Tracer()


def span(name: str, **args):
    """Open a span on the process-wide tracer (module-level sugar)."""
    if not TRACER.enabled:
        return _NULL_SPAN
    return _Span(TRACER, name, args)


def enable() -> None:
    TRACER.enable()


def disable() -> None:
    TRACER.disable()


def reset() -> None:
    TRACER.reset()


def events() -> list[TraceEvent]:
    return TRACER.events()


__all__ = [
    "TraceEvent",
    "Tracer",
    "TRACER",
    "disable",
    "enable",
    "events",
    "reset",
    "span",
]
