"""repro.obs — zero-dependency pipeline observability.

Two always-importable halves and one driver:

* :mod:`repro.obs.trace` — a hierarchical span tracer.  Instrumented
  stages wrap their work in ``with trace.span("ilp.solve", ...)``;
  spans record wall time, nesting depth, arguments, and exception
  status, and export as JSONL or Chrome-trace-viewer JSON.  Disabled
  by default: a disabled span costs one attribute check.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges, and histograms the hot paths publish into (solver
  iterations, chunk-reuse hits, script sizes, retransmissions,
  simulated cycles, fuzz verdicts).  Always on; every publication is
  a dict lookup plus an add.
* :mod:`repro.obs.profile` — the ``repro profile`` driver: one traced
  end-to-end update folded into a per-phase time/energy breakdown.
  Imported lazily (it depends on the pipeline; the other two depend
  on nothing).

The telemetry *contract* — span naming scheme, the full metric
catalogue with units, and the trace-file schemas — lives in
``docs/OBSERVABILITY.md`` and is enforced by ``tools/check_docs.py``:
a metric or span name used in code but absent from the catalogue
fails CI.
"""

from . import metrics, trace
from .metrics import REGISTRY, Counter, Gauge, Histogram, MetricsRegistry
from .trace import TRACER, TraceEvent, Tracer, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "TRACER",
    "TraceEvent",
    "Tracer",
    "metrics",
    "span",
    "trace",
]
