"""repro — reproduction of *"UCC: Update-Conscious Compilation for
Energy Efficiency in Wireless Sensor Networks"* (Li, Zhang, Yang,
Zheng; PLDI 2007).

Quick tour
----------

>>> from repro import compile_source, plan_update
>>> from repro.workloads import CASES
>>> case = CASES["6"]
>>> old = compile_source(case.old_source)
>>> result = plan_update(old, case.new_source, ra="ucc", da="ucc")
>>> result.diff_inst <= plan_update(old, case.new_source, ra="gcc", da="gcc").diff_inst
True

Subpackages (see DESIGN.md for the full inventory):

* :mod:`repro.lang`      — the ucc-C front end
* :mod:`repro.ir`        — three-address IR, CFG, liveness
* :mod:`repro.opt`       — optimization passes
* :mod:`repro.isa`       — AVR-flavoured target ISA + assembler
* :mod:`repro.codegen`   — instruction selection
* :mod:`repro.regalloc`  — baselines, chunks, preferences, UCC-RA (+ILP)
* :mod:`repro.ilp`       — simplex + branch & bound + scipy backend
* :mod:`repro.datalayout`— GCC-DA / UCC-DA
* :mod:`repro.diff`      — edit scripts, differ, patcher, packets
* :mod:`repro.energy`    — Mica2 power model, eqs. 18-19
* :mod:`repro.sim`       — instruction-level mote simulator
* :mod:`repro.net`       — topologies + flooding dissemination
* :mod:`repro.core`      — compiler, update planner, OTA session
* :mod:`repro.workloads` — benchmark programs + update cases
"""

__version__ = "1.0.0"

from .core import (
    CompiledProgram,
    Compiler,
    CompilerOptions,
    UpdatePlanner,
    UpdateResult,
    UpdateSession,
    compile_source,
    measure_cycles,
    plan_update,
)
from .energy import DEFAULT_ENERGY_MODEL, MICA2, EnergyModel, PowerModel

__all__ = [
    "CompiledProgram",
    "Compiler",
    "CompilerOptions",
    "DEFAULT_ENERGY_MODEL",
    "EnergyModel",
    "MICA2",
    "PowerModel",
    "UpdatePlanner",
    "UpdateResult",
    "UpdateSession",
    "__version__",
    "compile_source",
    "measure_cycles",
    "plan_update",
]
