"""repro — reproduction of *"UCC: Update-Conscious Compilation for
Energy Efficiency in Wireless Sensor Networks"* (Li, Zhang, Yang,
Zheng; PLDI 2007).

Quick tour
----------

>>> from repro import UpdateConfig, compile_source, plan_update
>>> from repro.workloads import CASES
>>> case = CASES["6"]
>>> old = compile_source(case.old_source)
>>> ucc = plan_update(old, case.new_source, config=UpdateConfig(ra="ucc", da="ucc"))
>>> gcc = plan_update(old, case.new_source, config=UpdateConfig(ra="gcc", da="gcc"))
>>> ucc.diff_inst <= gcc.diff_inst
True

The typed configs above are the supported surface (:mod:`repro.api`);
the legacy ``ra="ucc"`` string keywords still work but emit
:class:`DeprecationWarning`.  Batches go through
:class:`repro.service.FleetUpdateService` (``repro batch`` on the CLI).

Subpackages (see DESIGN.md for the full inventory):

* :mod:`repro.lang`      — the ucc-C front end
* :mod:`repro.ir`        — three-address IR, CFG, liveness
* :mod:`repro.opt`       — optimization passes
* :mod:`repro.isa`       — AVR-flavoured target ISA + assembler
* :mod:`repro.codegen`   — instruction selection
* :mod:`repro.regalloc`  — baselines, chunks, preferences, UCC-RA (+ILP)
* :mod:`repro.ilp`       — simplex + branch & bound + scipy backend
* :mod:`repro.datalayout`— GCC-DA / UCC-DA
* :mod:`repro.diff`      — edit scripts, differ, patcher, packets
* :mod:`repro.energy`    — Mica2 power model, eqs. 18-19
* :mod:`repro.sim`       — instruction-level mote simulator
* :mod:`repro.net`       — topologies + flooding dissemination
* :mod:`repro.core`      — compiler, update planner, OTA session
* :mod:`repro.workloads` — benchmark programs + update cases
"""

__version__ = "1.0.0"

from .config import (
    CompileConfig,
    FleetJob,
    TopologySpec,
    UpdateConfig,
)
from .core import (
    CompiledProgram,
    Compiler,
    CompilerOptions,
    UpdatePlanner,
    UpdateResult,
    UpdateSession,
    compile_source,
    measure_cycles,
    plan_update,
)
from .energy import DEFAULT_ENERGY_MODEL, MICA2, EnergyModel, PowerModel

__all__ = [
    "CompileConfig",
    "CompiledProgram",
    "Compiler",
    "CompilerOptions",
    "DEFAULT_ENERGY_MODEL",
    "EnergyModel",
    "FleetJob",
    "MICA2",
    "PowerModel",
    "TopologySpec",
    "UpdateConfig",
    "UpdatePlanner",
    "UpdateResult",
    "UpdateSession",
    "__version__",
    "compile_source",
    "measure_cycles",
    "plan_update",
]
