"""Typed configuration objects — the vocabulary of :mod:`repro.api`.

One frozen dataclass per decision surface, replacing the string-flag
kwargs (``ra="ucc"``, ``da``, ``cp``) and ``**planner_kwargs`` that
used to thread through the pipeline:

* :class:`CompileConfig` — one baseline compile (maps 1:1 onto
  :class:`repro.core.compiler.CompilerOptions`);
* :class:`UpdateConfig`  — one update plan (strategy selection plus
  every planner knob);
* :class:`TopologySpec`  — a reproducible network topology recipe;
* :class:`FleetJob`      — one job of a :class:`repro.service
  .FleetUpdateService` batch: sources + configs + network.

Everything here is immutable, validated at construction, and
content-addressable: :meth:`digest` renders the configuration to
canonical JSON and hashes it, which is what the service and solver
caches key on.  The module deliberately imports almost nothing so any
layer (CLI, planner, worker process) can depend on it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import TYPE_CHECKING, Mapping, Optional, Tuple

from .diff.packets import DEFAULT_OVERHEAD, DEFAULT_PAYLOAD
from .regalloc.chunks import DEFAULT_K

if TYPE_CHECKING:  # imported lazily to keep this module import-light
    from .net.faults import FaultPlan

#: Legal register-allocation strategies for update planning.
RA_STRATEGIES = ("ucc", "ucc-ilp", "gcc", "linear")
#: Legal baseline allocators for a from-scratch compile.
RA_BASELINE_NAMES = ("gcc", "linear")
#: Legal data-layout strategies.
DA_STRATEGIES = ("ucc", "gcc")
#: Legal code-placement strategies (``None`` = strategy default).
CP_STRATEGIES = ("auto", "ucc", "gcc")


def baseline_ra(ra: str) -> str:
    """The baseline allocator an update strategy falls back to.

    The update-conscious strategies allocate brand-new functions with
    the graph-coloring baseline, so a from-scratch compile under
    ``"ucc"``/``"ucc-ilp"`` *is* a ``"gcc"`` compile.
    """
    return ra if ra in RA_BASELINE_NAMES else "gcc"


def _reject_unencodable(obj):
    # A digest preimage must hold only canonical JSON primitives.  The
    # old ``default=str`` fallback would have silently serialised an
    # unknown object via repr() — which embeds a memory address for
    # anything without a custom __repr__, making the "content" digest
    # differ between two processes holding identical content.  Refuse
    # loudly instead; config values are primitives by construction.
    raise TypeError(
        f"config digest preimage contains a non-JSON value: {obj!r} "
        f"({type(obj).__name__}); digests must be pure functions of "
        f"content"
    )


def _digest_of(obj) -> str:
    blob = json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=_reject_unencodable
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CompileConfig:
    """Knobs of one from-scratch compile (typed CompilerOptions)."""

    #: baseline register allocator: "gcc" (graph coloring) or "linear"
    ra: str = "gcc"
    #: run the optimization passes (paper compiles with -O3)
    optimize: bool = True
    #: per-function Depth_i overrides (paper §4) as (name, depth) pairs
    depths: Tuple[Tuple[str, int], ...] = ()
    #: verify allocations against liveness (cheap; on by default)
    verify: bool = True
    #: slack words added to every function slot at placement time
    placement_headroom: int = 0
    #: run the full repro.analysis passes after the compile
    checked: bool = False

    def __post_init__(self):
        if self.ra not in RA_BASELINE_NAMES:
            raise ValueError(
                f"CompileConfig.ra must be one of {RA_BASELINE_NAMES}, "
                f"got {self.ra!r} (update strategies like 'ucc' belong in "
                f"UpdateConfig; see repro.config.baseline_ra)"
            )

    @staticmethod
    def of(
        ra: str = "gcc",
        optimize: bool = True,
        depths: Optional[Mapping[str, int]] = None,
        verify: bool = True,
        placement_headroom: int = 0,
        checked: bool = False,
    ) -> "CompileConfig":
        """Build from loose arguments (dict depths, update-strategy ra)."""
        return CompileConfig(
            ra=baseline_ra(ra),
            optimize=optimize,
            depths=tuple(sorted((depths or {}).items())),
            verify=verify,
            placement_headroom=placement_headroom,
            checked=checked,
        )

    def to_options(self):
        """The equivalent :class:`repro.core.compiler.CompilerOptions`."""
        from .core.compiler import CompilerOptions

        return CompilerOptions(
            register_allocator=self.ra,
            optimize=self.optimize,
            depths=dict(self.depths),
            verify=self.verify,
            placement_headroom=self.placement_headroom,
            checked=self.checked,
        )

    def digest(self) -> str:
        return _digest_of(asdict(self))


@dataclass(frozen=True)
class UpdateConfig:
    """Every knob of one update plan (typed ``ra``/``da``/``cp``)."""

    #: register allocation: "ucc", "ucc-ilp", or a baseline ("gcc"/"linear")
    ra: str = "ucc"
    #: data layout: "ucc" (threshold-based §4) or "gcc" (name hash)
    da: str = "ucc"
    #: code placement: "auto" (ship the smaller script), "ucc" (keep old
    #: addresses), "gcc" (pack afresh); None = strategy default ("auto"
    #: for the update-conscious allocators, "gcc" for the baselines)
    cp: Optional[str] = None
    #: run the repro.analysis passes over the planned update; None
    #: inherits the old program's ``options.checked``
    checked: Optional[bool] = None
    #: verify the sensor-side patch round-trips (cheap; on by default)
    verify: bool = True
    #: chunking threshold K (paper §3.2)
    k: int = DEFAULT_K
    #: projected execution count Cnt driving eq. 18 decisions
    expected_runs: float = 1000.0
    #: UCC-DA relocation threshold SpaceT in bytes (paper §4)
    space_threshold: int = 0

    def __post_init__(self):
        if self.ra not in RA_STRATEGIES:
            raise ValueError(
                f"UpdateConfig.ra must be one of {RA_STRATEGIES}, got {self.ra!r}"
            )
        if self.da not in DA_STRATEGIES:
            raise ValueError(
                f"UpdateConfig.da must be one of {DA_STRATEGIES}, got {self.da!r}"
            )
        if self.cp is not None and self.cp not in CP_STRATEGIES:
            raise ValueError(
                f"UpdateConfig.cp must be None or one of {CP_STRATEGIES}, "
                f"got {self.cp!r}"
            )
        if self.k < 1:
            raise ValueError(f"UpdateConfig.k must be >= 1, got {self.k}")
        if self.expected_runs < 0:
            raise ValueError("UpdateConfig.expected_runs must be >= 0")

    def resolved_cp(self) -> str:
        """The effective placement strategy (strategy default applied)."""
        if self.cp is not None:
            return self.cp
        return "auto" if self.ra in ("ucc", "ucc-ilp") else "gcc"

    def digest(self) -> str:
        return _digest_of(asdict(self))


@dataclass(frozen=True)
class TopologySpec:
    """A reproducible recipe for a dissemination network."""

    #: "grid" (width x height), "line" (nodes), or "random" (nodes,
    #: radio_range, seed)
    kind: str = "grid"
    width: int = 5
    height: int = 5
    nodes: int = 8
    spacing: float = 1.0
    radio_range: float = 0.18
    seed: int = 42

    def __post_init__(self):
        if self.kind not in ("grid", "line", "random"):
            raise ValueError(
                f"TopologySpec.kind must be grid/line/random, got {self.kind!r}"
            )

    @staticmethod
    def grid(width: int, height: int, spacing: float = 1.0) -> "TopologySpec":
        return TopologySpec(kind="grid", width=width, height=height, spacing=spacing)

    @staticmethod
    def line(nodes: int, spacing: float = 1.0) -> "TopologySpec":
        return TopologySpec(kind="line", nodes=nodes, spacing=spacing)

    @staticmethod
    def random(nodes: int, radio_range: float = 0.18, seed: int = 42) -> "TopologySpec":
        return TopologySpec(
            kind="random", nodes=nodes, radio_range=radio_range, seed=seed
        )

    def node_count(self) -> int:
        return self.width * self.height if self.kind == "grid" else self.nodes

    def build(self):
        """Materialise the :class:`repro.net.topology.Topology`."""
        from .net.topology import build_topology

        return build_topology(
            self.kind,
            width=self.width,
            height=self.height,
            nodes=self.nodes,
            spacing=self.spacing,
            radio_range=self.radio_range,
            seed=self.seed,
        )

    def digest(self) -> str:
        return _digest_of(asdict(self))


@dataclass(frozen=True)
class FleetJob:
    """One update job of a fleet batch: sources + configs + network."""

    old_source: str
    new_source: str
    compile: CompileConfig = field(default_factory=CompileConfig)
    update: UpdateConfig = field(default_factory=UpdateConfig)
    #: None plans the update without disseminating it
    topology: Optional[TopologySpec] = None
    #: per-link drop probability (> 0 selects the lossy NACK protocol)
    loss: float = 0.0
    loss_seed: int = 1
    #: simulate both versions for Diff_cycle (slow)
    measure_cycles: bool = False
    #: free-form label echoed in the outcome (defaults to the index)
    job_id: str = ""
    #: non-None runs the fault-tolerant campaign controller instead of
    #: plain dissemination (requires a topology)
    fault_plan: Optional["FaultPlan"] = None
    #: campaign round budget (only meaningful with a fault plan)
    max_rounds: int = 200

    def __post_init__(self):
        if not (0.0 <= self.loss < 1.0):
            raise ValueError(f"FleetJob.loss must be in [0, 1), got {self.loss}")
        if self.max_rounds < 1:
            raise ValueError(
                f"FleetJob.max_rounds must be >= 1, got {self.max_rounds}"
            )
        if self.fault_plan is not None and self.topology is None:
            raise ValueError(
                "FleetJob.fault_plan requires a topology to inject faults into"
            )

    def digest(self) -> str:
        """Content address of the whole job (sources by hash)."""
        return _digest_of(
            {
                "old": hashlib.sha256(self.old_source.encode("utf-8")).hexdigest(),
                "new": hashlib.sha256(self.new_source.encode("utf-8")).hexdigest(),
                "compile": asdict(self.compile),
                "update": asdict(self.update),
                "topology": asdict(self.topology) if self.topology else None,
                "loss": self.loss,
                "loss_seed": self.loss_seed,
                "measure_cycles": self.measure_cycles,
                "fault_plan": asdict(self.fault_plan) if self.fault_plan else None,
                "max_rounds": self.max_rounds,
            }
        )


#: Legal per-cohort dissemination strategies (see repro.versioning).
PLAN_STRATEGIES = ("chain", "merged", "full")
#: How a merged edge's script is produced: a fresh diff of the
#: endpoint images, or diff-of-diffs composition along the chain.
MERGED_FROM = ("direct", "composed")


@dataclass(frozen=True)
class VersionSpec:
    """One version of the fleet's program — a node in the version graph.

    ``version`` is the fleet-visible integer label nodes advertise;
    ``source`` is the program text the sink compiled to that image.
    The digest hashes the source by content, so two specs with the same
    label but different programs get different addresses.
    """

    version: int
    source: str
    #: free-form release label echoed in reports ("v7-hotfix")
    label: str = ""

    def __post_init__(self):
        if self.version < 0:
            raise ValueError(
                f"VersionSpec.version must be >= 0, got {self.version}"
            )
        if not self.source.strip():
            raise ValueError(
                f"VersionSpec v{self.version} has an empty source program"
            )

    def digest(self) -> str:
        return _digest_of(
            {
                "version": self.version,
                "source": hashlib.sha256(
                    self.source.encode("utf-8")
                ).hexdigest(),
                "label": self.label,
            }
        )


@dataclass(frozen=True)
class VersionGraphConfig:
    """Knobs of version-graph construction and cohort planning.

    ``loss`` is the *planning-time* expected per-link loss the cost
    model inflates air time by; the campaign's actual loss is set where
    it runs.  ``merged_from`` picks how merged edges are produced
    (``"direct"`` re-diffs the endpoint images, ``"composed"``
    composes the chain's step scripts without touching the
    intermediate images).  ``max_chain`` bounds the longest chained
    plan the planner will consider.
    """

    merged_from: str = "direct"
    loss: float = 0.0
    payload_per_packet: int = DEFAULT_PAYLOAD
    overhead_per_packet: int = DEFAULT_OVERHEAD
    max_chain: int = 16

    def __post_init__(self):
        if self.merged_from not in MERGED_FROM:
            raise ValueError(
                f"VersionGraphConfig.merged_from must be one of "
                f"{MERGED_FROM}, got {self.merged_from!r}"
            )
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(
                f"VersionGraphConfig.loss must be in [0, 1), got {self.loss}"
            )
        if self.payload_per_packet < 1 or self.overhead_per_packet < 0:
            raise ValueError(
                f"VersionGraphConfig packet geometry invalid: payload "
                f"{self.payload_per_packet}, overhead "
                f"{self.overhead_per_packet}"
            )
        if self.max_chain < 1:
            raise ValueError(
                f"VersionGraphConfig.max_chain must be >= 1, "
                f"got {self.max_chain}"
            )

    def digest(self) -> str:
        return _digest_of(asdict(self))


@dataclass(frozen=True)
class CohortPlan:
    """The planner's verdict for one cohort of same-version nodes.

    ``path`` is the sequence of version labels the update traverses
    (``(3, 4, 5, 6, 7)`` for a chain, ``(3, 7)`` for a merged diff or
    full image); ``script_bytes`` is the wire size of the plan's blob
    and ``predicted_energy_j`` the cost model's estimate the plan was
    chosen by.
    """

    from_version: int
    to_version: int
    nodes: Tuple[int, ...]
    strategy: str
    path: Tuple[int, ...]
    script_bytes: int
    predicted_energy_j: float

    def __post_init__(self):
        if self.strategy not in PLAN_STRATEGIES:
            raise ValueError(
                f"CohortPlan.strategy must be one of {PLAN_STRATEGIES}, "
                f"got {self.strategy!r}"
            )
        if len(self.path) < 2:
            raise ValueError(
                f"CohortPlan.path needs at least two versions, "
                f"got {self.path}"
            )
        if self.path[0] != self.from_version or self.path[-1] != self.to_version:
            raise ValueError(
                f"CohortPlan.path {self.path} does not run "
                f"v{self.from_version} -> v{self.to_version}"
            )
        if self.strategy != "chain" and len(self.path) != 2:
            raise ValueError(
                f"CohortPlan.strategy {self.strategy!r} is a single hop "
                f"but path {self.path} has {len(self.path) - 1}"
            )
        if not self.nodes:
            raise ValueError(
                f"CohortPlan v{self.from_version}->v{self.to_version} "
                f"has an empty cohort"
            )
        if list(self.nodes) != sorted(set(self.nodes)):
            raise ValueError(
                "CohortPlan.nodes must be sorted and unique, "
                f"got {self.nodes}"
            )
        if self.script_bytes < 0 or self.predicted_energy_j < 0.0:
            raise ValueError(
                f"CohortPlan cost fields must be non-negative: "
                f"{self.script_bytes} bytes, "
                f"{self.predicted_energy_j} J"
            )

    def digest(self) -> str:
        return _digest_of(asdict(self))


def merge_legacy_strategy(
    config: Optional[UpdateConfig],
    ra: Optional[str] = None,
    da: Optional[str] = None,
    cp: Optional[str] = None,
    verify: Optional[bool] = None,
    checked: Optional[bool] = None,
) -> UpdateConfig:
    """Fold legacy string-flag kwargs into an :class:`UpdateConfig`.

    Shared by the deprecation shims in :mod:`repro.core.update` and
    :mod:`repro.core.session`; explicit legacy values override the
    config's fields.
    """
    merged = config if config is not None else UpdateConfig()
    overrides = {}
    if ra is not None:
        overrides["ra"] = ra
    if da is not None:
        overrides["da"] = da
    if cp is not None:
        overrides["cp"] = cp
    if verify is not None:
        overrides["verify"] = verify
    if checked is not None:
        overrides["checked"] = checked
    return replace(merged, **overrides) if overrides else merged


__all__ = [
    "CP_STRATEGIES",
    "DA_STRATEGIES",
    "MERGED_FROM",
    "PLAN_STRATEGIES",
    "RA_BASELINE_NAMES",
    "RA_STRATEGIES",
    "CohortPlan",
    "CompileConfig",
    "FleetJob",
    "TopologySpec",
    "UpdateConfig",
    "VersionGraphConfig",
    "VersionSpec",
    "baseline_ra",
    "merge_legacy_strategy",
]
